//! Offline vendored mini property-testing harness.
//!
//! Implements the subset of the `proptest` surface the workspace's
//! `tests/props.rs` files use: the [`proptest!`] macro (with an
//! optional `#![proptest_config(...)]` header), numeric-range and
//! `Vec` strategies, `bool::ANY`, and the `prop_assert!` family.
//!
//! Differences from upstream, by design:
//!
//! * no shrinking — a failing case reports its inputs via the panic
//!   message of the underlying `assert!`;
//! * deterministic per-test RNG seeded from the test's module path, so
//!   failures reproduce exactly across runs;
//! * `prop_assert!` panics immediately instead of collecting failures.

/// Runner configuration: how many random cases each property runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the offline suite quick
        // while still exercising each property broadly.
        Self { cases: 64 }
    }
}

/// Deterministic splitmix64-based RNG driving strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary label (the test's full path) so every
    /// test gets an independent, reproducible stream.
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: h }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Unlike upstream there is no shrinking tree —
/// `sample` directly produces a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A constant strategy, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Generates `Vec`s whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`fn@vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Draws `true`/`false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn prop(x in 0.0f64..1.0, n in 1usize..10) { prop_assert!(x < n as f64 + 1.0); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -2.5f64..7.5, n in 3u64..9, m in 1usize..4) {
            prop_assert!((-2.5..7.5).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!((1..4).contains(&m));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn bool_any_and_just(b in crate::bool::ANY, k in Just(41i32)) {
            prop_assert_ne!(b, !b);
            prop_assert_eq!(k + 1, 42);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_accepted(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = TestRng::deterministic("lbl");
        let mut b = TestRng::deterministic("lbl");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
