//! Offline vendored micro-benchmark harness.
//!
//! Exposes the slice of the `criterion` API the workspace's benches
//! use — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`] and
//! [`black_box`] — backed by a simple calibrated-batch timer instead
//! of criterion's full statistical machinery. Each benchmark is
//! calibrated so one sample takes ≥ ~2 ms, then `sample_size` samples
//! are taken and min / median / mean per-iteration times reported.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing result of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Sampled {
    /// Fastest observed per-iteration time.
    pub min_ns: f64,
    /// Median per-iteration time.
    pub median_ns: f64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Overrides the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(s) => println!(
                "bench {name:<44} min {} | median {} | mean {} ({} iters/sample)",
                fmt_ns(s.min_ns),
                fmt_ns(s.median_ns),
                fmt_ns(s.mean_ns),
                s.iters_per_sample,
            ),
            None => println!("bench {name:<44} (no measurement: Bencher::iter never called)"),
        }
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named group sharing configuration, mirroring criterion's API.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        self.criterion.bench_function(&full, f);
        self.criterion.sample_size = saved;
        self
    }

    /// Ends the group (a no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine under test.
pub struct Bencher {
    sample_size: usize,
    result: Option<Sampled>,
}

impl Bencher {
    /// Measures `routine`, retaining its output via [`black_box`] so
    /// the optimizer cannot delete the work.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up and calibration: grow the batch until it runs ≥ 2 ms.
        let mut iters: u64 = 1;
        let batch_floor = Duration::from_millis(2);
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= batch_floor || iters >= 1 << 30 {
                break;
            }
            // Aim slightly past the floor to converge quickly.
            let grow = if elapsed.is_zero() {
                16
            } else {
                (batch_floor.as_nanos() / elapsed.as_nanos().max(1) + 1) as u64
            };
            iters = iters.saturating_mul(grow.clamp(2, 16)).min(1 << 30);
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let min_ns = per_iter_ns[0];
        let median_ns = per_iter_ns[per_iter_ns.len() / 2];
        let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        self.result = Some(Sampled {
            min_ns,
            median_ns,
            mean_ns,
            iters_per_sample: iters,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:8.1} ns")
    } else if ns < 1e6 {
        format!("{:8.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:8.2} ms", ns / 1e6)
    } else {
        format!("{:8.3} s ", ns / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut saw = 0.0;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2u64).wrapping_mul(3));
        });
        // Indirect check through a second explicit Bencher.
        let mut b = Bencher {
            sample_size: 3,
            result: None,
        };
        b.iter(|| black_box(1u64 + 1));
        if let Some(s) = b.result {
            saw = s.median_ns;
        }
        assert!(saw > 0.0);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("one", |b| b.iter(|| black_box(5)));
        g.finish();
    }
}
