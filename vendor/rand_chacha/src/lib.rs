//! Offline vendored ChaCha8 random number generator.
//!
//! Implements the real ChaCha stream cipher keyed by a 32-byte seed
//! (8 double-round reduced variant, 64-bit block counter), exposing it
//! through the vendored [`rand`] traits. Like upstream `ChaCha8Rng`
//! it is seedable, portable, and has a fixed, documented algorithm —
//! the property `accordion_stats::rng` relies on. Bit-streams are not
//! guaranteed identical to crates.io `rand_chacha` (word-consumption
//! order differs); the workspace only requires seeded determinism.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;
/// "expand 32-byte k" — the standard ChaCha constants.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha stream cipher with 8 rounds used as an RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 forces a refill.
    idx: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(self.state.iter()) {
            *w = w.wrapping_add(*s);
        }
        self.buf = working;
        self.idx = 0;
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        Self {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = ChaCha8Rng::from_seed([7; 32]);
        let mut b = ChaCha8Rng::from_seed([7; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::from_seed([1; 32]);
        let mut b = ChaCha8Rng::from_seed([2; 32]);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::from_seed([3; 32]);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn seed_from_u64_works() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = c.next_u64();
    }

    #[test]
    fn output_looks_uniform() {
        // Crude balance check: bit population over 64k words near 50 %.
        let mut rng = ChaCha8Rng::from_seed([9; 32]);
        let ones: u32 = (0..1024).map(|_| rng.next_u32().count_ones()).sum();
        let frac = ones as f64 / (1024.0 * 32.0);
        assert!((frac - 0.5).abs() < 0.02, "bit balance {frac}");
    }
}
