//! Offline vendored subset of the `rand` 0.9 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng::random`] extension, and
//! [`seq::SliceRandom::shuffle`]. Semantics match upstream (uniform
//! floats in `[0, 1)` from the high 53 bits, Fisher–Yates shuffle);
//! exact bit-streams are *not* guaranteed to match crates.io `rand`,
//! which is fine because the workspace only relies on seeded
//! determinism, never on specific draws.

/// A source of uniformly random 32/64-bit words.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed by expanding it with
    /// splitmix64 (matching upstream's approach in spirit).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = splitmix64(state);
            let bytes = state.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types samplable uniformly from an [`RngCore`] — the subset of
/// upstream's `StandardUniform` distribution the workspace uses.
pub trait UniformSample: Sized {
    /// Draws one uniform value.
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` using the high 53 bits, as upstream does.
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    /// Uniform in `[0, 1)` using the high 24 bits.
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformSample for u64 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for u8 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl UniformSample for usize {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl UniformSample for bool {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges drawable uniformly, mirroring `rand::distr::uniform`'s
/// `SampleRange` for the range shapes the workspace uses.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::uniform_sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: UniformSample>(&mut self) -> T {
        T::uniform_sample(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability in [0,1]");
        f64::uniform_sample(self) < p
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    /// (Modulo reduction — bias is negligible for the small bounds the
    /// workspace draws.)
    fn random_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice shuffling, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::Rng;

    /// Random slice reordering.
    pub trait SliceRandom {
        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_below(i + 1);
                self.swap(i, j);
            }
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut Lcg(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut buf = [0u8; 13];
        Lcg(9).fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
