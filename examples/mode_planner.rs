//! Mode planner: for every benchmark, pick the best Accordion
//! operating point under a user-supplied quality floor, and show how
//! the choice shifts as the floor tightens.
//!
//! ```text
//! cargo run --release --example mode_planner -- [quality_floor]
//! ```

use accordion::framework::Accordion;
use accordion_apps::app::all_apps;
use accordion_chip::chip::Chip;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let floor: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.95);
    let chip = Chip::fabricate_default(0)?;

    println!("planning with quality floor {floor:.2} (normalized to the STV default)\n");
    println!(
        "{:>10} {:>16} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "mode", "cores", "f (GHz)", "MIPS/W x", "power W", "quality"
    );
    for app in all_apps() {
        let name = app.name();
        let acc = Accordion::new(chip.clone(), app);
        match acc.plan(floor) {
            Some(p) => println!(
                "{:>10} {:>16} {:>6} {:>9.2} {:>9.2} {:>9.1} {:>9.2}",
                name,
                p.mode.to_string(),
                p.n_ntv,
                p.f_ntv_ghz,
                p.eff_norm,
                p.power_w,
                p.quality_norm
            ),
            None => println!("{name:>10}  no feasible mode satisfies the floor"),
        }
    }

    // How the best efficiency degrades as the floor rises, for one
    // representative benchmark.
    println!("\nhotspot: best efficiency ratio vs quality floor");
    let acc = Accordion::new(
        chip,
        Box::new(accordion_apps::hotspot::Hotspot::paper_default()),
    );
    for floor10 in 5..=10 {
        let floor = floor10 as f64 / 10.0;
        let eff = acc.plan(floor).map(|p| p.eff_norm);
        match eff {
            Some(e) => println!("  floor {floor:.1}: {e:.2}x"),
            None => println!("  floor {floor:.1}: infeasible"),
        }
    }
    Ok(())
}
