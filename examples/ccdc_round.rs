//! Control-Core / Data-Core protocol demo (paper Section 4.1): a CC
//! dispatches work to error-prone DCs, polls their mailbox done flags,
//! fires watchdogs on hangs, restarts, and finally merges survivors —
//! sweeping the per-cycle timing-error rate to show how the protocol
//! degrades gracefully from error-free to error-saturated operation.
//!
//! ```text
//! cargo run --release --example ccdc_round
//! ```

use accordion_sim::ccdc::{run_round, CcDcConfig, DcOutcome};
use accordion_stats::rng::SeedStream;

fn main() {
    let seed = SeedStream::new(42);
    println!(
        "{:>10} {:>9} {:>9} {:>9} {:>10} {:>9} {:>12}",
        "Perr", "clean", "infected", "dropped", "watchdogs", "restarts", "makespan(cy)"
    );
    for (i, perr) in [0.0, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5].into_iter().enumerate() {
        let cfg = CcDcConfig::default_round(64, perr);
        let report = run_round(&cfg, &mut seed.stream("round", i as u64));
        let count = |o: DcOutcome| report.outcomes.iter().filter(|x| **x == o).count();
        println!(
            "{:>10.0e} {:>9} {:>9} {:>9} {:>10} {:>9} {:>12}",
            perr,
            count(DcOutcome::Completed),
            count(DcOutcome::CompletedInfected),
            count(DcOutcome::Abandoned),
            report.watchdog_fires,
            report.restarts,
            report.makespan_cycles,
        );
    }
    println!(
        "\nDCs never write each other's result slots and never touch CC\n\
         data; the CC uses only done flags and watchdog timers for\n\
         control — fault containment by construction (Section 4.1)."
    );
}
