//! Related-work baselines demo (paper Section 8): Booster's dual-rail
//! frequency equalization and EnergySmart's speed-proportional
//! scheduling, against Accordion's equal-frequency discipline and
//! against Accordion's full problem-size modulation.
//!
//! ```text
//! cargo run --release --example baselines_demo
//! ```

use accordion::baselines::{compare_at, Booster};
use accordion::framework::Accordion;
use accordion_apps::hotspot::Hotspot;
use accordion_chip::chip::Chip;
use accordion_sim::exec::ExecModel;
use accordion_sim::workload::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chip = Chip::fabricate_default(0)?;
    let exec = ExecModel::paper_default();
    let w = Workload::rms_default(1e6);

    println!("mechanism comparison at matched cluster counts (chip 0):\n");
    println!(
        "{:>8} {:>28} {:>10} {:>10} {:>8}",
        "clusters", "mechanism", "core-GHz", "power(W)", "MIPS/W"
    );
    for n in [4usize, 9, 18, 36] {
        for plan in compare_at(&chip, n) {
            println!(
                "{:>8} {:>28} {:>10.1} {:>10.1} {:>8.0}",
                n,
                plan.mechanism,
                plan.core_ghz,
                plan.power_w,
                plan.mips_per_w(&exec, &w)
            );
        }
    }

    // Booster's rail-tax sensitivity.
    println!("\nBooster MIPS/W vs dual-rail overhead (9 clusters):");
    for overhead in [0.0, 0.1, 0.15, 0.25, 0.4] {
        let b = Booster {
            rail_boost_v: 0.10,
            rail_overhead: overhead,
        };
        let plan = b.plan(&chip, 9);
        println!(
            "  rail tax {:>4.0}% -> {:>5.0} MIPS/W",
            overhead * 100.0,
            plan.mips_per_w(&exec, &w)
        );
    }

    // What neither baseline has: the problem-size knob.
    let acc = Accordion::new(chip, Box::new(Hotspot::paper_default()));
    if let Some(p) = acc.plan(0.95) {
        println!(
            "\nAccordion with problem-size modulation (quality >= 0.95):\n  \
             {} at {} cores -> {:.2}x the STV energy efficiency",
            p.mode, p.n_ntv, p.eff_norm
        );
    }
    Ok(())
}
