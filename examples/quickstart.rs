//! Quickstart: fabricate a variation-afflicted NTC chip, bind a
//! benchmark, and read off the Accordion trade-off.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use accordion::framework::Accordion;
use accordion_apps::hotspot::Hotspot;
use accordion_chip::chip::Chip;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Fabricate chip 0 of the Monte-Carlo population: 288 cores in
    //    36 clusters at 11 nm, afflicted by correlated Vth/Leff
    //    variation (Table 2 of the paper).
    let chip = Chip::fabricate_default(0)?;
    println!(
        "fabricated {} cores in {} clusters",
        chip.topology().num_cores(),
        chip.topology().num_clusters()
    );
    println!(
        "designated VddNTV = {:.3} V (max per-cluster VddMIN)",
        chip.vdd_ntv_v()
    );
    println!("N_STV (cores fitting 100 W at STV) = {}", chip.n_stv());

    // 2. Bind a benchmark. Construction measures the quality-versus-
    //    problem-size fronts under Default / Drop 1/4 / Drop 1/2.
    let acc = Accordion::new(chip, Box::new(Hotspot::paper_default()));
    println!(
        "\nSTV baseline: {:.3} s at {:.0} MIPS/W",
        acc.baseline().exec_time_s,
        acc.baseline().mips_per_w()
    );

    // 3. Extract the iso-execution-time pareto fronts (Figures 6/7).
    for front in acc.iso_time_fronts() {
        let Some(best) = front
            .points
            .iter()
            .max_by(|a, b| a.eff_norm.partial_cmp(&b.eff_norm).expect("finite"))
        else {
            continue;
        };
        println!(
            "{:15} {} points; best MIPS/W ratio {:.2} at N={} (f={:.2} GHz, quality {:.2})",
            front.flavor.to_string(),
            front.points.len(),
            best.eff_norm,
            best.n_ntv,
            best.f_ntv_ghz,
            best.quality_norm,
        );
    }

    // 4. Plan an operating point under a quality floor.
    if let Some(p) = acc.plan(0.95) {
        println!(
            "\nplanned point: {} | {} cores at {:.2} GHz, {:.2}x more efficient than STV, quality {:.2}",
            p.mode, p.n_ntv, p.f_ntv_ghz, p.eff_norm, p.quality_norm
        );
    }

    // 5. Speculation: how much frequency do timing errors buy?
    if let Some((lo, hi)) = acc.speculative_f_gain_range() {
        println!(
            "speculative frequency gain across the fronts: {:.0}%-{:.0}%",
            lo * 100.0,
            hi * 100.0
        );
    }
    Ok(())
}
