//! Quality-versus-problem-size exploration on the canneal kernel —
//! the experiment behind the paper's Figure 2, plus the Section 6.2
//! error-model validation (Drop vs decision inversion).
//!
//! ```text
//! cargo run --release --example annealing_quality
//! ```

use accordion_apps::app::RmsApp;
use accordion_apps::canneal::{Canneal, CannealErrorMode};
use accordion_apps::config::RunConfig;
use accordion_apps::harness::{FrontSet, Scenario};
use accordion_sim::fault::uniform_drop_mask;

fn main() {
    let app = Canneal::paper_default();

    // The Figure 2 fronts: Default vs Drop 1/4 vs Drop 1/2.
    println!("canneal quality vs problem size (normalized to the default input):");
    let set = FrontSet::measure(&app);
    println!(
        "{:>10} {:>10} {:>10} {:>10}",
        "size_norm", "Default", "Drop 1/4", "Drop 1/2"
    );
    let default = set.front(Scenario::Default).expect("front");
    let d4 = set.front(Scenario::Drop(0.25)).expect("front");
    let d2 = set.front(Scenario::Drop(0.5)).expect("front");
    for i in 0..default.points.len() {
        println!(
            "{:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            default.points[i].size_norm,
            default.points[i].quality_norm,
            d4.points[i].quality_norm,
            d2.points[i].quality_norm,
        );
    }

    // Section 6.2: Drop is close-to-worst-case — unless the errors
    // invert the annealing accept decision itself.
    println!("\nerror-model validation at the default input:");
    let threads = 64;
    let cfg = RunConfig::default_run(threads);
    let clean = app.run_with_error_mode(
        app.default_knob(),
        &cfg,
        CannealErrorMode::DropSwaps,
        &vec![false; threads],
    );
    for fraction in [0.25, 0.5] {
        let infected = uniform_drop_mask(threads, fraction);
        for (label, mode) in [
            ("Drop", CannealErrorMode::DropSwaps),
            ("InvertDecision", CannealErrorMode::InvertDecision),
        ] {
            let out = app.run_with_error_mode(app.default_knob(), &cfg, mode, &infected);
            println!(
                "  {:>5.2} of threads infected, {:>15}: quality {:.3} vs clean",
                fraction,
                label,
                app.quality(&out, &clean),
            );
        }
    }
    println!("\n(paper reports: inversion 0.77/0.69 vs Drop 0.98/0.96)");
}
