//! Monte-Carlo population statistics — the chip-to-chip story behind
//! the paper's "sample size: 100 chips" methodology.
//!
//! ```text
//! cargo run --release --example population_stats -- [n_chips]
//! ```

use accordion_chip::chip::Chip;
use accordion_chip::topology::{ClusterId, Topology};
use accordion_stats::histogram::Histogram;
use accordion_stats::rng::SeedStream;
use accordion_stats::summary::{quantile, Summary};
use accordion_varius::params::VariationParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(20);

    println!("fabricating {n} chips of the Monte-Carlo population…");
    let chips = Chip::fabricate_population(
        Topology::paper_default(),
        &VariationParams::default(),
        SeedStream::new(2014),
        0,
        n,
    )?;

    // Chip-wide VddNTV distribution.
    let vdd_ntv: Vec<f64> = chips.iter().map(|c| c.vdd_ntv_v()).collect();
    let s = Summary::of(&vdd_ntv).expect("non-empty");
    println!(
        "\nVddNTV across chips: mean {:.3} V, std {:.4} V, range {:.3}-{:.3} V",
        s.mean, s.std, s.min, s.max
    );

    // Pooled per-cluster VddMIN histogram (Figure 5a, population-wide).
    let mut h = Histogram::new(0.48, 0.66, 9);
    for chip in &chips {
        h.extend(chip.cluster_vddmin_v().iter().copied());
    }
    println!("\nper-cluster VddMIN histogram ({} clusters):", h.count());
    let max_count = h.bin_counts().iter().copied().max().unwrap_or(1).max(1);
    for (center, count) in h.iter() {
        let bar = "#".repeat((count * 40 / max_count) as usize);
        println!("  {center:.3} V | {bar} {count}");
    }

    // Safe-frequency spread (Figure 5b summary).
    let mut fs = Vec::new();
    for chip in &chips {
        for c in 0..36 {
            fs.push(chip.cluster_safe_f_ghz(ClusterId(c)));
        }
    }
    println!(
        "\ncluster safe f at VddNTV: p5 {:.3}  median {:.3}  p95 {:.3} GHz",
        quantile(&fs, 0.05),
        quantile(&fs, 0.5),
        quantile(&fs, 0.95)
    );

    // Who is the best cluster? Variation reshuffles it chip to chip.
    let mut best_counts = std::collections::BTreeMap::new();
    for chip in &chips {
        let best = (0..36)
            .max_by(|&a, &b| {
                chip.cluster_efficiency(ClusterId(a))
                    .partial_cmp(&chip.cluster_efficiency(ClusterId(b)))
                    .expect("finite")
            })
            .expect("clusters");
        *best_counts.entry(best).or_insert(0usize) += 1;
    }
    println!("\nmost-efficient cluster by chip (cluster id: count):");
    for (cluster, count) in &best_counts {
        println!("  cluster {cluster:>2}: {count}");
    }
    println!(
        "\n{} distinct winners across {n} chips — the reason Accordion must\n\
         select cores per fabricated chip rather than by design-time rank.",
        best_counts.len()
    );
    Ok(())
}
