//! Chip explorer: inspect how parametric variation shapes a fabricated
//! NTC chip — per-cluster VddMIN, safe frequencies, the Perr(f) knee,
//! and what the energy-efficiency-ordered selection would pick.
//!
//! ```text
//! cargo run --release --example chip_explorer -- [chip_index]
//! ```

use accordion_chip::chip::Chip;
use accordion_chip::selection::{ClusterSelection, SelectionPolicy};
use accordion_chip::topology::ClusterId;
use accordion_varius::params::VariationParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let index: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0);
    let chip = Chip::fabricate_default(index)?;
    let params = VariationParams::default();

    println!("chip {index}: VddNTV = {:.3} V", chip.vdd_ntv_v());
    println!("\ncluster  VddMIN(V)  safe f(GHz)  f@Perr=1e-6  efficiency(core-GHz/W)");
    for c in 0..chip.topology().num_clusters() {
        let id = ClusterId(c);
        println!(
            "{:>7}  {:>9.3}  {:>11.3}  {:>11.3}  {:>10.3}",
            c,
            chip.cluster_vddmin_v()[c],
            chip.cluster_safe_f_ghz(id),
            chip.cluster_f_for_perr_ghz(id, 1e-6),
            chip.cluster_efficiency(id),
        );
    }

    // The Perr(f) knee of the slowest cluster (a Figure 5b curve).
    let slowest = (0..chip.topology().num_clusters())
        .min_by(|&a, &b| {
            chip.cluster_safe_f_ghz(ClusterId(a))
                .partial_cmp(&chip.cluster_safe_f_ghz(ClusterId(b)))
                .expect("finite")
        })
        .expect("clusters exist");
    println!("\nPerr(f) of slowest cluster {slowest}:");
    let timing = chip.cluster_timing(ClusterId(slowest));
    let core = timing.slowest_core(&params);
    for k in 1..=14 {
        let f = 0.1 * k as f64;
        println!("  f={:.1} GHz  Perr={:.3e}", f, core.perr(f));
    }

    // What would the framework pick at growing cluster counts?
    println!("\nenergy-efficiency-ordered selection:");
    for n in [1usize, 2, 4, 9, 18, 36] {
        let sel = ClusterSelection::select(&chip, n, SelectionPolicy::EnergyEfficiency);
        println!(
            "  {:>2} clusters -> binding safe f {:.3} GHz, {:6.2} W at that f",
            n,
            sel.safe_f_ghz(),
            sel.power_w(&chip, sel.safe_f_ghz()),
        );
    }
    Ok(())
}
