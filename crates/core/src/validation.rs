//! End-to-end validation of the speculative quality model.
//!
//! The iso-time machinery *estimates* speculative quality by reading
//! the measured Drop fronts (Section 6.3's methodology). This module
//! closes the loop without interpolation: it takes a speculative
//! operating point, drives the CC/DC protocol simulation at the
//! point's error rate, converts the per-DC outcomes (abandoned →
//! dropped, completed-infected → corrupted end results) into a kernel
//! run configuration, executes the *real* kernel under it, and
//! compares the measured quality against the front-based estimate.
//!
//! The error-rate bridge: a thread of `e` cycles is infected with
//! probability `1 − (1 − Perr)^e`. The paper's shorthand `Perr = 1/e`
//! infects ≈63 % of threads; to validate a Drop-`x` quality level the
//! consistent rate is `Perr = −ln(1 − x)/e`, which this module uses.

use crate::pareto::ParetoPoint;
use crate::quality::QualityModel;
use accordion_apps::app::RmsApp;
use accordion_apps::config::RunConfig;
use accordion_apps::harness::Scenario;
use accordion_sim::ccdc::{run_round, CcDcConfig, DcOutcome};
use accordion_sim::exec::ExecModel;
use accordion_stats::rng::SeedStream;

/// Outcome of validating one speculative operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointValidation {
    /// Quality the framework's interpolated model predicts.
    pub estimated_quality: f64,
    /// Quality measured by running the kernel under protocol-derived
    /// error masks.
    pub measured_quality: f64,
    /// Fraction of threads the protocol abandoned (perceived Drop).
    pub dropped_fraction: f64,
    /// Fraction of threads that terminated infected (corrupted data).
    pub infected_fraction: f64,
    /// The per-cycle error rate used in the protocol simulation.
    pub perr_per_cycle: f64,
}

impl PointValidation {
    /// Absolute estimation error of the quality model.
    pub fn estimation_error(&self) -> f64 {
        (self.estimated_quality - self.measured_quality).abs()
    }
}

/// Validates a speculative `point` of `app` by protocol simulation +
/// real kernel execution.
///
/// # Panics
///
/// Panics if the point carries no error rate (a Safe point).
pub fn validate_point(
    app: &dyn RmsApp,
    quality: &QualityModel,
    point: &ParetoPoint,
    seed: u64,
) -> PointValidation {
    assert!(point.perr > 0.0, "validation needs a speculative point");
    let threads = app.profile_threads();
    let exec = ExecModel::paper_default();

    // Per-thread cycle count at the point's operating conditions,
    // full input scale.
    let w = app
        .full_scale_workload(app.default_knob())
        .scaled(point.size_norm);
    let e_cycles = exec.thread_cycles(&w, w.work_units / point.n_ntv as f64, point.f_ntv_ghz);

    // The Drop level the quality model reads for speculation sets the
    // target infection fraction; derive the consistent per-cycle rate.
    let drop_fraction = match quality.speculative_scenario() {
        Scenario::Drop(f) => f,
        Scenario::Default => 0.25,
    };
    let perr = -f64::ln_1p(-drop_fraction) / e_cycles;

    // Drive the CC/DC protocol: one DC per application thread.
    let cfg = CcDcConfig {
        num_dcs: threads,
        work_cycles: e_cycles.min(1e15) as u64,
        perr_per_cycle: perr.min(1.0),
        // The paper's exhaustive manifestation split (Section 6.2):
        // some infections hang (watchdog → Drop), the rest terminate
        // with corrupted results.
        hang_fraction: 0.5,
        watchdog_timeout_cycles: (2.0 * e_cycles).min(1e15) as u64,
        max_restarts: 0,
        merge_cycles_per_dc: 1_000,
    };
    let mut rng = SeedStream::new(seed).stream("validate", 0);
    let report = run_round(&cfg, &mut rng);

    // Protocol outcomes → kernel error masks.
    let mut drop_mask = vec![false; threads];
    let mut infected = vec![false; threads];
    for (t, outcome) in report.outcomes.iter().enumerate() {
        match outcome {
            DcOutcome::Abandoned => drop_mask[t] = true,
            DcOutcome::CompletedInfected => infected[t] = true,
            DcOutcome::Completed => {}
        }
    }
    let dropped_fraction = drop_mask.iter().filter(|&&d| d).count() as f64 / threads as f64;
    let infected_fraction = infected.iter().filter(|&&i| i).count() as f64 / threads as f64;

    // CC quality-limit enforcement (Section 6.2): corrupted
    // terminations whose results would blow the preset degradation
    // limit are treated exactly like hangs — as Drop. Random bit
    // flips on raw f64 end results essentially always trip the limit,
    // so the CC folds the infected set into the dropped set. (The
    // paper's bins: (i) no termination and (ii) excessive degradation
    // both surface as Drop; (iii) tolerable degradation is, by the
    // validated assumption, no worse than Drop.)
    let mut effective_drop = drop_mask.clone();
    for (d, &i) in effective_drop.iter_mut().zip(&infected) {
        *d = *d || i;
    }
    let run_cfg = RunConfig {
        threads,
        drop_mask: effective_drop,
        corruption: None,
        ..RunConfig::default_run(threads)
    };

    // Execute the real kernel at the point's problem size; quality is
    // computed exactly as the fronts were: against the hyper-accurate
    // reference, normalized to the default-input error-free quality.
    let knob = knob_for_size(app, point.size_norm);
    let reference = app.run(app.hyper_knob(), &RunConfig::default_run(threads));
    let default_out = app.run(app.default_knob(), &RunConfig::default_run(threads));
    let q_default = app.quality(&default_out, &reference).max(1e-9);
    let out = app.run(knob, &run_cfg);
    let measured_quality = app.quality(&out, &reference) / q_default;

    PointValidation {
        estimated_quality: quality.quality_speculative(point.size_norm),
        measured_quality,
        dropped_fraction,
        infected_fraction,
        perr_per_cycle: perr,
    }
}

/// Finds the knob whose problem size is closest to `size_norm` × the
/// default size (kernels take knobs, not sizes).
fn knob_for_size(app: &dyn RmsApp, size_norm: f64) -> f64 {
    let target = size_norm * app.problem_size(app.default_knob());
    // Search the sweep plus a dense interpolation between neighbours.
    let sweep = app.knob_sweep();
    let mut best = (f64::INFINITY, app.default_knob());
    for w in sweep.windows(2) {
        for step in 0..=8 {
            let k = w[0] + (w[1] - w[0]) * step as f64 / 8.0;
            let err = (app.problem_size(k) - target).abs();
            if err < best.0 {
                best = (err, k);
            }
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::{FrequencyPolicy, Mode, ProblemScaling};
    use crate::pareto::ParetoExtractor;
    use accordion_apps::harness::FrontSet;
    use accordion_apps::hotspot::Hotspot;
    use accordion_chip::chip::Chip;
    use std::sync::OnceLock;

    struct Fx {
        app: Hotspot,
        quality: QualityModel,
        point: ParetoPoint,
    }

    fn fx() -> &'static Fx {
        static FX: OnceLock<Fx> = OnceLock::new();
        FX.get_or_init(|| {
            let chip = Chip::fabricate_default(0).expect("chip");
            let app = Hotspot::paper_default();
            let set = FrontSet::measure(&app);
            let quality = QualityModel::from_front_set(&set);
            let extractor = ParetoExtractor::new(&chip, &app, &set);
            let point = extractor
                .solve_point(
                    Mode {
                        scaling: ProblemScaling::Still,
                        policy: FrequencyPolicy::Speculative,
                    },
                    1.0,
                )
                .expect("speculative Still point");
            Fx {
                app,
                quality,
                point,
            }
        })
    }

    #[test]
    fn protocol_produces_the_targeted_error_level() {
        let v = validate_point(&fx().app, &fx().quality, &fx().point, 7);
        let total_affected = v.dropped_fraction + v.infected_fraction;
        let target = match fx().quality.speculative_scenario() {
            Scenario::Drop(f) => f,
            Scenario::Default => 0.25,
        };
        assert!(
            (total_affected - target).abs() < 0.15,
            "affected {total_affected} vs target {target}"
        );
    }

    #[test]
    fn quality_model_estimate_is_honest() {
        // The interpolated estimate should sit within a modest band of
        // the measured end-to-end quality — it models hangs as Drop
        // and ignores corrupted-termination, which the paper argues
        // (and our corruption sweep confirms) behaves no better.
        let v = validate_point(&fx().app, &fx().quality, &fx().point, 11);
        assert!(
            v.estimation_error() < 0.25,
            "estimate {} vs measured {}",
            v.estimated_quality,
            v.measured_quality
        );
    }

    #[test]
    fn validation_is_reproducible() {
        let a = validate_point(&fx().app, &fx().quality, &fx().point, 3);
        let b = validate_point(&fx().app, &fx().quality, &fx().point, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn knob_search_recovers_default_size() {
        let app = Hotspot::paper_default();
        let k = knob_for_size(&app, 1.0);
        let size = app.problem_size(k) / app.problem_size(app.default_knob());
        assert!((size - 1.0).abs() < 0.05, "size {size}");
    }

    #[test]
    #[should_panic(expected = "speculative point")]
    fn safe_points_rejected() {
        let mut p = fx().point.clone();
        p.perr = 0.0;
        validate_point(&fx().app, &fx().quality, &p, 0);
    }
}
