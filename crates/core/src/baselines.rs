//! Prior NTV variation-mitigation baselines (paper Section 8).
//!
//! The paper positions Accordion against two earlier designs:
//!
//! * **Booster** (Miller et al., HPCA 2012) — every core can switch
//!   between two independent Vdd rails; an on-chip governor gives each
//!   core a per-rail duty cycle so that all cores present the *same
//!   effective frequency* and applications never perceive variation.
//! * **EnergySmart** (Karpuzcu et al., HPCA 2013) — a single Vdd rail
//!   with per-cluster frequency domains; a variation-aware scheduler
//!   assigns work to clusters *proportionally to their speed* instead
//!   of forcing a common frequency.
//!
//! Neither modulates the problem size — that is Accordion's
//! contribution. Implementing both on the same chip model lets the
//! comparison experiments quantify what each mechanism buys at
//! iso-execution time.

use accordion_chip::chip::Chip;
use accordion_chip::selection::{ClusterSelection, SelectionPolicy};
use accordion_sim::exec::ExecModel;
use accordion_sim::workload::Workload;
use accordion_varius::timing::CoreTiming;

/// An operating plan produced by one of the baseline mechanisms for a
/// given cluster allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselinePlan {
    /// Mechanism name.
    pub mechanism: &'static str,
    /// Engaged clusters.
    pub clusters: usize,
    /// Aggregate throughput in core-GHz (what the workload sees).
    pub core_ghz: f64,
    /// Chip power of the engaged set in watts.
    pub power_w: f64,
}

impl BaselinePlan {
    /// Execution time of `w` under this plan.
    pub fn execution_time_s(&self, exec: &ExecModel, w: &Workload) -> f64 {
        // The mechanisms below present their aggregate as
        // core-equivalents at 1 GHz; reuse the CPI model at the
        // per-core average frequency.
        let n_equiv = self.core_ghz; // core-GHz ≡ cores at 1 GHz
        let cpi = exec.cpi(w, 1.0);
        w.total_instructions() * cpi / (n_equiv * 1e9)
    }

    /// Throughput per watt in MIPS/W for workload `w`.
    pub fn mips_per_w(&self, exec: &ExecModel, w: &Workload) -> f64 {
        let mips = 1000.0 * self.core_ghz / exec.cpi(w, 1.0);
        mips / self.power_w
    }
}

/// Booster: dual-rail frequency equalization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Booster {
    /// Boost added to the chip's `VddNTV` on the high rail, in volts.
    pub rail_boost_v: f64,
    /// Power tax of the dual-rail supply: regulation losses plus the
    /// per-core rail-switching circuitry, as a fraction of core power.
    /// The paper cites Dreslinski et al.'s reevaluation of fast
    /// dual-voltage power-rail switching (ref. 14) as reason for skepticism
    /// about this cost.
    pub rail_overhead: f64,
}

impl Booster {
    /// The configuration used in the comparison experiments: a 100 mV
    /// boosted second rail.
    pub fn paper_default() -> Self {
        Self {
            rail_boost_v: 0.10,
            rail_overhead: 0.15,
        }
    }

    /// Plans the `n` most efficient clusters: every engaged core
    /// presents the same effective frequency — the highest target all
    /// cores can reach by boosting (the slowest core's high-rail safe
    /// frequency). Power charges each core its duty-weighted rail mix.
    pub fn plan(&self, chip: &Chip, n: usize) -> BaselinePlan {
        let sel = ClusterSelection::select(chip, n, SelectionPolicy::EnergyEfficiency);
        let params = chip.variation_params();
        let fm = chip.freq_model();
        let v_lo = chip.vdd_ntv_v();
        let v_hi = v_lo + self.rail_boost_v;
        let core_model = chip.power_model().core_model();

        // Per engaged core: low/high-rail safe frequencies.
        let mut per_core: Vec<(f64, f64, f64, f64)> = Vec::new(); // (f_lo, f_hi, dv, lm)
        for &cluster in sel.clusters() {
            for core in chip.topology().cores_of(cluster) {
                let dv = chip.sample().variation.core_vth_delta_v[core.0];
                let lm = chip.sample().variation.core_leff_mult[core.0];
                let f_lo = CoreTiming::new(fm, params, v_lo, dv, lm).safe_frequency_ghz(params);
                let f_hi = CoreTiming::new(fm, params, v_hi, dv, lm).safe_frequency_ghz(params);
                per_core.push((f_lo, f_hi, dv, lm));
            }
        }
        // The common effective frequency: everyone must reach it, so
        // it is the slowest core's boosted frequency.
        let f_tgt = per_core
            .iter()
            .map(|&(_, f_hi, _, _)| f_hi)
            .fold(f64::INFINITY, f64::min);

        let mut power_w = 0.0;
        for &(f_lo, f_hi, dv, lm) in &per_core {
            // Duty cycle on the high rail to average f_tgt.
            let duty = if f_tgt <= f_lo {
                0.0
            } else {
                ((f_tgt - f_lo) / (f_hi - f_lo).max(1e-9)).clamp(0.0, 1.0)
            };
            let p_hi = core_model.core_power(v_hi, f_hi, dv, lm).total_w();
            let p_lo = core_model
                .core_power(v_lo, f_lo.min(f_tgt), dv, lm)
                .total_w();
            power_w += (duty * p_hi + (1.0 - duty) * p_lo) * (1.0 + self.rail_overhead);
        }
        // Uncore for the engaged clusters (dual rails do not change
        // the network/memory share materially).
        let tech = fm.technology();
        power_w += sel.len() as f64
            * chip
                .power_model()
                .cluster_uncore_w(v_lo, f_tgt / tech.f_nom_ghz);

        BaselinePlan {
            mechanism: "Booster",
            clusters: n,
            core_ghz: per_core.len() as f64 * f_tgt,
            power_w,
        }
    }
}

impl Default for Booster {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// EnergySmart: single rail, per-cluster frequency domains,
/// speed-proportional task assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnergySmart;

impl EnergySmart {
    /// Plans the `n` most efficient clusters, each running at its own
    /// safe frequency, with work split proportionally to cluster
    /// speed so all clusters finish together.
    pub fn plan(&self, chip: &Chip, n: usize) -> BaselinePlan {
        let sel = ClusterSelection::select(chip, n, SelectionPolicy::EnergyEfficiency);
        let cores = chip.topology().cores_per_cluster as f64;
        let mut core_ghz = 0.0;
        let mut power_w = 0.0;
        for &cluster in sel.clusters() {
            let f = chip.cluster_safe_f_ghz(cluster);
            core_ghz += cores * f;
            power_w += chip.cluster_power_w(cluster, f);
        }
        BaselinePlan {
            mechanism: "EnergySmart",
            clusters: n,
            core_ghz,
            power_w,
        }
    }
}

/// The paper's Accordion discipline at fixed problem size (Still):
/// all engaged cores at the slowest selected cluster's safe frequency.
/// The comparison strawman that problem-size modulation improves on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EqualFrequency;

impl EqualFrequency {
    /// Plans the `n` most efficient clusters at the common binding
    /// frequency.
    pub fn plan(&self, chip: &Chip, n: usize) -> BaselinePlan {
        let sel = ClusterSelection::select(chip, n, SelectionPolicy::EnergyEfficiency);
        let f = sel.safe_f_ghz();
        BaselinePlan {
            mechanism: "equal-f (Accordion Still)",
            clusters: n,
            core_ghz: sel.num_cores(chip) as f64 * f,
            power_w: sel.power_w(chip, f),
        }
    }
}

/// Compares the three mechanisms on `chip` at the same cluster count.
pub fn compare_at(chip: &Chip, n: usize) -> [BaselinePlan; 3] {
    [
        EqualFrequency.plan(chip, n),
        EnergySmart.plan(chip, n),
        Booster::paper_default().plan(chip, n),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_chip::chip::Chip;
    use std::sync::OnceLock;

    fn chip() -> &'static Chip {
        static CHIP: OnceLock<Chip> = OnceLock::new();
        CHIP.get_or_init(|| Chip::fabricate_default(0).expect("chip"))
    }

    #[test]
    fn energysmart_out_throughputs_equal_f() {
        // Speed-proportional scheduling always beats the binding
        // common frequency in raw throughput.
        for n in [4usize, 9, 18, 36] {
            let eq = EqualFrequency.plan(chip(), n);
            let es = EnergySmart.plan(chip(), n);
            assert!(es.core_ghz >= eq.core_ghz, "n={n}");
        }
    }

    #[test]
    fn booster_equalizes_above_the_binding_frequency() {
        // The boosted rail lets the slowest core run faster than its
        // low-rail frequency, so Booster's common f exceeds equal-f.
        for n in [4usize, 18] {
            let eq = EqualFrequency.plan(chip(), n);
            let bo = Booster::paper_default().plan(chip(), n);
            assert!(bo.core_ghz > eq.core_ghz, "n={n}");
        }
    }

    #[test]
    fn booster_pays_power_for_equalization() {
        // Per unit of throughput, Booster is costlier than
        // EnergySmart: boosting burns V² on exactly the leakiest
        // corner cores.
        let exec = ExecModel::paper_default();
        let w = Workload::rms_default(1e6);
        for n in [9usize, 18] {
            let es = EnergySmart.plan(chip(), n);
            let bo = Booster::paper_default().plan(chip(), n);
            assert!(es.mips_per_w(&exec, &w) > bo.mips_per_w(&exec, &w), "n={n}");
        }
    }

    #[test]
    fn plans_report_consistent_time_power() {
        let exec = ExecModel::paper_default();
        let w = Workload::rms_default(1e6);
        for plan in compare_at(chip(), 9) {
            let t = plan.execution_time_s(&exec, &w);
            assert!(t > 0.0 && t.is_finite(), "{}", plan.mechanism);
            assert!(plan.power_w > 0.0);
            assert!(plan.mips_per_w(&exec, &w) > 0.0);
        }
    }

    #[test]
    fn all_three_mechanisms_distinct() {
        let [eq, es, bo] = compare_at(chip(), 9);
        assert_ne!(eq.core_ghz, es.core_ghz);
        assert_ne!(es.core_ghz, bo.core_ghz);
        assert_ne!(eq.mechanism, es.mechanism);
        assert_ne!(es.mechanism, bo.mechanism);
    }
}
