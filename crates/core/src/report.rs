//! Population-level summaries: the paper's headline numbers.
//!
//! Section 9: "Across a representative subset of RMS applications,
//! Accordion can achieve the STV execution time while operating
//! 1.61–1.87× more energy efficiently." Section 6.3: "We observe
//! 8–41 % f increase across chip due to operation at a higher error
//! rate."

use crate::framework::Accordion;
use crate::mode::Mode;
use accordion_apps::app::RmsApp;
use accordion_chip::chip::Chip;

/// Per-benchmark summary line.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSummary {
    /// Benchmark name.
    pub app: String,
    /// Best budget-respecting energy-efficiency ratio over STV among
    /// operating points whose quality stays within
    /// [`HeadlineReport::QUALITY_FLOOR`] of the STV default — the
    /// paper's "achieve the STV execution time while operating more
    /// energy efficiently" claim.
    pub best_eff_norm: f64,
    /// The mode family achieving it.
    pub best_mode: Mode,
    /// Best efficiency with no quality constraint (the leftmost
    /// Spec-Compress points of Figures 6/7).
    pub best_eff_unconstrained: f64,
    /// Speculative frequency gain range (fractions).
    pub spec_gain: Option<(f64, f64)>,
}

/// The headline report across benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadlineReport {
    /// One summary per benchmark.
    pub apps: Vec<AppSummary>,
}

impl HeadlineReport {
    /// Builds the report for `apps` on one fabricated chip.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty.
    pub fn compute(chip: &Chip, apps: Vec<Box<dyn RmsApp>>) -> Self {
        assert!(!apps.is_empty(), "report needs at least one benchmark");
        // Each benchmark binds its own Accordion instance (front
        // measurement + baseline + pareto extraction) — independent,
        // deterministic work; the ordered parallel map keeps the
        // report rows in the callers' benchmark order.
        let apps = accordion_pool::par_map(apps, |app| {
            let name = app.name().to_string();
            let acc = Accordion::new(chip.clone(), app);
            let best_eff_unconstrained = Mode::FIGURE_MODES
                .iter()
                .filter_map(|&m| acc.best_efficiency(m))
                .fold(f64::NEG_INFINITY, f64::max);
            let (best_eff_norm, best_mode) = acc
                .plan(Self::QUALITY_FLOOR)
                .map(|p| (p.eff_norm, p.mode))
                .unwrap_or((best_eff_unconstrained, Mode::FIGURE_MODES[0]));
            AppSummary {
                app: name,
                best_eff_norm,
                best_mode,
                best_eff_unconstrained,
                spec_gain: acc.speculative_f_gain_range(),
            }
        });
        Self { apps }
    }

    /// Minimum normalized quality an operating point must retain to
    /// count toward the headline efficiency claim.
    pub const QUALITY_FLOOR: f64 = 0.95;

    /// The headline band: `(min, max)` best efficiency ratio across
    /// benchmarks (the paper's 1.61–1.87×).
    pub fn efficiency_band(&self) -> (f64, f64) {
        let lo = self
            .apps
            .iter()
            .map(|a| a.best_eff_norm)
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .apps
            .iter()
            .map(|a| a.best_eff_norm)
            .fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    }

    /// The speculative frequency-gain band across benchmarks (the
    /// paper's 8–41 %), as fractions.
    pub fn spec_gain_band(&self) -> Option<(f64, f64)> {
        let gains: Vec<(f64, f64)> = self.apps.iter().filter_map(|a| a.spec_gain).collect();
        if gains.is_empty() {
            return None;
        }
        let lo = gains.iter().map(|g| g.0).fold(f64::INFINITY, f64::min);
        let hi = gains.iter().map(|g| g.1).fold(f64::NEG_INFINITY, f64::max);
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_apps::canneal::Canneal;
    use accordion_apps::hotspot::Hotspot;

    #[test]
    fn report_over_two_benchmarks() {
        let chip = Chip::fabricate_default(0).unwrap();
        let report = HeadlineReport::compute(
            &chip,
            vec![
                Box::new(Canneal::paper_default()),
                Box::new(Hotspot::paper_default()),
            ],
        );
        assert_eq!(report.apps.len(), 2);
        let (lo, hi) = report.efficiency_band();
        assert!(lo > 1.0, "every benchmark should beat STV, lo={lo}");
        assert!(hi < 2.5, "band top {hi} implausible");
        assert!(lo <= hi);
    }

    #[test]
    #[should_panic(expected = "at least one benchmark")]
    fn empty_report_rejected() {
        let chip = Chip::fabricate_small(0).unwrap();
        HeadlineReport::compute(&chip, vec![]);
    }
}
