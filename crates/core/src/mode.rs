//! Accordion operating modes (paper Table 1).
//!
//! Depending on how the problem size accords with the number of cores,
//! Accordion distinguishes **Still** (strong scaling: size unchanged,
//! cores increase), **Compress** (smaller problem on fewer cores at
//! higher f) and **Expand** (bigger problem on many more cores). Each
//! comes in a **Safe** flavor (`f ≤ f_NTV,Safe`, no timing errors) and
//! a **(timing-) Speculative** flavor (`f > f_NTV,Safe`, errors
//! embraced and absorbed by the application's fault tolerance).

/// How the problem size accords with the core count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProblemScaling {
    /// Problem size strictly below the STV default.
    Compress,
    /// Problem size equal to the STV default (strong scaling).
    Still,
    /// Problem size above the STV default.
    Expand,
}

/// How the NTV operating frequency relates to the safe frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrequencyPolicy {
    /// `f_NTV ≤ f_NTV,Safe`: no variation-induced timing errors.
    Safe,
    /// `f_NTV > f_NTV,Safe`: timing errors occur and must be
    /// tolerated.
    Speculative,
}

/// A full Accordion mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mode {
    /// Problem-size scaling relative to the STV baseline.
    pub scaling: ProblemScaling,
    /// Frequency policy.
    pub policy: FrequencyPolicy,
}

impl Mode {
    /// The four mode families whose pareto fronts Figures 6 and 7
    /// plot (Still is the intersection point of the two scalings).
    pub const FIGURE_MODES: [Mode; 4] = [
        Mode {
            scaling: ProblemScaling::Compress,
            policy: FrequencyPolicy::Safe,
        },
        Mode {
            scaling: ProblemScaling::Compress,
            policy: FrequencyPolicy::Speculative,
        },
        Mode {
            scaling: ProblemScaling::Expand,
            policy: FrequencyPolicy::Safe,
        },
        Mode {
            scaling: ProblemScaling::Expand,
            policy: FrequencyPolicy::Speculative,
        },
    ];

    /// Classifies the scaling from a problem-size ratio
    /// `size_NTV / size_STV` (within `tol` of 1 counts as Still).
    pub fn classify_scaling(size_ratio: f64, tol: f64) -> ProblemScaling {
        assert!(size_ratio > 0.0, "size ratio must be positive");
        if size_ratio < 1.0 - tol {
            ProblemScaling::Compress
        } else if size_ratio > 1.0 + tol {
            ProblemScaling::Expand
        } else {
            ProblemScaling::Still
        }
    }

    /// Classifies the frequency policy from the operating and safe
    /// frequencies.
    pub fn classify_policy(f_ghz: f64, f_safe_ghz: f64) -> FrequencyPolicy {
        if f_ghz > f_safe_ghz * (1.0 + 1e-9) {
            FrequencyPolicy::Speculative
        } else {
            FrequencyPolicy::Safe
        }
    }

    /// Table 1 row: whether this mode requires `N_NTV > N_STV`.
    ///
    /// Still must grow the core count by at least `f_STV/f_NTV`;
    /// Expand by even more; Compress has no restriction.
    pub fn requires_core_growth(&self) -> bool {
        !matches!(self.scaling, ProblemScaling::Compress)
    }

    /// Table 1 row: whether output quality can degrade below the STV
    /// baseline in this mode. Compress degrades by construction
    /// (smaller problem); any Speculative flavor degrades through
    /// errors; Safe Still/Expand do not.
    pub fn can_degrade_quality(&self) -> bool {
        matches!(self.scaling, ProblemScaling::Compress)
            || self.policy == FrequencyPolicy::Speculative
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let policy = match self.policy {
            FrequencyPolicy::Safe => "Safe",
            FrequencyPolicy::Speculative => "Spec.",
        };
        let scaling = match self.scaling {
            ProblemScaling::Compress => "Compress",
            ProblemScaling::Still => "Still",
            ProblemScaling::Expand => "Expand",
        };
        write!(f, "{policy} {scaling}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_size_ratio() {
        assert_eq!(Mode::classify_scaling(0.5, 0.01), ProblemScaling::Compress);
        assert_eq!(Mode::classify_scaling(1.0, 0.01), ProblemScaling::Still);
        assert_eq!(Mode::classify_scaling(1.005, 0.01), ProblemScaling::Still);
        assert_eq!(Mode::classify_scaling(2.0, 0.01), ProblemScaling::Expand);
    }

    #[test]
    fn classification_by_frequency() {
        assert_eq!(Mode::classify_policy(0.5, 0.6), FrequencyPolicy::Safe);
        assert_eq!(Mode::classify_policy(0.6, 0.6), FrequencyPolicy::Safe);
        assert_eq!(
            Mode::classify_policy(0.7, 0.6),
            FrequencyPolicy::Speculative
        );
    }

    #[test]
    fn table1_core_count_rules() {
        for mode in Mode::FIGURE_MODES {
            match mode.scaling {
                ProblemScaling::Compress => assert!(!mode.requires_core_growth()),
                _ => assert!(mode.requires_core_growth()),
            }
        }
    }

    #[test]
    fn table1_quality_rules() {
        let safe_expand = Mode {
            scaling: ProblemScaling::Expand,
            policy: FrequencyPolicy::Safe,
        };
        assert!(!safe_expand.can_degrade_quality());
        let safe_still = Mode {
            scaling: ProblemScaling::Still,
            policy: FrequencyPolicy::Safe,
        };
        assert!(!safe_still.can_degrade_quality());
        let safe_compress = Mode {
            scaling: ProblemScaling::Compress,
            policy: FrequencyPolicy::Safe,
        };
        assert!(safe_compress.can_degrade_quality());
        let spec_expand = Mode {
            scaling: ProblemScaling::Expand,
            policy: FrequencyPolicy::Speculative,
        };
        assert!(spec_expand.can_degrade_quality());
    }

    #[test]
    fn display_matches_figure_legends() {
        assert_eq!(Mode::FIGURE_MODES[0].to_string(), "Safe Compress");
        assert_eq!(Mode::FIGURE_MODES[3].to_string(), "Spec. Expand");
    }
}
