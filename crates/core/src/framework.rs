//! The user-facing Accordion framework.

use crate::baseline::StvBaseline;
use crate::mode::{FrequencyPolicy, Mode};
use crate::pareto::{ParetoExtractor, ParetoFront, ParetoPoint};
use crate::quality::QualityModel;
use accordion_apps::app::RmsApp;
use accordion_apps::harness::FrontSet;
use accordion_chip::chip::Chip;
use accordion_sim::exec::ExecModel;
use std::sync::OnceLock;

/// Accordion: one benchmark bound to one fabricated chip.
///
/// Construction measures the benchmark's quality fronts (the paper's
/// Figure 2/4 sweeps, served from the process-wide
/// [`FrontSet::measured`] cache) and computes the STV baseline; the
/// instance then answers operating-point questions: the
/// iso-execution-time fronts of Figures 6/7 and constrained mode
/// planning. The fronts are extracted once and cached — `plan`,
/// `speculative_f_gain_range` and `best_efficiency` all read the same
/// extraction.
pub struct Accordion {
    chip: Chip,
    app: Box<dyn RmsApp>,
    fronts: FrontSet,
    baseline: StvBaseline,
    iso_fronts: OnceLock<Vec<ParetoFront>>,
}

impl Accordion {
    /// Binds `app` to `chip`, measuring its quality fronts.
    pub fn new(chip: Chip, app: Box<dyn RmsApp>) -> Self {
        let fronts = FrontSet::measured(app.as_ref()).as_ref().clone();
        let baseline = StvBaseline::compute(&chip, app.as_ref(), &ExecModel::paper_default());
        Self {
            chip,
            app,
            fronts,
            baseline,
            iso_fronts: OnceLock::new(),
        }
    }

    /// The fabricated chip.
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// The bound benchmark.
    pub fn app(&self) -> &dyn RmsApp {
        self.app.as_ref()
    }

    /// The measured quality fronts.
    pub fn fronts(&self) -> &FrontSet {
        &self.fronts
    }

    /// The STV baseline.
    pub fn baseline(&self) -> &StvBaseline {
        &self.baseline
    }

    /// The interpolated quality model.
    pub fn quality_model(&self) -> QualityModel {
        QualityModel::from_front_set(&self.fronts)
    }

    /// Extracts the four iso-execution-time pareto fronts
    /// (Figures 6/7). Extraction runs once per instance; subsequent
    /// calls clone the cached fronts.
    pub fn iso_time_fronts(&self) -> Vec<ParetoFront> {
        self.iso_fronts
            .get_or_init(|| {
                ParetoExtractor::new(&self.chip, self.app.as_ref(), &self.fronts).extract()
            })
            .clone()
    }

    /// Picks the most energy-efficient iso-time operating point whose
    /// quality stays at or above `quality_min` (normalized to the STV
    /// default) and whose power fits the budget. Returns `None` when
    /// no mode satisfies the constraint.
    pub fn plan(&self, quality_min: f64) -> Option<ParetoPoint> {
        self.iso_time_fronts()
            .into_iter()
            .flat_map(|f| f.points)
            .filter(|p| p.quality_norm >= quality_min && !p.power_limited)
            .max_by(|a, b| {
                a.eff_norm
                    .partial_cmp(&b.eff_norm)
                    .expect("efficiencies are finite")
            })
    }

    /// The speculative frequency gain over safe operation, as a
    /// fraction, across all speculative front points (the paper
    /// reports 8–41 % across chips). Returns `(min, max)` or `None`
    /// if no speculative point exists.
    pub fn speculative_f_gain_range(&self) -> Option<(f64, f64)> {
        let gains: Vec<f64> = self
            .iso_time_fronts()
            .into_iter()
            .filter(|f| f.flavor.policy == FrequencyPolicy::Speculative)
            .flat_map(|f| f.points)
            .map(|p| p.f_ntv_ghz / p.f_safe_ghz - 1.0)
            .collect();
        if gains.is_empty() {
            return None;
        }
        let lo = gains.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = gains.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some((lo, hi))
    }

    /// Best energy-efficiency ratio over STV among budget-respecting
    /// points of `flavor`.
    pub fn best_efficiency(&self, flavor: Mode) -> Option<f64> {
        self.iso_time_fronts()
            .into_iter()
            .find(|f| f.flavor == flavor)
            .and_then(|f| {
                f.points
                    .into_iter()
                    .filter(|p| !p.power_limited)
                    .map(|p| p.eff_norm)
                    .fold(None, |acc: Option<f64>, x| {
                        Some(acc.map_or(x, |a| a.max(x)))
                    })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_apps::srad::Srad;
    use std::sync::OnceLock;

    fn accordion() -> &'static Accordion {
        static CACHE: OnceLock<Accordion> = OnceLock::new();
        CACHE.get_or_init(|| {
            let chip = Chip::fabricate_default(0).unwrap();
            Accordion::new(chip, Box::new(Srad::paper_default()))
        })
    }

    #[test]
    fn planning_respects_quality_floor() {
        let acc = accordion();
        if let Some(p) = acc.plan(0.9) {
            assert!(p.quality_norm >= 0.9);
            assert!(!p.power_limited);
        }
        // An impossible floor yields no plan.
        assert!(acc.plan(10.0).is_none());
    }

    #[test]
    fn lower_quality_floor_never_reduces_efficiency() {
        let acc = accordion();
        let strict = acc.plan(0.95).map(|p| p.eff_norm).unwrap_or(0.0);
        let loose = acc.plan(0.5).map(|p| p.eff_norm).unwrap_or(0.0);
        assert!(loose >= strict);
    }

    #[test]
    fn speculative_gain_in_plausible_band() {
        let acc = accordion();
        let (lo, hi) = acc.speculative_f_gain_range().expect("spec points exist");
        assert!(lo >= 0.0, "gain cannot be negative, lo={lo}");
        assert!(hi <= 1.0, "gain above 100% implausible, hi={hi}");
        assert!(hi > 0.02, "some speculative gain expected, hi={hi}");
    }

    #[test]
    fn headline_efficiency_beats_stv() {
        let acc = accordion();
        let best = Mode::FIGURE_MODES
            .iter()
            .filter_map(|&m| acc.best_efficiency(m))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(best > 1.0, "best efficiency ratio {best}");
    }
}
