//! Quality estimation from measured fronts.
//!
//! The framework characterizes each benchmark once (the Figure 2/4
//! sweeps) and then interpolates: Safe modes read the Default front at
//! the candidate problem size; Speculative modes read the Drop front —
//! Drop 1/4 by default, or the more conservative Drop 1/2 when the
//! benchmark barely notices Drop 1/4 (the paper's Section 6.3 rule).

use accordion_apps::app::RmsApp;
use accordion_apps::harness::{FrontSet, Scenario};
use accordion_stats::interp::PiecewiseLinear;

/// Interpolated quality model for one benchmark.
#[derive(Debug, Clone)]
pub struct QualityModel {
    default_front: PiecewiseLinear,
    drop_front: PiecewiseLinear,
    drop_scenario: Scenario,
    size_domain: (f64, f64),
}

impl QualityModel {
    /// Quality-degradation threshold under Drop 1/4 below which the
    /// paper switches to reporting Drop 1/2 (degradation "negligible").
    pub const NEGLIGIBLE_DEGRADATION: f64 = 0.03;

    /// Measures the fronts for `app` and builds the model. The
    /// measurement is served from the process-wide
    /// [`FrontSet::measured`] cache — the kernels run once per app per
    /// process.
    pub fn measure(app: &dyn RmsApp) -> Self {
        Self::from_front_set(&FrontSet::measured(app))
    }

    /// Builds the model from pre-measured fronts.
    ///
    /// # Panics
    ///
    /// Panics if the set lacks the Default, Drop 1/4 or Drop 1/2
    /// fronts.
    pub fn from_front_set(set: &FrontSet) -> Self {
        let default = set.front(Scenario::Default).expect("Default front");
        let drop14 = set.front(Scenario::Drop(0.25)).expect("Drop 1/4 front");
        let drop12 = set.front(Scenario::Drop(0.5)).expect("Drop 1/2 front");

        let default_front = default.interpolator();
        // Degradation at the default problem size decides which Drop
        // front Speculative quality reads.
        let q_def = default_front.eval(1.0);
        let deg14 = (q_def - drop14.interpolator().eval(1.0)) / q_def.max(1e-9);
        let (drop_front, drop_scenario) = if deg14 < Self::NEGLIGIBLE_DEGRADATION {
            (drop12.interpolator(), Scenario::Drop(0.5))
        } else {
            (drop14.interpolator(), Scenario::Drop(0.25))
        };
        let size_domain = default_front.domain();
        Self {
            default_front,
            drop_front,
            drop_scenario,
            size_domain,
        }
    }

    /// Quality (normalized to the STV default) of an error-free run at
    /// `size_norm` × the default problem size.
    pub fn quality_safe(&self, size_norm: f64) -> f64 {
        self.default_front.eval(size_norm)
    }

    /// Quality of a speculative (error-afflicted) run at `size_norm`.
    pub fn quality_speculative(&self, size_norm: f64) -> f64 {
        self.drop_front.eval(size_norm)
    }

    /// Which Drop scenario speculative quality is read from (the
    /// paper's Drop 1/4-or-1/2 rule).
    pub fn speculative_scenario(&self) -> Scenario {
        self.drop_scenario
    }

    /// The measured problem-size range (normalized), inside which the
    /// interpolation is trustworthy.
    pub fn size_domain(&self) -> (f64, f64) {
        self.size_domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_apps::bodytrack::Bodytrack;
    use accordion_apps::canneal::Canneal;

    #[test]
    fn safe_quality_grows_with_size() {
        let m = QualityModel::measure(&Canneal::paper_default());
        let (lo, hi) = m.size_domain();
        assert!(m.quality_safe(hi) > m.quality_safe(lo));
    }

    #[test]
    fn speculative_quality_not_above_safe() {
        let m = QualityModel::measure(&Canneal::paper_default());
        let (lo, hi) = m.size_domain();
        for i in 0..=10 {
            let s = lo + (hi - lo) * i as f64 / 10.0;
            assert!(
                m.quality_speculative(s) <= m.quality_safe(s) + 0.05,
                "at size {s}"
            );
        }
    }

    #[test]
    fn drop_sensitive_benchmark_uses_drop_quarter() {
        // The paper singles out bodytrack as highly Drop-sensitive, so
        // its speculative front must be the Drop 1/4 one.
        let m = QualityModel::measure(&Bodytrack::paper_default());
        assert_eq!(m.speculative_scenario(), Scenario::Drop(0.25));
    }

    #[test]
    fn default_size_has_unity_quality() {
        let m = QualityModel::measure(&Canneal::paper_default());
        assert!((m.quality_safe(1.0) - 1.0).abs() < 0.05);
    }
}
