//! The super-threshold (STV) baseline execution.
//!
//! `Execution Time_STV` is obtained at the default problem size, with
//! `N_STV` cores (the most that fit the 100 W budget at the STV
//! nominal voltage) at the STV nominal frequency. The paper favours
//! STV by neglecting variation there (Section 6.3) — so the baseline
//! uses nominal, variation-free cores.

use accordion_apps::app::RmsApp;
use accordion_chip::chip::Chip;
use accordion_sim::exec::ExecModel;
use accordion_sim::workload::Workload;

/// The STV reference operating point for one benchmark on one chip.
#[derive(Debug, Clone, PartialEq)]
pub struct StvBaseline {
    /// Core count fitting the power budget at STV (cluster granular).
    pub n_stv: usize,
    /// STV nominal frequency in GHz.
    pub f_stv_ghz: f64,
    /// The default-knob workload.
    pub workload: Workload,
    /// Baseline execution time in seconds.
    pub exec_time_s: f64,
    /// Baseline chip power in watts.
    pub power_w: f64,
    /// Baseline throughput in MIPS.
    pub mips: f64,
}

impl StvBaseline {
    /// Computes the baseline for `app` on `chip` with timing model
    /// `exec`.
    pub fn compute(chip: &Chip, app: &dyn RmsApp, exec: &ExecModel) -> Self {
        let tech = chip.freq_model().technology();
        let topo = chip.topology();
        let n_stv = chip.n_stv();
        let f_stv_ghz = tech.f_stv_ghz;
        let workload = app.full_scale_workload(app.default_knob());
        let exec_time_s = exec.execution_time_s(&workload, n_stv, f_stv_ghz);
        let clusters = n_stv.div_ceil(topo.cores_per_cluster);
        let power_w = chip
            .power_model()
            .chip_power(topo, n_stv, clusters, tech.vdd_stv_v, f_stv_ghz)
            .total_w();
        let mips = exec.total_mips(&workload, n_stv, f_stv_ghz);
        Self {
            n_stv,
            f_stv_ghz,
            workload,
            exec_time_s,
            power_w,
            mips,
        }
    }

    /// Baseline energy efficiency in MIPS per watt.
    pub fn mips_per_w(&self) -> f64 {
        self.mips / self.power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_apps::hotspot::Hotspot;

    fn baseline() -> StvBaseline {
        let chip = Chip::fabricate_small(0).unwrap();
        StvBaseline::compute(
            &chip,
            &Hotspot::paper_default(),
            &ExecModel::paper_default(),
        )
    }

    #[test]
    fn baseline_is_within_budget() {
        let b = baseline();
        assert!(b.power_w <= 100.0, "baseline draws {}", b.power_w);
        assert!(b.power_w > 10.0, "baseline {} implausibly low", b.power_w);
    }

    #[test]
    fn baseline_runs_at_stv_frequency() {
        let b = baseline();
        assert!((b.f_stv_ghz - 3.3).abs() < 1e-9);
        assert!(b.exec_time_s > 0.0 && b.exec_time_s.is_finite());
    }

    #[test]
    fn efficiency_is_positive() {
        let b = baseline();
        assert!(b.mips_per_w() > 0.0);
    }
}
