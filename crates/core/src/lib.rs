//! # Accordion
//!
//! A reproduction of *"Accordion: Toward Soft Near-Threshold Voltage
//! Computing"* (Karpuzcu, Akturk, Kim — HPCA 2014).
//!
//! Accordion overcomes the two barriers of near-threshold voltage
//! computing (NTC) — frequency degradation and amplified parametric
//! variation — by exploiting weak scaling and the inherent fault
//! tolerance of R(ecognition)/M(ining)/S(ynthesis) applications. The
//! **problem size** becomes the knob that simultaneously trades off
//! the degree of parallelism (cores engaged) against vulnerability to
//! variation (output-quality corruption from timing errors).
//!
//! This crate is the framework layer on top of the substrate crates:
//!
//! * [`mode`] — the Table 1 operating modes: Still / Compress / Expand
//!   crossed with Safe / (timing-)Speculative frequency policies,
//! * [`baseline`] — the super-threshold (STV) reference execution the
//!   paper normalizes everything to,
//! * [`quality`] — measured quality fronts with interpolation, the
//!   bridge from problem size to output quality under error scenarios,
//! * [`pareto`] — iso-execution-time pareto-front extraction, the
//!   machinery behind Figures 6 and 7,
//! * [`framework`] — the user-facing [`framework::Accordion`] type
//!   gluing a fabricated chip to a benchmark,
//! * [`report`] — population-level summaries, including the paper's
//!   headline 1.61–1.87× energy-efficiency band,
//! * [`runtime`] — the Section 7 extension: dynamic re-planning of the
//!   cluster allocation as resiliency drifts mid-execution,
//! * [`baselines`] — the Section 8 comparators, Booster and
//!   EnergySmart, implemented on the same chip model,
//! * [`validation`] — end-to-end validation: protocol-derived error
//!   masks drive the real kernels and the measured quality is checked
//!   against the interpolated model.
//!
//! # Example
//!
//! ```no_run
//! use accordion::framework::Accordion;
//! use accordion_apps::hotspot::Hotspot;
//! use accordion_chip::chip::Chip;
//!
//! let chip = Chip::fabricate_default(0)?;
//! let acc = Accordion::new(chip, Box::new(Hotspot::paper_default()));
//! let fronts = acc.iso_time_fronts();
//! for front in &fronts {
//!     println!("{}: {} feasible operating points", front.flavor, front.points.len());
//! }
//! # Ok::<(), accordion_stats::field::FieldError>(())
//! ```

pub mod baseline;
pub mod baselines;
pub mod framework;
pub mod mode;
pub mod pareto;
pub mod quality;
pub mod report;
pub mod runtime;
pub mod validation;

pub use baseline::StvBaseline;
pub use framework::Accordion;
pub use mode::{FrequencyPolicy, Mode, ProblemScaling};
pub use pareto::{ParetoFront, ParetoPoint};
