//! Iso-execution-time pareto-front extraction (Figures 6 and 7).
//!
//! Each point on a front characterizes a distinct problem size and
//! answers: how must `N_NTV` and `f_NTV` be set for the NTV execution
//! time to converge to the STV execution time? Cores are allocated at
//! cluster granularity, picking the most energy-efficient clusters
//! first; all engaged cores run at the frequency of the slowest
//! selected cluster (Safe) or at the speculative frequency whose
//! per-cycle error rate matches one error per thread execution
//! (Speculative, Section 6.3).

use crate::baseline::StvBaseline;
use crate::mode::{FrequencyPolicy, Mode, ProblemScaling};
use crate::quality::QualityModel;
use accordion_apps::app::RmsApp;
use accordion_apps::harness::{FrontSet, Scenario};
use accordion_chip::chip::Chip;
use accordion_chip::columns::ChipColumns;
use accordion_chip::selection::{ClusterSelection, SelectionPolicy};
use accordion_sim::exec::ExecModel;
use accordion_telemetry::event::SimEvent;
use accordion_telemetry::{flight, span};

/// Which evaluation path answers the extractor's per-point queries.
///
/// Both paths are bit-identical (pinned by `tests/determinism.rs` and
/// the columnar proptests); `Scalar` exists as the reference the
/// batched engine is benchmarked and verified against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepEngine {
    /// Columnar: per-chip invariants (cluster efficiencies, the
    /// efficiency order, prefix safe frequencies, timing columns) are
    /// computed once per extractor and every grid cell is served from
    /// flat array passes.
    #[default]
    Batched,
    /// Legacy object path: every cell re-sorts clusters and re-walks
    /// the per-cluster timing objects.
    Scalar,
}

/// Relative tolerance around `size_norm = 1` that counts as Still.
const STILL_TOL: f64 = 0.02;

/// Cap on the speculative per-cycle error rate. Accordion keeps
/// checkpoint-recovery as a safety net whose cost is negligible only
/// while errors stay rare (Section 4.1); beyond roughly one error per
/// million cycles the recovery machinery would dominate, so the
/// operating-point search refuses to speculate harder than this.
const PERR_SPECULATIVE_CAP: f64 = 1e-6;

/// One iso-execution-time operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// The mode this point operates in.
    pub mode: Mode,
    /// Problem size normalized to the STV default.
    pub size_norm: f64,
    /// Selected cluster count.
    pub clusters: usize,
    /// Engaged NTV core count.
    pub n_ntv: usize,
    /// `N_NTV / N_STV`.
    pub n_ratio: f64,
    /// Operating frequency in GHz.
    pub f_ntv_ghz: f64,
    /// Binding safe frequency of the selection in GHz.
    pub f_safe_ghz: f64,
    /// Per-cycle timing-error rate (0 under Safe).
    pub perr: f64,
    /// Achieved execution time in seconds (≤ the STV baseline).
    pub exec_time_s: f64,
    /// Chip power of the selection in watts.
    pub power_w: f64,
    /// `Power_NTV / Power_STV`.
    pub power_norm: f64,
    /// Energy efficiency in MIPS/W.
    pub mips_per_w: f64,
    /// `(MIPS/W)_NTV / (MIPS/W)_STV`.
    pub eff_norm: f64,
    /// Output quality normalized to the STV default execution.
    pub quality_norm: f64,
    /// Whether this point exceeds the chip power budget (the paper's
    /// power-limited Expand points).
    pub power_limited: bool,
}

/// An iso-execution-time pareto front for one mode family.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoFront {
    /// Benchmark name.
    pub app: String,
    /// Mode family (Safe/Spec × Compress/Expand).
    pub flavor: Mode,
    /// Points ordered by increasing problem size.
    pub points: Vec<ParetoPoint>,
}

impl ParetoFront {
    /// Serializes the front as CSV (one row per operating point), for
    /// plotting outside the harness.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "app,mode,size_norm,clusters,n_ntv,n_ratio,f_ntv_ghz,f_safe_ghz,perr,\
             exec_time_s,power_w,power_norm,mips_per_w,eff_norm,quality_norm,power_limited\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                self.app,
                self.flavor,
                p.size_norm,
                p.clusters,
                p.n_ntv,
                p.n_ratio,
                p.f_ntv_ghz,
                p.f_safe_ghz,
                p.perr,
                p.exec_time_s,
                p.power_w,
                p.power_norm,
                p.mips_per_w,
                p.eff_norm,
                p.quality_norm,
                p.power_limited,
            ));
        }
        out
    }
}

/// Extracts the four Figure 6/7 fronts for one benchmark on one chip.
pub struct ParetoExtractor<'a> {
    chip: &'a Chip,
    /// Columnar per-chip invariants: efficiency order, prefix safe
    /// frequencies, timing columns — built once, reused by every
    /// (flavor, size, cluster-count) cell.
    cols: ChipColumns,
    app: &'a dyn RmsApp,
    exec: ExecModel,
    baseline: StvBaseline,
    quality: QualityModel,
    sizes: Vec<f64>,
}

impl<'a> ParetoExtractor<'a> {
    /// Builds an extractor from a pre-measured front set.
    pub fn new(chip: &'a Chip, app: &'a dyn RmsApp, fronts: &FrontSet) -> Self {
        let exec = ExecModel::paper_default();
        let baseline = StvBaseline::compute(chip, app, &exec);
        let quality = QualityModel::from_front_set(fronts);
        let mut sizes: Vec<f64> = fronts
            .front(Scenario::Default)
            .expect("Default front")
            .points
            .iter()
            .map(|p| p.size_norm)
            .collect();
        // The Still point (the fronts' intersection) must be present.
        if !sizes.iter().any(|s| (s - 1.0).abs() <= STILL_TOL) {
            sizes.push(1.0);
        }
        sizes.sort_by(|a, b| a.partial_cmp(b).expect("sizes are finite"));
        // Densify: the quality model interpolates between measured
        // points, so intermediate problem sizes are sound — and the
        // feasible Expand window can be narrower than the measured
        // sweep's spacing.
        let mut dense = Vec::with_capacity(sizes.len() * 3);
        for w in sizes.windows(2) {
            dense.push(w[0]);
            let ratio = w[1] / w[0];
            if ratio > 1.1 {
                let steps = (ratio.ln() / 1.08f64.ln()).ceil() as usize;
                for k in 1..steps {
                    dense.push(w[0] * ratio.powf(k as f64 / steps as f64));
                }
            }
        }
        dense.push(*sizes.last().expect("non-empty"));
        let sizes = dense;
        Self {
            chip,
            cols: ChipColumns::build(chip),
            app,
            exec,
            baseline,
            quality,
            sizes,
        }
    }

    /// The STV baseline the fronts are normalized to.
    pub fn baseline(&self) -> &StvBaseline {
        &self.baseline
    }

    /// Extracts all four mode-family fronts with the batched engine.
    pub fn extract(&self) -> Vec<ParetoFront> {
        self.extract_with(SweepEngine::Batched)
    }

    /// Extracts all four mode-family fronts with an explicit engine.
    pub fn extract_with(&self, engine: SweepEngine) -> Vec<ParetoFront> {
        Mode::FIGURE_MODES
            .iter()
            .map(|&flavor| self.extract_flavor(engine, flavor))
            .collect()
    }

    fn extract_flavor(&self, engine: SweepEngine, flavor: Mode) -> ParetoFront {
        let _span = span!("sweep.extract_flavor");
        let cells: Vec<f64> = self
            .sizes
            .iter()
            .copied()
            .filter(|&s| match flavor.scaling {
                ProblemScaling::Compress => s <= 1.0 + STILL_TOL,
                ProblemScaling::Expand => s >= 1.0 - STILL_TOL,
                ProblemScaling::Still => (s - 1.0).abs() <= STILL_TOL,
            })
            .collect();
        let n_cells = cells.len() as u64;
        let points: Vec<ParetoPoint> = cells
            .into_iter()
            .filter_map(|s| self.solve_point_with(engine, flavor, s))
            .collect();
        if engine == SweepEngine::Batched {
            flight!(SimEvent::SweepFrontRetire {
                policy: match flavor.policy {
                    FrequencyPolicy::Safe => "safe",
                    FrequencyPolicy::Speculative => "speculative",
                },
                scaling: match flavor.scaling {
                    ProblemScaling::Compress => "compress",
                    ProblemScaling::Expand => "expand",
                    ProblemScaling::Still => "still",
                },
                cells: n_cells,
                points: points.len() as u64,
            });
        }
        ParetoFront {
            app: self.app.name().to_string(),
            flavor,
            points,
        }
    }

    /// Finds the minimal cluster count achieving iso-execution time at
    /// problem size `size_norm` under `flavor`'s frequency policy,
    /// using the batched engine. Returns `None` when no cluster count
    /// suffices (N-limited).
    pub fn solve_point(&self, flavor: Mode, size_norm: f64) -> Option<ParetoPoint> {
        self.solve_point_with(SweepEngine::Batched, flavor, size_norm)
    }

    /// [`Self::solve_point`] with an explicit engine. Both engines
    /// return bit-identical points.
    pub fn solve_point_with(
        &self,
        engine: SweepEngine,
        flavor: Mode,
        size_norm: f64,
    ) -> Option<ParetoPoint> {
        match engine {
            SweepEngine::Batched => self.solve_point_batched(flavor, size_norm),
            SweepEngine::Scalar => self.solve_point_scalar(flavor, size_norm),
        }
    }

    /// Batched cell solve: cluster counts walk precomputed prefixes of
    /// the efficiency order — no sorting, no per-candidate selection
    /// materialization (the `ClusterSelection` is only assembled for
    /// the accepted count), one quantile inversion per frequency query.
    fn solve_point_batched(&self, flavor: Mode, size_norm: f64) -> Option<ParetoPoint> {
        let _span = span!("sweep.cell.batched");
        let topo = self.chip.topology();
        let w = self.baseline.workload.scaled(size_norm);
        let size_milli = (size_norm * 1000.0).round() as u64;
        for clusters in 1..=topo.num_clusters() {
            let n_ntv = clusters * topo.cores_per_cluster;
            let f_safe = self.cols.safe_f_ghz(clusters);
            let (f, perr) = match flavor.policy {
                FrequencyPolicy::Safe => (f_safe, 0.0),
                FrequencyPolicy::Speculative => {
                    self.speculative_frequency_batched(clusters, &w, n_ntv, f_safe)
                }
            };
            let time = self.exec.execution_time_s(&w, n_ntv, f);
            if time <= self.baseline.exec_time_s * (1.0 + 1e-9) {
                let sel = self.cols.selection_prefix(clusters);
                flight!(SimEvent::SweepCellSolve {
                    probed: clusters as u64,
                    clusters: clusters as u64,
                    size_milli,
                });
                return Some(
                    self.make_point(flavor, size_norm, sel, n_ntv, f, f_safe, perr, time, &w),
                );
            }
        }
        flight!(SimEvent::SweepCellSolve {
            probed: topo.num_clusters() as u64,
            clusters: 0,
            size_milli,
        });
        None
    }

    /// Reference cell solve: the legacy object path, kept verbatim as
    /// the bit-identity baseline for the batched engine (and the
    /// denominator of the `sweep_batched_vs_scalar` bench gate).
    fn solve_point_scalar(&self, flavor: Mode, size_norm: f64) -> Option<ParetoPoint> {
        let _span = span!("sweep.cell.scalar");
        let topo = self.chip.topology();
        let w = self.baseline.workload.scaled(size_norm);
        for clusters in 1..=topo.num_clusters() {
            let sel =
                ClusterSelection::select(self.chip, clusters, SelectionPolicy::EnergyEfficiency);
            let n_ntv = sel.num_cores(self.chip);
            let f_safe = sel.safe_f_ghz();
            let (f, perr) = match flavor.policy {
                FrequencyPolicy::Safe => (f_safe, 0.0),
                FrequencyPolicy::Speculative => self.speculative_frequency(&sel, &w, n_ntv, f_safe),
            };
            let time = self.exec.execution_time_s(&w, n_ntv, f);
            if time <= self.baseline.exec_time_s * (1.0 + 1e-9) {
                return Some(
                    self.make_point(flavor, size_norm, sel, n_ntv, f, f_safe, perr, time, &w),
                );
            }
        }
        None
    }

    /// Fixed-point solve of the speculative frequency: the error rate
    /// is dictated by the execution time per infected thread —
    /// `Perr = 1/e` for `e`-cycle threads (Section 6.3) — while the
    /// thread length itself depends on the frequency through the CPI.
    fn speculative_frequency(
        &self,
        sel: &ClusterSelection,
        w: &accordion_sim::workload::Workload,
        n_ntv: usize,
        f_safe: f64,
    ) -> (f64, f64) {
        let mut f = f_safe;
        let mut perr = 0.0;
        for _ in 0..3 {
            let cycles = self.exec.thread_cycles(w, w.work_units / n_ntv as f64, f);
            perr = (1.0 / cycles.max(1.0)).min(PERR_SPECULATIVE_CAP);
            f = sel.f_for_perr_ghz(self.chip, perr).max(f_safe);
        }
        (f, perr)
    }

    /// [`Self::speculative_frequency`] against the columnar prefix:
    /// the same 3-iteration fixed point, with the binding-frequency
    /// query served by one hoisted quantile inversion per iteration.
    fn speculative_frequency_batched(
        &self,
        clusters: usize,
        w: &accordion_sim::workload::Workload,
        n_ntv: usize,
        f_safe: f64,
    ) -> (f64, f64) {
        let mut f = f_safe;
        let mut perr = 0.0;
        for _ in 0..3 {
            let cycles = self.exec.thread_cycles(w, w.work_units / n_ntv as f64, f);
            perr = (1.0 / cycles.max(1.0)).min(PERR_SPECULATIVE_CAP);
            f = self.cols.f_for_perr_ghz(clusters, perr).max(f_safe);
        }
        (f, perr)
    }

    #[allow(clippy::too_many_arguments)]
    fn make_point(
        &self,
        flavor: Mode,
        size_norm: f64,
        sel: ClusterSelection,
        n_ntv: usize,
        f: f64,
        f_safe: f64,
        perr: f64,
        time: f64,
        w: &accordion_sim::workload::Workload,
    ) -> ParetoPoint {
        let power_w = sel.power_w(self.chip, f);
        let mips = self.exec.total_mips(w, n_ntv, f);
        let mips_per_w = mips / power_w;
        let quality_norm = match flavor.policy {
            FrequencyPolicy::Safe => self.quality.quality_safe(size_norm),
            FrequencyPolicy::Speculative => self.quality.quality_speculative(size_norm),
        };
        ParetoPoint {
            mode: Mode {
                scaling: Mode::classify_scaling(size_norm, STILL_TOL),
                policy: flavor.policy,
            },
            size_norm,
            clusters: sel.len(),
            n_ntv,
            n_ratio: n_ntv as f64 / self.baseline.n_stv as f64,
            f_ntv_ghz: f,
            f_safe_ghz: f_safe,
            perr,
            exec_time_s: time,
            power_w,
            power_norm: power_w / self.baseline.power_w,
            mips_per_w,
            eff_norm: mips_per_w / self.baseline.mips_per_w(),
            quality_norm,
            power_limited: power_w > self.chip.power_model().budget_w(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_apps::hotspot::Hotspot;
    use std::sync::OnceLock;

    fn fronts() -> &'static (Chip, Hotspot, Vec<ParetoFront>) {
        static CACHE: OnceLock<(Chip, Hotspot, Vec<ParetoFront>)> = OnceLock::new();
        CACHE.get_or_init(|| {
            let chip = Chip::fabricate_default(0).unwrap();
            let app = Hotspot::paper_default();
            let set = FrontSet::measure(&app);
            let fronts = ParetoExtractor::new(&chip, &app, &set).extract();
            (chip, app, fronts)
        })
    }

    fn front(flavor: Mode) -> &'static ParetoFront {
        fronts().2.iter().find(|f| f.flavor == flavor).unwrap()
    }

    #[test]
    fn all_four_flavors_have_points() {
        for flavor in Mode::FIGURE_MODES {
            assert!(
                !front(flavor).points.is_empty(),
                "{flavor} front must not be empty"
            );
        }
    }

    #[test]
    fn batched_engine_matches_scalar() {
        let (chip, app, batched) = fronts();
        let set = FrontSet::measure(app);
        let extractor = ParetoExtractor::new(chip, app, &set);
        let scalar = extractor.extract_with(SweepEngine::Scalar);
        assert_eq!(*batched, scalar, "engines must agree point-for-point");
    }

    #[test]
    fn iso_time_holds_everywhere() {
        let (chip, app, fronts) = fronts();
        let set = FrontSet::measure(app);
        let extractor = ParetoExtractor::new(chip, app, &set);
        let t0 = extractor.baseline().exec_time_s;
        for f in fronts {
            for p in &f.points {
                assert!(
                    p.exec_time_s <= t0 * (1.0 + 1e-6),
                    "{}: point at size {} misses iso-time",
                    f.flavor,
                    p.size_norm
                );
            }
        }
    }

    #[test]
    fn core_count_grows_with_problem_size() {
        for flavor in Mode::FIGURE_MODES {
            let pts = &front(flavor).points;
            for w in pts.windows(2) {
                assert!(
                    w[1].n_ntv >= w[0].n_ntv,
                    "{flavor}: larger problems need at least as many cores"
                );
            }
        }
    }

    #[test]
    fn compress_uses_fewer_cores_than_expand() {
        // Paper: Safe Compress achieves iso-time at lower core counts
        // than Safe Expand.
        let c_max = front(Mode::FIGURE_MODES[0]).points.last().unwrap().n_ntv;
        let e_max = front(Mode::FIGURE_MODES[2]).points.last().unwrap().n_ntv;
        assert!(c_max <= e_max);
    }

    #[test]
    fn speculative_frequency_at_least_safe() {
        for flavor in [Mode::FIGURE_MODES[1], Mode::FIGURE_MODES[3]] {
            for p in &front(flavor).points {
                assert!(p.f_ntv_ghz >= p.f_safe_ghz - 1e-12);
                assert!(p.perr > 0.0, "speculative points carry errors");
            }
        }
    }

    #[test]
    fn speculative_needs_no_more_cores_than_safe() {
        // Higher speculative f ⇒ the same size is feasible at ≤ cores.
        let safe = &front(Mode::FIGURE_MODES[2]).points;
        let spec = &front(Mode::FIGURE_MODES[3]).points;
        for (s, p) in safe.iter().zip(spec) {
            assert_eq!(s.size_norm, p.size_norm);
            assert!(p.n_ntv <= s.n_ntv);
        }
    }

    #[test]
    fn efficiency_beats_stv_at_moderate_core_counts() {
        // The headline claim: NTV iso-time operation is more energy
        // efficient than STV (up to <2× per Section 6.3).
        let best = fronts()
            .2
            .iter()
            .flat_map(|f| &f.points)
            .map(|p| p.eff_norm)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(best > 1.0, "best eff_norm {best} must beat STV");
        assert!(best < 2.5, "eff_norm {best} implausibly high");
    }

    #[test]
    fn csv_export_round_trips_row_count() {
        let front = front(Mode::FIGURE_MODES[0]);
        let csv = front.to_csv();
        assert_eq!(csv.lines().count(), 1 + front.points.len());
        assert!(csv.lines().next().unwrap().starts_with("app,mode,"));
        assert!(csv.contains("hotspot"));
    }

    #[test]
    fn quality_tracks_problem_size_on_fronts() {
        let pts = &front(Mode::FIGURE_MODES[2]).points; // Safe Expand
        for w in pts.windows(2) {
            assert!(w[1].quality_norm >= w[0].quality_norm - 1e-9);
        }
    }
}
