//! Dynamic runtime orchestration — the paper's Section 7 extension.
//!
//! The paper's evaluation fixes the resource allocation and operating
//! point for the entire execution, and notes as an open question that
//! "both, phases of the application, and the hardware resources may
//! experience changes in resiliency within the course of execution",
//! while "the number of cores assigned to computation can be changed
//! midst-execution, the problem size may not be".
//!
//! This module implements exactly that contract: a controller that
//! re-plans the *cluster count* (never the problem size) at epoch
//! boundaries as per-cluster safe frequencies drift (thermal or aging
//! derating), chasing the original iso-execution-time deadline.

use accordion_chip::chip::Chip;
use accordion_chip::topology::ClusterId;
use accordion_sim::exec::ExecModel;
use accordion_sim::workload::Workload;
use accordion_telemetry::event::SimEvent;
use accordion_telemetry::{counter, flight, gauge, histogram, span, trace_event, Level};

/// Per-epoch account of a dynamically orchestrated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// Epoch index.
    pub epoch: usize,
    /// Clusters engaged during the epoch.
    pub clusters: usize,
    /// Binding (derated) frequency of the engaged set, GHz.
    pub f_ghz: f64,
    /// Fraction of total work completed by the end of this epoch.
    pub work_done: f64,
    /// Power drawn during the epoch, W.
    pub power_w: f64,
}

/// Outcome of a dynamic (or static) run under drift.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftRun {
    /// Per-epoch accounts.
    pub epochs: Vec<EpochReport>,
    /// Whether all work finished within the deadline.
    pub met_deadline: bool,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Completion time in seconds (= deadline if unfinished).
    pub elapsed_s: f64,
}

/// Re-plans cluster counts at epoch boundaries against drifting
/// per-cluster safe frequencies.
pub struct RuntimeController<'a> {
    chip: &'a Chip,
    exec: ExecModel,
    workload: Workload,
    deadline_s: f64,
}

impl<'a> RuntimeController<'a> {
    /// Creates a controller for one workload with an iso-time
    /// deadline.
    ///
    /// # Panics
    ///
    /// Panics if the deadline is not positive.
    pub fn new(chip: &'a Chip, workload: Workload, deadline_s: f64) -> Self {
        assert!(deadline_s > 0.0, "deadline must be positive");
        Self {
            chip,
            exec: ExecModel::paper_default(),
            workload,
            deadline_s,
        }
    }

    /// Derated safe frequency of a cluster.
    fn derated_f(&self, cluster: usize, derate: &[f64]) -> f64 {
        self.chip.cluster_safe_f_ghz(ClusterId(cluster)) * derate[cluster]
    }

    /// Clusters ordered by derated energy efficiency (the paper's
    /// selection policy, re-evaluated against current resiliency).
    /// Efficiencies are priced once per cluster, not per comparison —
    /// `cluster_eff` is a pure function, so sorting on the precomputed
    /// values yields the identical permutation.
    fn ordered_clusters(&self, derate: &[f64]) -> Vec<usize> {
        let n = self.chip.topology().num_clusters();
        let effs: Vec<f64> = (0..n).map(|c| self.cluster_eff(c, derate)).collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            effs[b]
                .partial_cmp(&effs[a])
                .expect("efficiencies are finite")
        });
        order
    }

    fn cluster_eff(&self, cluster: usize, derate: &[f64]) -> f64 {
        let f = self.derated_f(cluster, derate);
        let p = self.chip.cluster_power_w(ClusterId(cluster), f);
        self.chip.topology().cores_per_cluster as f64 * f / p
    }

    /// Picks the minimal cluster count able to finish `remaining_work`
    /// (work units) within `remaining_s` under the current derating.
    /// Returns the chosen cluster list, or `None` if even the full
    /// chip cannot make the deadline (the controller then engages
    /// everything and runs best-effort).
    pub fn replan(
        &self,
        remaining_work: f64,
        remaining_s: f64,
        derate: &[f64],
    ) -> Option<Vec<usize>> {
        counter!("runtime.replans").inc();
        let order = self.ordered_clusters(derate);
        let cores_per = self.chip.topology().cores_per_cluster;
        let mut w = self.workload;
        w.work_units = remaining_work;
        for n in 1..=order.len() {
            let set = &order[..n];
            let f = set
                .iter()
                .map(|&c| self.derated_f(c, derate))
                .fold(f64::INFINITY, f64::min);
            if f <= 0.0 {
                continue;
            }
            let t = self.exec.execution_time_s(&w, n * cores_per, f);
            if t <= remaining_s {
                return Some(set.to_vec());
            }
        }
        None
    }

    /// Runs the workload across `derate_schedule.len()` equal-length
    /// epochs; `derate_schedule[e][c]` derates cluster `c`'s safe
    /// frequency during epoch `e`. `dynamic` re-plans each epoch;
    /// otherwise the epoch-0 plan is held for the whole run (the
    /// paper's static policy).
    pub fn run(&self, derate_schedule: &[Vec<f64>], dynamic: bool) -> DriftRun {
        assert!(!derate_schedule.is_empty(), "need at least one epoch");
        let _span = span!("runtime.drift_run");
        let epochs = derate_schedule.len();
        let epoch_s = self.deadline_s / epochs as f64;
        let cores_per = self.chip.topology().cores_per_cluster;
        let total_work = self.workload.work_units;
        let mut remaining = total_work;
        let mut reports: Vec<EpochReport> = Vec::with_capacity(epochs);
        let mut energy_j = 0.0;
        let mut elapsed_s = 0.0;
        let mut static_plan: Option<Vec<usize>> = None;

        for (e, derate) in derate_schedule.iter().enumerate() {
            if remaining <= 0.0 {
                break;
            }
            let remaining_s = self.deadline_s - elapsed_s;
            let replanned = dynamic || static_plan.is_none();
            let plan = if replanned {
                let p = self
                    .replan(remaining, remaining_s, derate)
                    .unwrap_or_else(|| self.ordered_clusters(derate));
                if !dynamic {
                    static_plan = Some(p.clone());
                }
                p
            } else {
                static_plan.clone().expect("static plan fixed at epoch 0")
            };
            let f = plan
                .iter()
                .map(|&c| self.derated_f(c, derate))
                .fold(f64::INFINITY, f64::min);
            if replanned {
                flight!(SimEvent::Replan {
                    epoch: e as u64,
                    clusters: plan.len() as u64,
                    f_ghz: f,
                });
            }
            let n_cores = plan.len() * cores_per;
            // Work rate in units/s at this operating point.
            let mut w = self.workload;
            w.work_units = remaining;
            let t_full = self.exec.execution_time_s(&w, n_cores, f);
            let step_s = t_full.min(epoch_s).min(remaining_s);
            let done = remaining * step_s / t_full;
            let power: f64 = plan
                .iter()
                .map(|&c| {
                    self.chip
                        .cluster_power_w(ClusterId(c), self.derated_f(c, derate))
                })
                .sum();
            energy_j += power * step_s;
            elapsed_s += step_s;
            remaining -= done;
            counter!("runtime.epochs").inc();
            if let Some(prev) = reports.last() {
                if prev.clusters != plan.len() {
                    counter!("runtime.cluster_count_changes").inc();
                    trace_event!(
                        Level::Info,
                        "runtime.cluster_count_change",
                        epoch = e,
                        from = prev.clusters,
                        to = plan.len(),
                    );
                }
            }
            gauge!("runtime.clusters_engaged").set(plan.len() as f64);
            // Deadline slack after this epoch: time left at the current
            // pace minus time needed for the remaining work (negative =
            // behind schedule). Recorded as a fraction of the deadline.
            let slack_frac = if remaining > 0.0 {
                let mut wr = self.workload;
                wr.work_units = remaining;
                let need_s = self.exec.execution_time_s(&wr, n_cores, f);
                (self.deadline_s - elapsed_s - need_s) / self.deadline_s
            } else {
                (self.deadline_s - elapsed_s) / self.deadline_s
            };
            histogram!(
                "runtime.deadline_slack_frac",
                [-0.5, -0.2, -0.1, -0.05, 0.0, 0.05, 0.1, 0.2, 0.5, 1.0]
            )
            .record(slack_frac);
            // Advance the runtime track's sim clock in cycles at the
            // binding frequency, then retire the epoch interval.
            let epoch_cycles = (step_s * f * 1e9).round().max(0.0) as u64;
            accordion_telemetry::event::advance_sim(epoch_cycles);
            flight!(SimEvent::EpochRetire {
                epoch: e as u64,
                cycles: epoch_cycles,
                work_done_frac: (total_work - remaining) / total_work,
            });
            reports.push(EpochReport {
                epoch: e,
                clusters: plan.len(),
                f_ghz: f,
                work_done: (total_work - remaining) / total_work,
                power_w: power,
            });
            if remaining <= total_work * 1e-12 {
                remaining = 0.0;
                break;
            }
        }

        DriftRun {
            met_deadline: remaining <= 0.0 && elapsed_s <= self.deadline_s * (1.0 + 1e-9),
            epochs: reports,
            energy_j,
            elapsed_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_chip::chip::Chip;
    use std::sync::OnceLock;

    fn chip() -> &'static Chip {
        static CHIP: OnceLock<Chip> = OnceLock::new();
        CHIP.get_or_init(|| Chip::fabricate_default(0).expect("chip"))
    }

    fn deadline_for_clusters(n: usize) -> f64 {
        let w = Workload::rms_default(2e7);
        let exec = ExecModel::paper_default();
        // Use the n-th best initial frequency as the binding one.
        let c = RuntimeController::new(chip(), w, 1.0);
        let order = c.ordered_clusters(&vec![1.0; 36]);
        let f = order[..n]
            .iter()
            .map(|&cl| chip().cluster_safe_f_ghz(ClusterId(cl)))
            .fold(f64::INFINITY, f64::min);
        exec.execution_time_s(&w, n * 8, f)
    }

    #[test]
    fn no_drift_static_equals_dynamic() {
        let deadline = deadline_for_clusters(9) * 1.05;
        let w = Workload::rms_default(2e7);
        let c = RuntimeController::new(chip(), w, deadline);
        let schedule = vec![vec![1.0; 36]; 4];
        let dynamic = c.run(&schedule, true);
        let fixed = c.run(&schedule, false);
        assert!(dynamic.met_deadline && fixed.met_deadline);
        assert_eq!(dynamic.epochs[0].clusters, fixed.epochs[0].clusters);
    }

    #[test]
    fn dynamic_recovers_from_mid_run_derating() {
        // Deadline sized for the initial plan with little slack; from
        // epoch 1 every cluster derates 25 %. Static misses; dynamic
        // widens the allocation and still makes it.
        let deadline = deadline_for_clusters(9) * 1.02;
        let w = Workload::rms_default(2e7);
        let c = RuntimeController::new(chip(), w, deadline);
        let mut schedule = vec![vec![1.0; 36]];
        for _ in 0..7 {
            schedule.push(vec![0.75; 36]);
        }
        let fixed = c.run(&schedule, false);
        let dynamic = c.run(&schedule, true);
        assert!(
            !fixed.met_deadline,
            "static plan should miss under derating"
        );
        assert!(dynamic.met_deadline, "dynamic re-planning should recover");
        // Recovery costs energy: more clusters engaged.
        assert!(dynamic.epochs.last().unwrap().clusters > fixed.epochs[0].clusters);
    }

    #[test]
    fn replan_uses_fewer_clusters_with_generous_deadlines() {
        let w = Workload::rms_default(2e7);
        let c = RuntimeController::new(chip(), w, 1.0);
        let derate = vec![1.0; 36];
        let tight = c
            .replan(2e7, deadline_for_clusters(18) * 1.01, &derate)
            .expect("feasible");
        let loose = c
            .replan(2e7, deadline_for_clusters(18) * 4.0, &derate)
            .expect("feasible");
        assert!(loose.len() <= tight.len());
    }

    #[test]
    fn impossible_deadline_returns_none() {
        let w = Workload::rms_default(2e7);
        let c = RuntimeController::new(chip(), w, 1.0);
        assert!(c.replan(2e7, 1e-12, &vec![1.0; 36]).is_none());
    }

    #[test]
    fn energy_accumulates_over_epochs() {
        let deadline = deadline_for_clusters(9) * 1.2;
        let w = Workload::rms_default(2e7);
        let c = RuntimeController::new(chip(), w, deadline);
        let run = c.run(&vec![vec![1.0; 36]; 4], true);
        assert!(run.energy_j > 0.0);
        assert!(run.elapsed_s <= deadline * (1.0 + 1e-9));
        // Work fractions must be non-decreasing and end at 1.
        for w in run.epochs.windows(2) {
            assert!(w[1].work_done >= w[0].work_done);
        }
        assert!((run.epochs.last().unwrap().work_done - 1.0).abs() < 1e-9);
    }
}
