//! Property-based tests for the Accordion framework layer.

use accordion::mode::{FrequencyPolicy, Mode, ProblemScaling};
use accordion::pareto::ParetoExtractor;
use accordion_apps::harness::FrontSet;
use accordion_apps::hotspot::Hotspot;
use accordion_chip::chip::Chip;
use proptest::prelude::*;
use std::sync::OnceLock;

proptest! {
    #[test]
    fn scaling_classification_partitions_the_axis(ratio in 0.01f64..10.0, tol in 0.001f64..0.2) {
        let c = Mode::classify_scaling(ratio, tol);
        match c {
            ProblemScaling::Compress => prop_assert!(ratio < 1.0 - tol),
            ProblemScaling::Still => prop_assert!(ratio >= 1.0 - tol && ratio <= 1.0 + tol),
            ProblemScaling::Expand => prop_assert!(ratio > 1.0 + tol),
        }
    }

    #[test]
    fn policy_classification_consistent(f in 0.01f64..3.0, fsafe in 0.01f64..3.0) {
        let p = Mode::classify_policy(f, fsafe);
        if f > fsafe * (1.0 + 1e-6) {
            prop_assert_eq!(p, FrequencyPolicy::Speculative);
        }
        if f < fsafe {
            prop_assert_eq!(p, FrequencyPolicy::Safe);
        }
    }
}

struct Fixture {
    chip: Chip,
    app: Hotspot,
    set: FrontSet,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let chip = Chip::fabricate_default(0).expect("chip");
        let app = Hotspot::paper_default();
        let set = FrontSet::measure(&app);
        Fixture { chip, app, set }
    })
}

proptest! {
    // The iso-time solver is the heart of Figures 6/7; drive it with
    // randomized sizes and check the contract on every output.
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn solver_points_always_meet_iso_time(size in 0.2f64..1.4, spec in proptest::bool::ANY) {
        let fx = fixture();
        let extractor = ParetoExtractor::new(&fx.chip, &fx.app, &fx.set);
        let flavor = Mode {
            scaling: Mode::classify_scaling(size, 0.02),
            policy: if spec { FrequencyPolicy::Speculative } else { FrequencyPolicy::Safe },
        };
        if let Some(p) = extractor.solve_point(flavor, size) {
            let t0 = extractor.baseline().exec_time_s;
            prop_assert!(p.exec_time_s <= t0 * (1.0 + 1e-6));
            prop_assert!(p.n_ntv >= 8 && p.n_ntv <= 288);
            prop_assert!(p.n_ntv % 8 == 0, "cluster granularity");
            prop_assert!(p.f_ntv_ghz > 0.0 && p.f_ntv_ghz < 1.6);
            prop_assert!(p.power_w > 0.0);
            prop_assert!(p.quality_norm >= 0.0);
            prop_assert!(p.mips_per_w > 0.0);
            if !spec {
                prop_assert!((p.f_ntv_ghz - p.f_safe_ghz).abs() < 1e-12);
            }
            // Minimality: one fewer cluster must miss iso-time (checked
            // indirectly — the solver scans upward from 1 cluster).
        }
    }

    #[test]
    fn bigger_problems_never_need_fewer_clusters(s1 in 0.2f64..1.2, ds in 0.05f64..0.3) {
        let fx = fixture();
        let extractor = ParetoExtractor::new(&fx.chip, &fx.app, &fx.set);
        let flavor = Mode { scaling: ProblemScaling::Expand, policy: FrequencyPolicy::Safe };
        let a = extractor.solve_point(flavor, s1);
        let b = extractor.solve_point(flavor, s1 + ds);
        if let (Some(a), Some(b)) = (a, b) {
            prop_assert!(b.clusters >= a.clusters);
        }
    }
}
