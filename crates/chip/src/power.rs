//! Chip-level power aggregation and the STV core-count budget.
//!
//! Combines the per-core model of `accordion-vlsi` with an uncore
//! (cluster memory + network share) term, calibrated so the full
//! 288-core chip at the NTV nominal point sits just inside the 100 W
//! budget of Table 2 — which is exactly the paper's premise: NTC lets
//! *all* cores fit the budget, STV only a fraction (`N_STV`).

use crate::topology::Topology;
use accordion_vlsi::power::CorePowerModel;
use accordion_vlsi::tech::Technology;

/// Chip power model.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipPowerModel {
    core: CorePowerModel,
    tech: Technology,
    /// Uncore power of one powered cluster at the NTV nominal point
    /// (shared memory + network slice), in watts.
    uncore_ntv_w: f64,
    /// Dynamic fraction of the uncore power.
    uncore_dyn_frac: f64,
    /// Chip power budget in watts (paper: 100 W).
    budget_w: f64,
}

/// Power of a chip configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipPower {
    /// Active-core power in watts.
    pub cores_w: f64,
    /// Uncore (cluster memories + network) power in watts.
    pub uncore_w: f64,
}

impl ChipPower {
    /// Total chip power in watts.
    pub fn total_w(&self) -> f64 {
        self.cores_w + self.uncore_w
    }
}

impl ChipPowerModel {
    /// Uncore watts per powered cluster at the NTV nominal
    /// (36 × 0.5 W = 18 W + 288 × 0.28 W ≈ 98.6 W ≤ 100 W).
    pub const UNCORE_NTV_W: f64 = 0.5;

    /// Builds the model for a technology with the paper's 100 W budget.
    pub fn paper_default(tech: &Technology) -> Self {
        Self {
            core: CorePowerModel::calibrate(tech),
            tech: tech.clone(),
            uncore_ntv_w: Self::UNCORE_NTV_W,
            uncore_dyn_frac: 0.6,
            budget_w: 100.0,
        }
    }

    /// The chip power budget in watts.
    pub fn budget_w(&self) -> f64 {
        self.budget_w
    }

    /// The underlying per-core power model.
    pub fn core_model(&self) -> &CorePowerModel {
        &self.core
    }

    /// Uncore power of one powered cluster at `vdd_v`, with its
    /// network/memory clock scaled proportionally to `f_scale`
    /// (relative to the NTV nominal network clock).
    pub fn cluster_uncore_w(&self, vdd_v: f64, f_scale: f64) -> f64 {
        assert!(f_scale >= 0.0, "frequency scale must be non-negative");
        let v_rel = vdd_v / self.tech.vdd_nom_v;
        let dynamic = self.uncore_ntv_w * self.uncore_dyn_frac * v_rel * v_rel * f_scale;
        let static_ = self.uncore_ntv_w * (1.0 - self.uncore_dyn_frac) * v_rel;
        dynamic + static_
    }

    /// Power of `active_cores` nominal cores in `active_clusters`
    /// powered clusters, all at `vdd_v`/`f_ghz`. Idle cores in powered
    /// clusters still leak.
    pub fn chip_power(
        &self,
        topo: &Topology,
        active_cores: usize,
        active_clusters: usize,
        vdd_v: f64,
        f_ghz: f64,
    ) -> ChipPower {
        assert!(
            active_cores <= active_clusters * topo.cores_per_cluster,
            "more active cores than the powered clusters can hold"
        );
        let per_core = self.core.core_power(vdd_v, f_ghz, 0.0, 1.0).total_w();
        let idle = self.core.idle_power_w(vdd_v, 0.0, 1.0);
        let idle_cores = active_clusters * topo.cores_per_cluster - active_cores;
        let f_scale = if vdd_v >= self.tech.vdd_stv_v {
            self.tech.f_stv_ghz / self.tech.f_nom_ghz
        } else {
            f_ghz / self.tech.f_nom_ghz
        };
        ChipPower {
            cores_w: active_cores as f64 * per_core + idle_cores as f64 * idle,
            uncore_w: active_clusters as f64 * self.cluster_uncore_w(vdd_v, f_scale),
        }
    }

    /// The maximum core count that fits the budget at the STV nominal
    /// operating point, allocated at cluster granularity — the paper's
    /// `N_STV` baseline.
    pub fn n_stv(&self, topo: &Topology) -> usize {
        let vdd = self.tech.vdd_stv_v;
        let f = self.tech.f_stv_ghz;
        let mut best = 0;
        for clusters in 1..=topo.num_clusters() {
            let cores = clusters * topo.cores_per_cluster;
            let p = self.chip_power(topo, cores, clusters, vdd, f);
            if p.total_w() <= self.budget_w {
                best = cores;
            } else {
                break;
            }
        }
        // Fall back to partial-cluster allocation if even one cluster
        // exceeds the budget (does not happen for the paper config).
        if best == 0 {
            for cores in (1..=topo.cores_per_cluster).rev() {
                let p = self.chip_power(topo, cores, 1, vdd, f);
                if p.total_w() <= self.budget_w {
                    return cores;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (ChipPowerModel, Topology) {
        (
            ChipPowerModel::paper_default(&Technology::node_11nm()),
            Topology::paper_default(),
        )
    }

    #[test]
    fn full_chip_fits_budget_at_ntv() {
        let (m, t) = model();
        let tech = Technology::node_11nm();
        let p = m.chip_power(&t, 288, 36, tech.vdd_nom_v, tech.f_nom_ghz);
        assert!(p.total_w() <= 100.0, "NTV full chip draws {}", p.total_w());
        assert!(
            p.total_w() > 80.0,
            "NTV full chip {} implausibly low",
            p.total_w()
        );
    }

    #[test]
    fn n_stv_is_a_small_fraction_of_the_chip() {
        // The dark-silicon premise: at STV only a fraction of the 288
        // cores fits 100 W. The paper's Figure 6/7 x-axes (N_NTV/N_STV
        // up to ≈10-18) imply N_STV in the tens.
        let (m, t) = model();
        let n = m.n_stv(&t);
        assert!((16..=64).contains(&n), "N_STV = {n}");
        assert_eq!(n % t.cores_per_cluster, 0, "cluster granularity");
    }

    #[test]
    fn stv_chip_power_exceeds_budget_if_all_cores_on() {
        let (m, t) = model();
        let tech = Technology::node_11nm();
        let p = m.chip_power(&t, 288, 36, tech.vdd_stv_v, tech.f_stv_ghz);
        assert!(p.total_w() > 300.0, "full STV chip should blow the budget");
    }

    #[test]
    fn idle_cores_still_leak() {
        let (m, t) = model();
        let tech = Technology::node_11nm();
        let active_only = m.chip_power(&t, 8, 1, tech.vdd_nom_v, 1.0);
        let with_idle = m.chip_power(&t, 8, 2, tech.vdd_nom_v, 1.0);
        assert!(with_idle.cores_w > active_only.cores_w);
        assert!(with_idle.uncore_w > active_only.uncore_w);
    }

    #[test]
    fn uncore_scales_with_voltage() {
        let (m, _) = model();
        assert!(m.cluster_uncore_w(1.0, 1.0) > m.cluster_uncore_w(0.55, 1.0));
    }

    #[test]
    #[should_panic(expected = "more active cores")]
    fn active_cores_capped_by_clusters() {
        let (m, t) = model();
        m.chip_power(&t, 9, 1, 0.55, 1.0);
    }
}
