//! Columnar chip evaluation: precomputed selection order, prefix
//! operating limits, and per-supply timing contexts.
//!
//! The sweep drivers (fig6/fig7 pareto extraction, `/v1/sweep`) ask
//! the same chip thousands of structurally-identical questions: *pick
//! the best `n` clusters, what frequency binds them at this error
//! rate, what does that cost?* The object path answers each question
//! from scratch — [`ClusterSelection::select`] re-sorts all clusters
//! with an efficiency comparator that re-prices power on every
//! comparison, and each frequency query re-inverts the slow-tail
//! quantile per cluster.
//!
//! [`ChipColumns`] hoists everything that depends only on the chip:
//!
//! * per-cluster energy efficiencies, priced **once** (the legacy
//!   comparator evaluated them per comparison — ~2·n·log n power-model
//!   walks per selection);
//! * the efficiency-descending cluster order, sorted **once** — every
//!   selection of `n` clusters is a prefix of it;
//! * prefix-minimum safe frequencies, so `selection_prefix(n)` is two
//!   array reads;
//! * the chip's [`TimingColumns`], so binding-frequency queries are
//!   one quantile inversion plus flat `1/(μ+zσ)` passes.
//!
//! Everything is bit-identical to the object path: efficiencies are
//! pure functions (same bits each evaluation), the stable sort runs
//! the same comparator on the same values (same permutation), and the
//! prefix-min chain is the same `f64::min` fold the legacy selection
//! performs. `crates/chip/tests/columns_props.rs` pins this over
//! random populations and operating points.

use crate::chip::Chip;
use crate::selection::{ClusterSelection, SelectionPolicy};
use crate::topology::ClusterId;
use accordion_varius::columns::TimingColumns;
use accordion_varius::timing::{ClusterTiming, CoreTiming};

/// Per-chip invariants of the energy-efficiency selection policy,
/// computed once and reused across every (size, cluster-count) cell of
/// a sweep.
#[derive(Debug, Clone)]
pub struct ChipColumns {
    /// Flattened per-core timing at the chip's `VddNTV`.
    timing: TimingColumns,
    /// Energy efficiency of each cluster (indexed by `ClusterId`).
    efficiency: Vec<f64>,
    /// Clusters in efficiency-descending order: every selection of `n`
    /// is `order[..n]`.
    order: Vec<ClusterId>,
    /// `prefix_safe_f_ghz[n-1]` = binding safe frequency of
    /// `order[..n]`, accumulated with the same `f64::min` fold the
    /// legacy selection uses.
    prefix_safe_f_ghz: Vec<f64>,
}

impl ChipColumns {
    /// Prices and orders the chip's clusters once.
    pub fn build(chip: &Chip) -> Self {
        let total = chip.topology().num_clusters();
        let efficiency: Vec<f64> = (0..total)
            .map(|c| chip.cluster_efficiency(ClusterId(c)))
            .collect();
        let mut order: Vec<ClusterId> = (0..total).map(ClusterId).collect();
        // Same comparator as `ClusterSelection::select`'s
        // EnergyEfficiency arm, on the same (pure-function) values;
        // stable sort ⇒ the same permutation.
        order.sort_by(|a, b| {
            efficiency[b.0]
                .partial_cmp(&efficiency[a.0])
                .expect("efficiencies are finite")
        });
        let mut prefix_safe_f_ghz = Vec::with_capacity(total);
        let mut f_min = f64::INFINITY;
        for &c in &order {
            f_min = f_min.min(chip.cluster_safe_f_ghz(c));
            prefix_safe_f_ghz.push(f_min);
        }
        Self {
            timing: TimingColumns::from_clusters(&chip.sample().cluster_timing),
            efficiency,
            order,
            prefix_safe_f_ghz,
        }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.order.len()
    }

    /// Energy efficiency of one cluster (same bits as
    /// [`Chip::cluster_efficiency`]).
    pub fn efficiency(&self, cluster: ClusterId) -> f64 {
        self.efficiency[cluster.0]
    }

    /// Clusters in efficiency-descending order.
    pub fn efficiency_order(&self) -> &[ClusterId] {
        &self.order
    }

    /// The flattened timing columns at the chip's `VddNTV`.
    pub fn timing(&self) -> &TimingColumns {
        &self.timing
    }

    /// Binding safe frequency of the best `n` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the cluster count.
    pub fn safe_f_ghz(&self, n: usize) -> f64 {
        assert!(n > 0, "selection must be non-empty");
        self.prefix_safe_f_ghz[n - 1]
    }

    /// The energy-efficiency selection of `n` clusters — identical to
    /// `ClusterSelection::select(chip, n, EnergyEfficiency)`, served
    /// from the precomputed order in O(n).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the cluster count.
    pub fn selection_prefix(&self, n: usize) -> ClusterSelection {
        ClusterSelection::from_parts(self.order[..n].to_vec(), self.safe_f_ghz(n))
    }

    /// Binding frequency of the best `n` clusters at per-cycle error
    /// rate `perr` — bit-identical to
    /// [`ClusterSelection::f_for_perr_ghz`] on the same selection,
    /// with the quantile inversion hoisted to once per call.
    pub fn f_for_perr_ghz(&self, n: usize, perr: f64) -> f64 {
        self.timing
            .min_frequency_for_perr_over(self.order[..n].iter().map(|c| c.0), perr)
    }
}

/// Columnar views of a whole population, index-aligned with the chip
/// vector they were built from.
#[derive(Debug, Clone)]
pub struct PopulationColumns {
    chips: Vec<ChipColumns>,
}

impl PopulationColumns {
    /// Builds every chip's columns, fanning out across the pool (each
    /// chip is independent; order is preserved by `par_map`).
    pub fn build(chips: &[Chip]) -> Self {
        Self {
            chips: accordion_pool::par_map(chips.iter().collect::<Vec<_>>(), |chip| {
                ChipColumns::build(chip)
            }),
        }
    }

    /// Columns of chip `index`.
    pub fn chip(&self, index: usize) -> &ChipColumns {
        &self.chips[index]
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }
}

/// One chip's timing context at one supply: the per-cluster timing
/// objects, their columnar flattening, and the chip-wide safe
/// frequency — everything a sweep can reuse across grid cells that
/// share a `Vdd`.
#[derive(Debug, Clone)]
pub struct OperatingTimings {
    vdd_v: f64,
    timings: Vec<ClusterTiming>,
    columns: TimingColumns,
    f_safe_ghz: f64,
}

impl OperatingTimings {
    /// Derives the chip's timing at `vdd_v`: the chip's own models
    /// when `vdd_v` is its designated `VddNTV`, otherwise re-derived
    /// from the variation sample (the same construction the
    /// population layer uses at fabrication).
    pub fn at(chip: &Chip, vdd_v: f64) -> Self {
        let timings: Vec<ClusterTiming> = if vdd_v == chip.vdd_ntv_v() {
            (0..chip.topology().num_clusters())
                .map(|c| chip.cluster_timing(ClusterId(c)).clone())
                .collect()
        } else {
            let fm = chip.freq_model();
            let params = chip.variation_params();
            let variation = &chip.sample().variation;
            (0..chip.topology().num_clusters())
                .map(|c| {
                    let cores = chip
                        .topology()
                        .cores_of(ClusterId(c))
                        .map(|core| {
                            CoreTiming::new(
                                fm,
                                params,
                                vdd_v,
                                variation.core_vth_delta_v[core.0],
                                variation.core_leff_mult[core.0],
                            )
                        })
                        .collect();
                    ClusterTiming::new(cores)
                })
                .collect()
        };
        // The legacy per-cluster fold, kept verbatim: it is where the
        // per-cluster `SafeFreq` flight events are emitted, now once
        // per operating supply instead of once per grid cell.
        let params = chip.variation_params();
        let f_safe_ghz = timings
            .iter()
            .map(|t| t.safe_frequency_ghz(params))
            .fold(f64::INFINITY, f64::min);
        let columns = TimingColumns::from_clusters(&timings);
        Self {
            vdd_v,
            timings,
            columns,
            f_safe_ghz,
        }
    }

    /// The supply this context was derived at, volts.
    pub fn vdd_v(&self) -> f64 {
        self.vdd_v
    }

    /// The per-cluster timing objects.
    pub fn timings(&self) -> &[ClusterTiming] {
        &self.timings
    }

    /// The columnar flattening of [`Self::timings`].
    pub fn columns(&self) -> &TimingColumns {
        &self.columns
    }

    /// Chip-wide safe frequency: minimum over clusters.
    pub fn f_safe_ghz(&self) -> f64 {
        self.f_safe_ghz
    }

    /// Chip-wide binding frequency at per-cycle error rate `perr` —
    /// bit-identical to folding
    /// [`ClusterTiming::frequency_for_perr`] over the clusters.
    pub fn min_frequency_for_perr(&self, perr: f64) -> f64 {
        self.columns.min_frequency_for_perr(perr)
    }
}

/// The policy the columnar prefix order reproduces; exported so
/// callers can assert they are not silently diverging from the legacy
/// path when a different policy is requested.
pub const COLUMNAR_POLICY: SelectionPolicy = SelectionPolicy::EnergyEfficiency;

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> Chip {
        Chip::fabricate_small(4).unwrap()
    }

    #[test]
    fn selection_prefix_matches_legacy_select() {
        let chip = chip();
        let cols = ChipColumns::build(&chip);
        for n in 1..=chip.topology().num_clusters() {
            let legacy = ClusterSelection::select(&chip, n, COLUMNAR_POLICY);
            let batched = cols.selection_prefix(n);
            assert_eq!(legacy, batched, "prefix {n}");
            assert_eq!(
                legacy.safe_f_ghz().to_bits(),
                cols.safe_f_ghz(n).to_bits(),
                "safe f bits at {n}"
            );
        }
    }

    #[test]
    fn f_for_perr_matches_legacy_bitwise() {
        let chip = chip();
        let cols = ChipColumns::build(&chip);
        for n in 1..=chip.topology().num_clusters() {
            let legacy = ClusterSelection::select(&chip, n, COLUMNAR_POLICY);
            for perr in [1e-16, 1e-9, 1e-6] {
                assert_eq!(
                    legacy.f_for_perr_ghz(&chip, perr).to_bits(),
                    cols.f_for_perr_ghz(n, perr).to_bits(),
                    "n={n} perr={perr}"
                );
            }
        }
    }

    #[test]
    fn efficiencies_match_chip_bitwise() {
        let chip = chip();
        let cols = ChipColumns::build(&chip);
        for c in 0..chip.topology().num_clusters() {
            assert_eq!(
                cols.efficiency(ClusterId(c)).to_bits(),
                chip.cluster_efficiency(ClusterId(c)).to_bits()
            );
        }
    }

    #[test]
    fn operating_timings_match_legacy_derivation() {
        let chip = chip();
        let params = chip.variation_params();
        for vdd_v in [chip.vdd_ntv_v(), 0.7] {
            let ctx = OperatingTimings::at(&chip, vdd_v);
            let legacy_f_safe = ctx
                .timings()
                .iter()
                .map(|t| t.frequency_for_perr(params.perr_safe_target))
                .fold(f64::INFINITY, f64::min);
            assert_eq!(ctx.f_safe_ghz().to_bits(), legacy_f_safe.to_bits());
            for perr in [1e-12, 1e-7] {
                let legacy = ctx
                    .timings()
                    .iter()
                    .map(|t| t.frequency_for_perr(perr))
                    .fold(f64::INFINITY, f64::min);
                assert_eq!(
                    ctx.min_frequency_for_perr(perr).to_bits(),
                    legacy.to_bits(),
                    "vdd={vdd_v} perr={perr}"
                );
            }
        }
        // At VddNTV the context reuses the chip's own timing objects.
        let ntv = OperatingTimings::at(&chip, chip.vdd_ntv_v());
        assert_eq!(ntv.timings()[0], chip.sample().cluster_timing[0]);
    }

    #[test]
    fn population_columns_align_with_chips() {
        let chips: Vec<Chip> = (0..3).map(|i| Chip::fabricate_small(i).unwrap()).collect();
        let pop = PopulationColumns::build(&chips);
        assert_eq!(pop.len(), 3);
        assert!(!pop.is_empty());
        for (i, chip) in chips.iter().enumerate() {
            assert_eq!(
                pop.chip(i).safe_f_ghz(1).to_bits(),
                ClusterSelection::select(chip, 1, COLUMNAR_POLICY)
                    .safe_f_ghz()
                    .to_bits()
            );
        }
    }
}
