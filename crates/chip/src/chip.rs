//! A fabricated chip: topology plus one variation realization, with
//! the calibrated technology models attached.

use crate::floorplan::Floorplan;
use crate::memory::MemoryParams;
use crate::network::NetworkParams;
use crate::power::ChipPowerModel;
use crate::topology::{ClusterId, Topology};
use accordion_stats::field::FieldError;
use accordion_stats::rng::SeedStream;
use accordion_telemetry::{counter, flight_track, span};
use accordion_varius::params::VariationParams;
use accordion_varius::population::{ChipPopulation, ChipSample};
use accordion_varius::timing::ClusterTiming;
use accordion_vlsi::freq::FreqModel;
use accordion_vlsi::tech::Technology;

/// A fabricated Accordion chip.
///
/// Combines the static description (topology, floorplan, memory,
/// network, power budget) with one Monte-Carlo variation sample and
/// caches the per-cluster operating limits derived from it.
///
/// # Example
///
/// ```
/// use accordion_chip::chip::Chip;
///
/// let chip = Chip::fabricate_small(0)?;
/// let f0 = chip.cluster_safe_f_ghz(accordion_chip::topology::ClusterId(0));
/// assert!(f0 > 0.1 && f0 < 1.0);
/// # Ok::<(), accordion_stats::field::FieldError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Chip {
    topo: Topology,
    memory: MemoryParams,
    network: NetworkParams,
    fm: FreqModel,
    power: ChipPowerModel,
    vparams: VariationParams,
    sample: ChipSample,
    cluster_safe_f_ghz: Vec<f64>,
    /// Vth corner of each cluster's shared-memory site, precomputed at
    /// fabrication so latency queries never rebuild the floorplan.
    cluster_shared_mem_dv: Vec<f64>,
}

impl Chip {
    /// Fabricates one paper-default 288-core chip; `index` selects the
    /// Monte-Carlo instance (chips 0..99 form the paper's population).
    ///
    /// # Errors
    ///
    /// Propagates [`FieldError`] from the variation sampler.
    pub fn fabricate_default(index: u64) -> Result<Self, FieldError> {
        Self::fabricate(
            Topology::paper_default(),
            &VariationParams::default(),
            SeedStream::new(2014),
            index,
        )
    }

    /// Fabricates a small 16-core chip (2×2 clusters of 4) for fast
    /// tests and examples.
    ///
    /// # Errors
    ///
    /// Propagates [`FieldError`] from the variation sampler.
    pub fn fabricate_small(index: u64) -> Result<Self, FieldError> {
        Self::fabricate(
            Topology::small(),
            &VariationParams::default(),
            SeedStream::new(2014),
            index,
        )
    }

    /// Fabricates chip `index` of the population seeded by `seed` for
    /// an arbitrary topology.
    ///
    /// # Errors
    ///
    /// Propagates [`FieldError`] from the variation sampler.
    pub fn fabricate(
        topo: Topology,
        vparams: &VariationParams,
        seed: SeedStream,
        index: u64,
    ) -> Result<Self, FieldError> {
        let mut chips = Self::fabricate_population(topo, vparams, seed, index, 1)?;
        Ok(chips.pop().expect("population of one"))
    }

    /// Fabricates chips `first..first + count` of a population,
    /// sharing one correlation factorization across all of them.
    ///
    /// # Errors
    ///
    /// Propagates [`FieldError`] from the variation sampler.
    pub fn fabricate_population(
        topo: Topology,
        vparams: &VariationParams,
        seed: SeedStream,
        first: u64,
        count: usize,
    ) -> Result<Vec<Self>, FieldError> {
        let _span = span!("chip.fabricate_population");
        counter!("chip.fabricated").add(count as u64);
        let tech = Technology::node_11nm();
        let fm = FreqModel::calibrate(&tech);
        let plan = Floorplan::paper_default().site_plan(&topo);
        // Generate `first + count` then keep the tail so that chip
        // `index` is identical regardless of how it is requested.
        let pop = ChipPopulation::generate(&plan, vparams, &fm, first as usize + count, seed)?;
        let power = ChipPowerModel::paper_default(&tech);
        // Deriving per-cluster operating limits is per-chip work with
        // no cross-chip state; fan it out while preserving index order
        // (the determinism contract of `accordion-pool`).
        let tail: Vec<(usize, ChipSample)> = pop.samples()[first as usize..]
            .iter()
            .cloned()
            .enumerate()
            .collect();
        Ok(accordion_pool::par_map(tail, |(i, sample)| {
            // Track identity is (topology, population index) — stable
            // whichever worker fabricates the chip, and disjoint from
            // other topologies fabricated in the same recording.
            let _track = flight_track!("fab{}/chip{}", topo.num_clusters(), first as usize + i);
            Self::from_sample(topo, vparams, &fm, &power, &plan, sample)
        }))
    }

    fn from_sample(
        topo: Topology,
        vparams: &VariationParams,
        fm: &FreqModel,
        power: &ChipPowerModel,
        plan: &accordion_varius::layout::SitePlan,
        sample: ChipSample,
    ) -> Self {
        use accordion_varius::layout::MemKind;
        let cluster_safe_f_ghz = sample.cluster_safe_f_ghz(vparams);
        // The cluster's first shared-memory site carries its local
        // corner; keep it per cluster so `cluster_mem_latency_ns` is a
        // lookup instead of a floorplan rebuild + scan.
        let mut shared_dv: Vec<Option<f64>> = vec![None; plan.num_clusters()];
        for (site, &dv) in plan.mem_sites.iter().zip(&sample.variation.mem_vth_delta_v) {
            if site.kind == MemKind::ClusterShared && shared_dv[site.cluster].is_none() {
                shared_dv[site.cluster] = Some(dv);
            }
        }
        let cluster_shared_mem_dv = shared_dv.into_iter().map(|d| d.unwrap_or(0.0)).collect();
        Self {
            topo,
            memory: MemoryParams::paper_default(),
            network: NetworkParams::paper_default(),
            fm: fm.clone(),
            power: power.clone(),
            vparams: vparams.clone(),
            sample,
            cluster_safe_f_ghz,
            cluster_shared_mem_dv,
        }
    }

    /// Chip topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Memory-hierarchy parameters.
    pub fn memory(&self) -> &MemoryParams {
        &self.memory
    }

    /// Network parameters.
    pub fn network(&self) -> &NetworkParams {
        &self.network
    }

    /// The calibrated frequency model.
    pub fn freq_model(&self) -> &FreqModel {
        &self.fm
    }

    /// The chip power model.
    pub fn power_model(&self) -> &ChipPowerModel {
        &self.power
    }

    /// Variation parameters used at fabrication.
    pub fn variation_params(&self) -> &VariationParams {
        &self.vparams
    }

    /// The underlying variation sample.
    pub fn sample(&self) -> &ChipSample {
        &self.sample
    }

    /// The chip's designated near-threshold supply (max per-cluster
    /// `VddMIN`, Section 6.1).
    pub fn vdd_ntv_v(&self) -> f64 {
        self.sample.vdd_ntv_v
    }

    /// Per-cluster `VddMIN` values (the Figure 5a data).
    pub fn cluster_vddmin_v(&self) -> &[f64] {
        &self.sample.cluster_vddmin_v
    }

    /// Safe frequency of a cluster at the chip's `VddNTV`.
    ///
    /// # Panics
    ///
    /// Panics if the cluster id is out of range.
    pub fn cluster_safe_f_ghz(&self, cluster: ClusterId) -> f64 {
        self.cluster_safe_f_ghz[cluster.0]
    }

    /// Frequency at which a cluster's slowest core sees per-cycle
    /// error rate `perr` (speculative operation, Section 4.1).
    pub fn cluster_f_for_perr_ghz(&self, cluster: ClusterId, perr: f64) -> f64 {
        self.cluster_timing(cluster).frequency_for_perr(perr)
    }

    /// Timing model of a cluster.
    ///
    /// # Panics
    ///
    /// Panics if the cluster id is out of range.
    pub fn cluster_timing(&self, cluster: ClusterId) -> &ClusterTiming {
        &self.sample.cluster_timing[cluster.0]
    }

    /// Power of one cluster with all cores active at `f_ghz` and the
    /// chip's `VddNTV`, accounting for each member core's leakage
    /// corner, plus the cluster's uncore share.
    pub fn cluster_power_w(&self, cluster: ClusterId, f_ghz: f64) -> f64 {
        let vdd = self.vdd_ntv_v();
        let core_model = self.power.core_model();
        let mut total = 0.0;
        for core in self.topo.cores_of(cluster) {
            let dv = self.sample.variation.core_vth_delta_v[core.0];
            let lm = self.sample.variation.core_leff_mult[core.0];
            total += core_model.core_power(vdd, f_ghz, dv, lm).total_w();
        }
        let tech = self.fm.technology();
        total + self.power.cluster_uncore_w(vdd, f_ghz / tech.f_nom_ghz)
    }

    /// Cluster energy efficiency at its safe frequency, in
    /// core-GHz per watt — the ordering key for the paper's
    /// "most energy-efficient cores first" selection.
    pub fn cluster_efficiency(&self, cluster: ClusterId) -> f64 {
        let f = self.cluster_safe_f_ghz(cluster);
        let p = self.cluster_power_w(cluster, f);
        self.topo.cores_per_cluster as f64 * f / p
    }

    /// The STV baseline core count (`N_STV`) for this chip's budget.
    pub fn n_stv(&self) -> usize {
        self.power.n_stv(&self.topo)
    }

    /// Variation-derated access latency of a cluster's shared memory
    /// at the chip's `VddNTV`, in ns (VARIUS-NTV's memory-timing side:
    /// blocks in slow regions take longer).
    ///
    /// # Panics
    ///
    /// Panics if the cluster id is out of range.
    pub fn cluster_mem_latency_ns(&self, cluster: ClusterId) -> f64 {
        let timing = accordion_varius::mem_timing::MemTiming::new(&self.fm, self.vdd_ntv_v());
        timing.access_ns(
            self.memory.cluster_access_ns,
            self.cluster_shared_mem_dv[cluster.0],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_chip_fabrication() {
        let chip = Chip::fabricate_small(0).unwrap();
        assert_eq!(chip.topology().num_cores(), 16);
        assert_eq!(chip.cluster_vddmin_v().len(), 4);
        assert!(chip.vdd_ntv_v() >= 0.44 && chip.vdd_ntv_v() <= 0.64);
    }

    #[test]
    fn population_indexing_is_stable() {
        let direct = Chip::fabricate_small(2).unwrap();
        let batch = Chip::fabricate_population(
            Topology::small(),
            &VariationParams::default(),
            SeedStream::new(2014),
            0,
            3,
        )
        .unwrap();
        assert_eq!(
            direct.sample().cluster_vddmin_v,
            batch[2].sample().cluster_vddmin_v
        );
    }

    #[test]
    fn safe_frequencies_below_nominal() {
        let chip = Chip::fabricate_small(1).unwrap();
        for c in 0..4 {
            let f = chip.cluster_safe_f_ghz(ClusterId(c));
            assert!(f > 0.1 && f < 1.0, "cluster {c}: {f}");
        }
    }

    #[test]
    fn speculative_frequency_above_safe() {
        let chip = Chip::fabricate_small(1).unwrap();
        for c in 0..4 {
            let f_safe = chip.cluster_safe_f_ghz(ClusterId(c));
            let f_spec = chip.cluster_f_for_perr_ghz(ClusterId(c), 1e-8);
            assert!(f_spec > f_safe, "cluster {c}");
        }
    }

    #[test]
    fn cluster_power_grows_with_frequency() {
        let chip = Chip::fabricate_small(0).unwrap();
        let p1 = chip.cluster_power_w(ClusterId(0), 0.4);
        let p2 = chip.cluster_power_w(ClusterId(0), 0.8);
        assert!(p2 > p1);
    }

    #[test]
    fn memory_latency_varies_under_variation() {
        let chip = Chip::fabricate_small(2).unwrap();
        let lats: Vec<f64> = (0..4)
            .map(|c| chip.cluster_mem_latency_ns(ClusterId(c)))
            .collect();
        let base = chip.memory().cluster_access_ns;
        // Derated latencies bracket the nominal and differ across
        // clusters.
        assert!(lats.iter().any(|l| (l - base).abs() > 1e-3));
        let min = lats.iter().copied().fold(f64::INFINITY, f64::min);
        let max = lats.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > min);
        assert!(min > 0.3 * base && max < 3.0 * base, "{lats:?}");
    }

    #[test]
    fn efficiency_varies_across_clusters() {
        let chip = Chip::fabricate_small(3).unwrap();
        let effs: Vec<f64> = (0..4)
            .map(|c| chip.cluster_efficiency(ClusterId(c)))
            .collect();
        let min = effs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = effs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > min, "variation must differentiate clusters");
    }
}
