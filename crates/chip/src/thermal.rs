//! Thermal feedback: the leakage–temperature loop.
//!
//! The Table 2 budget pairs `P_MAX = 100 W` with `T_MIN = 80 °C` — the
//! chip is power-limited *because* it is cooling-limited. Leakage
//! grows exponentially with temperature (the thermal voltage in the
//! sub-threshold slope), and dissipated power raises temperature
//! through the package's thermal resistance: a positive feedback loop
//! that can run away. At NTV the static share is large, making the
//! loop gain — and the risk — higher than at STV. This module solves
//! the fixed point `T = T_amb + R_th · P(T)` and detects runaway.

use crate::topology::Topology;
use accordion_vlsi::power::CorePowerModel;
use accordion_vlsi::tech::Technology;

/// Package/cooling description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalParams {
    /// Ambient (heatsink inlet) temperature in kelvin.
    pub ambient_k: f64,
    /// Junction-to-ambient thermal resistance in K/W.
    pub r_th_k_per_w: f64,
}

impl ThermalParams {
    /// A server-class heatsink: 45 °C ambient, 0.35 K/W — which puts a
    /// 100 W chip at Table 2's 80 °C operating point.
    pub fn paper_default() -> Self {
        Self {
            ambient_k: 318.15,
            r_th_k_per_w: 0.35,
        }
    }
}

impl Default for ThermalParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Result of the thermal fixed-point solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThermalSolution {
    /// The loop converged to a stable operating temperature.
    Stable {
        /// Junction temperature in kelvin.
        temperature_k: f64,
        /// Chip power at that temperature in watts.
        power_w: f64,
    },
    /// The leakage–temperature loop diverged (thermal runaway).
    Runaway,
}

impl ThermalSolution {
    /// The stable temperature, if any.
    pub fn temperature_k(&self) -> Option<f64> {
        match self {
            ThermalSolution::Stable { temperature_k, .. } => Some(*temperature_k),
            ThermalSolution::Runaway => None,
        }
    }
}

/// Solves the leakage–temperature fixed point for `active_cores`
/// nominal cores (in `active_clusters` powered clusters) at
/// `vdd_v`/`f_ghz`, with the power model's constants held at their
/// calibration values and only the device temperature varied.
///
/// # Panics
///
/// Panics if the thermal resistance is not positive.
pub fn solve(
    power: &CorePowerModel,
    topo: &Topology,
    thermal: &ThermalParams,
    active_cores: usize,
    active_clusters: usize,
    vdd_v: f64,
    f_ghz: f64,
) -> ThermalSolution {
    assert!(
        thermal.r_th_k_per_w > 0.0,
        "thermal resistance must be positive"
    );
    let base_tech = power.technology().clone();
    let chip_power_at = |t_k: f64| -> f64 {
        let tech = Technology {
            temperature_k: t_k,
            ..base_tech.clone()
        };
        let pm = power.with_technology(&tech);
        let per_core = pm.core_power(vdd_v, f_ghz, 0.0, 1.0).total_w();
        let idle = pm.idle_power_w(vdd_v, 0.0, 1.0);
        let idle_cores = active_clusters * topo.cores_per_cluster - active_cores;
        // Uncore share approximated with the NTV calibration constant
        // (memory leakage also grows, folded into the core term).
        let uncore = active_clusters as f64 * crate::power::ChipPowerModel::UNCORE_NTV_W;
        active_cores as f64 * per_core + idle_cores as f64 * idle + uncore
    };

    let mut t_k = thermal.ambient_k;
    for _ in 0..200 {
        let p = chip_power_at(t_k);
        let next = thermal.ambient_k + thermal.r_th_k_per_w * p;
        if next > 450.0 {
            return ThermalSolution::Runaway; // > ~177 °C: silicon is done
        }
        if (next - t_k).abs() < 1e-6 {
            return ThermalSolution::Stable {
                temperature_k: next,
                power_w: p,
            };
        }
        t_k = next;
    }
    // Non-convergent oscillation counts as unstable.
    ThermalSolution::Runaway
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (CorePowerModel, Topology) {
        (
            CorePowerModel::calibrate(&Technology::node_11nm()),
            Topology::paper_default(),
        )
    }

    #[test]
    fn full_ntv_chip_is_thermally_stable_at_paper_cooling() {
        let (pm, topo) = fixture();
        let sol = solve(
            &pm,
            &topo,
            &ThermalParams::paper_default(),
            288,
            36,
            0.55,
            1.0,
        );
        let t = sol.temperature_k().expect("stable");
        // Near the Table 2 operating point (≈80 °C) and below boiling
        // concern.
        assert!(t > 340.0 && t < 380.0, "T = {t} K");
    }

    #[test]
    fn weak_cooling_causes_runaway() {
        let (pm, topo) = fixture();
        let weak = ThermalParams {
            ambient_k: 318.15,
            r_th_k_per_w: 5.0,
        };
        assert_eq!(
            solve(&pm, &topo, &weak, 288, 36, 0.55, 1.0),
            ThermalSolution::Runaway
        );
    }

    #[test]
    fn fewer_cores_run_cooler() {
        let (pm, topo) = fixture();
        let th = ThermalParams::paper_default();
        let small = solve(&pm, &topo, &th, 72, 9, 0.55, 1.0)
            .temperature_k()
            .expect("stable");
        let big = solve(&pm, &topo, &th, 288, 36, 0.55, 1.0)
            .temperature_k()
            .expect("stable");
        assert!(small < big);
    }

    #[test]
    fn feedback_raises_power_above_cold_estimate() {
        // Self-heating must make the converged power exceed the
        // ambient-temperature power.
        let (pm, topo) = fixture();
        let th = ThermalParams::paper_default();
        let cold_tech = Technology {
            temperature_k: th.ambient_k,
            ..pm.technology().clone()
        };
        let cold = pm
            .with_technology(&cold_tech)
            .core_power(0.55, 1.0, 0.0, 1.0)
            .total_w()
            * 288.0
            + 36.0 * crate::power::ChipPowerModel::UNCORE_NTV_W;
        match solve(&pm, &topo, &th, 288, 36, 0.55, 1.0) {
            ThermalSolution::Stable { power_w, .. } => {
                assert!(power_w > cold, "hot {power_w} vs cold {cold}")
            }
            ThermalSolution::Runaway => panic!("should be stable"),
        }
    }

    #[test]
    fn stv_operation_of_few_cores_is_stable() {
        let (pm, topo) = fixture();
        let sol = solve(&pm, &topo, &ThermalParams::paper_default(), 32, 4, 1.0, 3.3);
        assert!(sol.temperature_k().is_some());
    }
}
