//! Memory-hierarchy parameters (paper Table 2, "Architectural
//! Parameters").

/// The two-level memory hierarchy of the evaluation chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryParams {
    /// Core-private memory capacity in KB (write-through).
    pub private_kb: usize,
    /// Private memory associativity.
    pub private_ways: usize,
    /// Private memory access time in ns.
    pub private_access_ns: f64,
    /// Cluster memory capacity in MB (write-back).
    pub cluster_mb: usize,
    /// Cluster memory associativity.
    pub cluster_ways: usize,
    /// Cluster memory access time in ns.
    pub cluster_access_ns: f64,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Average round-trip main-memory access time without contention,
    /// in ns (paper: ≈80 ns).
    pub mem_round_trip_ns: f64,
}

impl MemoryParams {
    /// The paper's Table 2 hierarchy.
    pub fn paper_default() -> Self {
        Self {
            private_kb: 64,
            private_ways: 4,
            private_access_ns: 2.0,
            cluster_mb: 2,
            cluster_ways: 16,
            cluster_access_ns: 10.0,
            line_bytes: 64,
            mem_round_trip_ns: 80.0,
        }
    }

    /// Average memory latency in ns for an access stream with the
    /// given hit rates (private hit, else cluster hit, else memory).
    ///
    /// # Panics
    ///
    /// Panics if either hit rate is outside `[0, 1]`.
    pub fn avg_latency_ns(&self, private_hit: f64, cluster_hit: f64) -> f64 {
        assert!((0.0..=1.0).contains(&private_hit), "hit rate in [0,1]");
        assert!((0.0..=1.0).contains(&cluster_hit), "hit rate in [0,1]");
        let miss1 = 1.0 - private_hit;
        let miss2 = 1.0 - cluster_hit;
        self.private_access_ns + miss1 * (self.cluster_access_ns + miss2 * self.mem_round_trip_ns)
    }
}

impl Default for MemoryParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let m = MemoryParams::paper_default();
        assert_eq!(m.private_kb, 64);
        assert_eq!(m.cluster_mb, 2);
        assert_eq!(m.line_bytes, 64);
        assert_eq!(m.mem_round_trip_ns, 80.0);
    }

    #[test]
    fn perfect_private_cache_costs_only_l1() {
        let m = MemoryParams::paper_default();
        assert_eq!(m.avg_latency_ns(1.0, 0.0), 2.0);
    }

    #[test]
    fn all_misses_cost_full_round_trip() {
        let m = MemoryParams::paper_default();
        assert_eq!(m.avg_latency_ns(0.0, 0.0), 2.0 + 10.0 + 80.0);
    }

    #[test]
    fn latency_monotone_in_hit_rates() {
        let m = MemoryParams::paper_default();
        assert!(m.avg_latency_ns(0.9, 0.8) < m.avg_latency_ns(0.8, 0.8));
        assert!(m.avg_latency_ns(0.9, 0.8) < m.avg_latency_ns(0.9, 0.7));
    }

    #[test]
    #[should_panic(expected = "hit rate")]
    fn bad_hit_rate_rejected() {
        MemoryParams::paper_default().avg_latency_ns(1.5, 0.0);
    }
}
