//! Cluster/core organization.

/// Identifier of a core on the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

/// Identifier of a cluster on the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub usize);

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl std::fmt::Display for ClusterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cluster{}", self.0)
    }
}

/// Chip organization: a rectangular grid of clusters, each with a
/// fixed number of cores (paper Table 2: 36 clusters × 8 cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Clusters along the die's x dimension.
    pub clusters_x: usize,
    /// Clusters along the die's y dimension.
    pub clusters_y: usize,
    /// Cores per cluster.
    pub cores_per_cluster: usize,
}

impl Topology {
    /// The paper's evaluation chip: 6×6 clusters of 8 cores (288).
    pub fn paper_default() -> Self {
        Self {
            clusters_x: 6,
            clusters_y: 6,
            cores_per_cluster: 8,
        }
    }

    /// A small topology for fast tests: 2×2 clusters of 4 cores.
    pub fn small() -> Self {
        Self {
            clusters_x: 2,
            clusters_y: 2,
            cores_per_cluster: 4,
        }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters_x * self.clusters_y
    }

    /// Total number of cores.
    pub fn num_cores(&self) -> usize {
        self.num_clusters() * self.cores_per_cluster
    }

    /// Cluster containing a core.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range.
    pub fn cluster_of(&self, core: CoreId) -> ClusterId {
        assert!(core.0 < self.num_cores(), "core id out of range");
        ClusterId(core.0 / self.cores_per_cluster)
    }

    /// The cores of a cluster, in id order.
    ///
    /// # Panics
    ///
    /// Panics if the cluster id is out of range.
    pub fn cores_of(&self, cluster: ClusterId) -> impl Iterator<Item = CoreId> {
        assert!(cluster.0 < self.num_clusters(), "cluster id out of range");
        let base = cluster.0 * self.cores_per_cluster;
        (base..base + self.cores_per_cluster).map(CoreId)
    }

    /// Grid coordinates `(x, y)` of a cluster.
    pub fn cluster_xy(&self, cluster: ClusterId) -> (usize, usize) {
        assert!(cluster.0 < self.num_clusters(), "cluster id out of range");
        (cluster.0 % self.clusters_x, cluster.0 / self.clusters_x)
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_chip_has_288_cores() {
        let t = Topology::paper_default();
        assert_eq!(t.num_clusters(), 36);
        assert_eq!(t.num_cores(), 288);
    }

    #[test]
    fn cluster_membership_round_trip() {
        let t = Topology::paper_default();
        for c in 0..t.num_clusters() {
            for core in t.cores_of(ClusterId(c)) {
                assert_eq!(t.cluster_of(core), ClusterId(c));
            }
        }
    }

    #[test]
    fn cluster_xy_covers_grid() {
        let t = Topology::paper_default();
        let (x, y) = t.cluster_xy(ClusterId(35));
        assert_eq!((x, y), (5, 5));
        assert_eq!(t.cluster_xy(ClusterId(6)), (0, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_id_rejected() {
        Topology::small().cluster_of(CoreId(999));
    }
}
