//! Process-wide LRU cache of fabricated chip populations.
//!
//! Fabricating a population is the expensive half of every simulation
//! query: sampling the variation field and deriving per-cluster timing
//! costs ~0.3 ms per 288-core chip even with the envelope sampler
//! cache warm. A long-lived service ("accordion-served") answers many
//! queries against the *same* population — identical `(topology, seed,
//! count)` — so this module keeps the most recently used populations
//! alive behind `Arc`s and lets repeated queries skip fabrication
//! entirely.
//!
//! The cache key is `(topology, seed, count)`; the technology node and
//! [`VariationParams`] are the paper defaults baked into
//! [`Chip::fabricate_population`] (11 nm, Table 2), which is the only
//! configuration the repro stack fabricates. Entries are evicted in
//! least-recently-used order once [`CAPACITY`] populations are
//! resident; an evicted population stays alive for as long as any
//! caller still holds its `Arc`.
//!
//! Hit/miss/eviction counts land in the telemetry registry under
//! `chip.popcache.*`, so `GET /metrics` shows cache effectiveness.

use crate::chip::Chip;
use crate::topology::Topology;
use accordion_stats::field::FieldError;
use accordion_stats::rng::SeedStream;
use accordion_telemetry::{counter, gauge};
use accordion_varius::params::VariationParams;
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum number of resident populations before LRU eviction.
pub const CAPACITY: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PopKey {
    topo: Topology,
    seed: u64,
    count: usize,
}

/// Most-recently-used entry last; `Vec` beats a map at this size and
/// keeps the LRU order explicit.
type Shelf = Vec<(PopKey, Arc<Vec<Chip>>)>;

static CACHE: OnceLock<Mutex<Shelf>> = OnceLock::new();

fn shelf() -> &'static Mutex<Shelf> {
    CACHE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Returns chips `0..count` of the population `(topo, seed)`, reusing
/// a cached population when one is resident.
///
/// The returned slice is exactly what
/// [`Chip::fabricate_population`] produces for the same arguments with
/// the default [`VariationParams`] — byte-identical simulation results
/// are preserved because the cache only memoizes, never re-seeds.
/// Fabrication on a miss runs *outside* the cache lock, so concurrent
/// warm lookups are never blocked behind a cold one; two concurrent
/// misses on the same key may both fabricate, in which case the first
/// insertion wins and both callers observe identical chips.
///
/// # Errors
///
/// Propagates [`FieldError`] from the variation sampler.
///
/// # Example
///
/// ```
/// use accordion_chip::popcache;
/// use accordion_chip::topology::Topology;
///
/// let a = popcache::population(Topology::small(), 2014, 2)?;
/// let b = popcache::population(Topology::small(), 2014, 2)?;
/// assert!(std::sync::Arc::ptr_eq(&a, &b)); // second call is a hit
/// # Ok::<(), accordion_stats::field::FieldError>(())
/// ```
pub fn population(topo: Topology, seed: u64, count: usize) -> Result<Arc<Vec<Chip>>, FieldError> {
    population_with_status(topo, seed, count).map(|(pop, _)| pop)
}

/// [`population`] plus whether the lookup was a cache hit — for
/// callers (the serving access log) that report per-request cache
/// effectiveness. `true` means the population was already resident.
///
/// # Errors
///
/// Propagates [`FieldError`] from the variation sampler.
pub fn population_with_status(
    topo: Topology,
    seed: u64,
    count: usize,
) -> Result<(Arc<Vec<Chip>>, bool), FieldError> {
    let key = PopKey { topo, seed, count };
    if let Some(pop) = lookup(&key) {
        counter!("chip.popcache.hits").inc();
        return Ok((pop, true));
    }
    counter!("chip.popcache.misses").inc();
    let chips = Chip::fabricate_population(
        topo,
        &VariationParams::default(),
        SeedStream::new(seed),
        0,
        count,
    )?;
    Ok((insert(key, Arc::new(chips)), false))
}

/// Lifetime hit/miss counts `(hits, misses)` from the telemetry
/// registry — the numbers behind the `/metrics` hit-ratio gauge.
pub fn stats() -> (u64, u64) {
    let reg = accordion_telemetry::registry::global();
    (
        reg.counter("chip.popcache.hits").get(),
        reg.counter("chip.popcache.misses").get(),
    )
}

/// Number of resident populations (for tests and health reporting).
pub fn len() -> usize {
    shelf().lock().expect("popcache lock").len()
}

/// Drops every resident population (tests only; in-flight `Arc`s keep
/// their populations alive).
pub fn clear() {
    shelf().lock().expect("popcache lock").clear();
    gauge!("chip.popcache.entries").set(0.0);
}

fn lookup(key: &PopKey) -> Option<Arc<Vec<Chip>>> {
    let mut shelf = shelf().lock().expect("popcache lock");
    let idx = shelf.iter().position(|(k, _)| k == key)?;
    // Refresh recency: move the hit to the back.
    let entry = shelf.remove(idx);
    let pop = entry.1.clone();
    shelf.push(entry);
    Some(pop)
}

fn insert(key: PopKey, pop: Arc<Vec<Chip>>) -> Arc<Vec<Chip>> {
    let mut shelf = shelf().lock().expect("popcache lock");
    // A concurrent miss may have inserted the same key while we were
    // fabricating; keep the resident Arc so hits stay pointer-equal.
    if let Some(idx) = shelf.iter().position(|(k, _)| k == &key) {
        let entry = shelf.remove(idx);
        let existing = entry.1.clone();
        shelf.push(entry);
        return existing;
    }
    while shelf.len() >= CAPACITY {
        shelf.remove(0);
        counter!("chip.popcache.evictions").inc();
    }
    shelf.push((key, pop.clone()));
    gauge!("chip.popcache.entries").set(shelf.len() as f64);
    pop
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_the_resident_population() {
        let a = population(Topology::small(), 7001, 2).unwrap();
        let b = population(Topology::small(), 7001, 2).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn distinct_keys_are_distinct_entries() {
        let a = population(Topology::small(), 7002, 1).unwrap();
        let b = population(Topology::small(), 7003, 1).unwrap();
        let c = population(Topology::small(), 7002, 2).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn cached_population_matches_direct_fabrication() {
        let cached = population(Topology::small(), 7004, 2).unwrap();
        let direct = Chip::fabricate_population(
            Topology::small(),
            &VariationParams::default(),
            SeedStream::new(7004),
            0,
            2,
        )
        .unwrap();
        for (a, b) in cached.iter().zip(&direct) {
            assert_eq!(a.sample().cluster_vddmin_v, b.sample().cluster_vddmin_v);
        }
    }

    #[test]
    fn lru_evicts_the_oldest_entry() {
        // Fill well past capacity with unique keys; the earliest key
        // must no longer be pointer-identical on re-fetch.
        let first = population(Topology::small(), 7100, 1).unwrap();
        for s in 7101..(7101 + CAPACITY as u64) {
            population(Topology::small(), s, 1).unwrap();
        }
        assert!(len() <= CAPACITY);
        let refetched = population(Topology::small(), 7100, 1).unwrap();
        assert!(
            !Arc::ptr_eq(&first, &refetched),
            "7100 should have aged out"
        );
        // Evicted-then-refabricated populations are still identical.
        assert_eq!(
            first[0].sample().cluster_vddmin_v,
            refetched[0].sample().cluster_vddmin_v
        );
    }
}
