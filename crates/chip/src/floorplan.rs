//! Die floorplan: maps the topology onto die coordinates and produces
//! the variation model's sample-site plan.
//!
//! The paper's chip is ≈20 mm × 20 mm (Table 2). Clusters tile the die;
//! within a cluster, cores sit on a small grid with their private
//! memories alongside and the shared cluster memory at the center.

use crate::topology::{ClusterId, Topology};
use accordion_varius::layout::{MemKind, MemSite, SitePlan};

/// Floorplan parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Floorplan {
    /// Die width in mm (paper: ≈20 mm).
    pub chip_w_mm: f64,
    /// Die height in mm.
    pub chip_h_mm: f64,
}

impl Floorplan {
    /// The paper's ≈20 mm × 20 mm die.
    pub fn paper_default() -> Self {
        Self {
            chip_w_mm: 20.0,
            chip_h_mm: 20.0,
        }
    }

    /// Builds the variation sample-site plan for a topology.
    ///
    /// Each cluster occupies an equal tile; cores form a near-square
    /// grid inside the tile. One `CorePrivate` memory site co-locates
    /// with each core (offset slightly so sites never coincide — a
    /// coincident pair would make the correlation matrix singular) and
    /// one `ClusterShared` site sits at the tile center.
    pub fn site_plan(&self, topo: &Topology) -> SitePlan {
        let tile_w = self.chip_w_mm / topo.clusters_x as f64;
        let tile_h = self.chip_h_mm / topo.clusters_y as f64;
        // Near-square core grid inside a tile.
        let cores = topo.cores_per_cluster;
        let gx = (cores as f64).sqrt().ceil() as usize;
        let gy = cores.div_ceil(gx);

        let mut core_sites = Vec::with_capacity(topo.num_cores());
        let mut core_clusters = Vec::with_capacity(topo.num_cores());
        let mut mem_sites = Vec::with_capacity(topo.num_cores() + topo.num_clusters());

        for cl in 0..topo.num_clusters() {
            let (cx, cy) = topo.cluster_xy(ClusterId(cl));
            let (ox, oy) = (cx as f64 * tile_w, cy as f64 * tile_h);
            for k in 0..cores {
                let (ix, iy) = (k % gx, k / gx);
                let x = ox + (ix as f64 + 0.5) / gx as f64 * tile_w;
                let y = oy + (iy as f64 + 0.5) / gy as f64 * tile_h;
                core_sites.push((x, y));
                core_clusters.push(cl);
                // Private memory sits next to its core, offset by a
                // tenth of the core pitch.
                mem_sites.push(MemSite {
                    pos_mm: (x + 0.1 * tile_w / gx as f64, y),
                    kind: MemKind::CorePrivate,
                    cluster: cl,
                });
            }
            mem_sites.push(MemSite {
                pos_mm: (ox + 0.5 * tile_w, oy + 0.5 * tile_h + 0.05 * tile_h),
                kind: MemKind::ClusterShared,
                cluster: cl,
            });
        }

        SitePlan {
            chip_w_mm: self.chip_w_mm,
            chip_h_mm: self.chip_h_mm,
            core_sites_mm: core_sites,
            core_clusters,
            mem_sites,
        }
    }
}

impl Default for Floorplan {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_counts() {
        let plan = Floorplan::paper_default().site_plan(&Topology::paper_default());
        assert_eq!(plan.num_cores(), 288);
        assert_eq!(plan.num_mem_sites(), 288 + 36);
        assert_eq!(plan.num_clusters(), 36);
    }

    #[test]
    fn sites_inside_die() {
        let plan = Floorplan::paper_default().site_plan(&Topology::paper_default());
        for &(x, y) in &plan.core_sites_mm {
            assert!(x > 0.0 && x < 20.0 && y > 0.0 && y < 20.0);
        }
        for m in &plan.mem_sites {
            assert!(m.pos_mm.0 > 0.0 && m.pos_mm.0 < 20.5);
            assert!(m.pos_mm.1 > 0.0 && m.pos_mm.1 < 20.5);
        }
    }

    #[test]
    fn no_two_sites_coincide() {
        let plan = Floorplan::paper_default().site_plan(&Topology::small());
        let pts = plan.all_points_mm();
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                let d = (pts[i].0 - pts[j].0).hypot(pts[i].1 - pts[j].1);
                assert!(d > 1e-6, "sites {i} and {j} coincide");
            }
        }
    }

    #[test]
    fn cores_of_same_cluster_are_close() {
        let topo = Topology::paper_default();
        let plan = Floorplan::paper_default().site_plan(&topo);
        // All cores of cluster 0 must be inside its tile (≤3.33 mm).
        for k in 0..topo.cores_per_cluster {
            let (x, y) = plan.core_sites_mm[k];
            assert!(x < 20.0 / 6.0 && y < 20.0 / 6.0);
        }
    }
}
