//! The Accordion design space (paper Section 4.2, Figure 3):
//! how Control Cores are differentiated from Data Cores.
//!
//! * **Homogeneous, spatio-temporal** (Fig. 3a): identical cores; the
//!   fastest/most reliable core of each cluster is *assigned* the CC
//!   role. Flexible, but a core is lost to control per cluster.
//! * **Homogeneous, time-multiplexed** (Fig. 3b): every core
//!   time-multiplexes between CC and DC functionality. Best hardware
//!   utilization, but control work steals a slice of every core and
//!   the memory-protection domains cost switching overhead.
//! * **Heterogeneous** (Fig. 3c): dedicated CC hardware per cluster —
//!   robust by design (higher area), leaving all ordinary cores as
//!   DCs, but the CC:DC ratio is fixed at design time.

use crate::chip::Chip;
use crate::topology::ClusterId;
use accordion_varius::params::VariationParams;

/// CC/DC differentiation options (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcDcOrganization {
    /// Fig. 3a: per cluster, the most reliable core becomes the CC.
    HomogeneousSpatioTemporal {
        /// Control cores designated per cluster.
        ccs_per_cluster: usize,
    },
    /// Fig. 3b: all cores compute; each donates a duty-cycle fraction
    /// to control functionality.
    HomogeneousTimeMultiplexed {
        /// Fraction of each core's time spent on CC duties.
        control_duty: f64,
    },
    /// Fig. 3c: dedicated CC hardware; DCs keep computing, but the
    /// dedicated CC consumes extra area/power per cluster.
    Heterogeneous {
        /// Dedicated CCs per cluster.
        ccs_per_cluster: usize,
        /// CC area/power premium relative to a DC (paper: CCs are
        /// "expected to consume more area than DCs").
        cc_overhead: f64,
    },
}

impl CcDcOrganization {
    /// The three organizations at their natural configurations.
    pub fn figure3_variants() -> [CcDcOrganization; 3] {
        [
            CcDcOrganization::HomogeneousSpatioTemporal { ccs_per_cluster: 1 },
            CcDcOrganization::HomogeneousTimeMultiplexed { control_duty: 0.10 },
            CcDcOrganization::Heterogeneous {
                ccs_per_cluster: 1,
                cc_overhead: 0.5,
            },
        ]
    }

    /// Short display name matching the figure labels.
    pub fn label(&self) -> &'static str {
        match self {
            CcDcOrganization::HomogeneousSpatioTemporal { .. } => "homog. spatio-temporal (3a)",
            CcDcOrganization::HomogeneousTimeMultiplexed { .. } => "homog. time-multiplexed (3b)",
            CcDcOrganization::Heterogeneous { .. } => "heterogeneous (3c)",
        }
    }
}

/// What a cluster delivers for data-intensive computation under an
/// organization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterYield {
    /// Cores (or core-equivalents) available as Data Cores.
    pub dc_core_equivalents: f64,
    /// The frequency the DC set runs at, GHz.
    pub dc_f_ghz: f64,
    /// Extra power charged to control, in watts.
    pub control_power_w: f64,
}

impl ClusterYield {
    /// Data throughput proxy: DC core-equivalents × frequency.
    pub fn dc_core_ghz(&self) -> f64 {
        self.dc_core_equivalents * self.dc_f_ghz
    }
}

/// Evaluates what one cluster of `chip` yields under `org`.
///
/// Under the spatio-temporal option the designated CC is the cluster's
/// *fastest* core; removing it from the DC pool leaves the DC
/// frequency bound unchanged (the slowest core binds it) but costs one
/// core of throughput. Time multiplexing keeps all cores computing at
/// a reduced duty. Dedicated CCs keep all cores as DCs at a power
/// premium.
pub fn cluster_yield(
    chip: &Chip,
    cluster: ClusterId,
    org: CcDcOrganization,
    params: &VariationParams,
) -> ClusterYield {
    let cores = chip.topology().cores_per_cluster;
    let f_cluster = chip.cluster_safe_f_ghz(cluster);
    // Per-core power at the cluster's operating point, for charging
    // control overheads.
    let per_core_power = chip.cluster_power_w(cluster, f_cluster) / cores as f64;
    match org {
        CcDcOrganization::HomogeneousSpatioTemporal { ccs_per_cluster } => {
            let ccs = ccs_per_cluster.min(cores);
            // The CC must be reliable: it is the *fastest* core, which
            // by construction is not the one binding the cluster
            // frequency (unless the cluster has a single core).
            let timing = chip.cluster_timing(cluster);
            let dc_f_ghz = if cores - ccs == 0 {
                0.0
            } else {
                // DC frequency still bound by the slowest remaining
                // core — the slowest overall, since CCs take the fast
                // ones.
                timing.safe_frequency_ghz(params)
            };
            ClusterYield {
                dc_core_equivalents: (cores - ccs) as f64,
                dc_f_ghz,
                control_power_w: ccs as f64 * per_core_power,
            }
        }
        CcDcOrganization::HomogeneousTimeMultiplexed { control_duty } => ClusterYield {
            dc_core_equivalents: cores as f64 * (1.0 - control_duty.clamp(0.0, 1.0)),
            dc_f_ghz: f_cluster,
            control_power_w: cores as f64 * per_core_power * control_duty.clamp(0.0, 1.0),
        },
        CcDcOrganization::Heterogeneous {
            ccs_per_cluster,
            cc_overhead,
        } => ClusterYield {
            dc_core_equivalents: cores as f64,
            dc_f_ghz: f_cluster,
            control_power_w: ccs_per_cluster as f64 * per_core_power * (1.0 + cc_overhead),
        },
    }
}

/// Chip-wide DC throughput (core-GHz) and control power under an
/// organization.
pub fn chip_yield(chip: &Chip, org: CcDcOrganization, params: &VariationParams) -> (f64, f64) {
    let mut core_ghz = 0.0;
    let mut control_w = 0.0;
    for c in 0..chip.topology().num_clusters() {
        let y = cluster_yield(chip, ClusterId(c), org, params);
        core_ghz += y.dc_core_ghz();
        control_w += y.control_power_w;
    }
    (core_ghz, control_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn chip() -> &'static Chip {
        static CHIP: OnceLock<Chip> = OnceLock::new();
        CHIP.get_or_init(|| Chip::fabricate_small(0).expect("chip"))
    }

    fn params() -> VariationParams {
        VariationParams::default()
    }

    #[test]
    fn spatio_temporal_loses_one_core_per_cluster() {
        let y = cluster_yield(
            chip(),
            ClusterId(0),
            CcDcOrganization::HomogeneousSpatioTemporal { ccs_per_cluster: 1 },
            &params(),
        );
        assert_eq!(
            y.dc_core_equivalents,
            (chip().topology().cores_per_cluster - 1) as f64
        );
        assert!(y.control_power_w > 0.0);
    }

    #[test]
    fn time_multiplexing_keeps_all_cores_at_reduced_duty() {
        let y = cluster_yield(
            chip(),
            ClusterId(0),
            CcDcOrganization::HomogeneousTimeMultiplexed { control_duty: 0.10 },
            &params(),
        );
        let cores = chip().topology().cores_per_cluster as f64;
        assert!((y.dc_core_equivalents - cores * 0.9).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_keeps_all_dcs_but_pays_power() {
        let het = cluster_yield(
            chip(),
            ClusterId(0),
            CcDcOrganization::Heterogeneous {
                ccs_per_cluster: 1,
                cc_overhead: 0.5,
            },
            &params(),
        );
        assert_eq!(
            het.dc_core_equivalents,
            chip().topology().cores_per_cluster as f64
        );
        let spa = cluster_yield(
            chip(),
            ClusterId(0),
            CcDcOrganization::HomogeneousSpatioTemporal { ccs_per_cluster: 1 },
            &params(),
        );
        assert!(het.dc_core_ghz() > spa.dc_core_ghz());
        assert!(het.control_power_w > spa.control_power_w);
    }

    #[test]
    fn chip_yield_aggregates_all_clusters() {
        let (core_ghz, control_w) = chip_yield(
            chip(),
            CcDcOrganization::HomogeneousTimeMultiplexed { control_duty: 0.1 },
            &params(),
        );
        assert!(core_ghz > 0.0);
        assert!(control_w > 0.0);
    }

    #[test]
    fn figure3_variants_cover_all_three() {
        let labels: Vec<&str> = CcDcOrganization::figure3_variants()
            .iter()
            .map(|o| o.label())
            .collect();
        assert!(labels[0].contains("3a"));
        assert!(labels[1].contains("3b"));
        assert!(labels[2].contains("3c"));
    }
}
