//! Manycore NTC chip model.
//!
//! Implements the hypothetical 288-core chip of the Accordion paper's
//! evaluation (Table 2): 36 clusters of 8 single-issue cores at 11 nm,
//! per-core private memories, per-cluster shared memories, a bus
//! inside each cluster and a 2D torus across clusters, a 100 W chip
//! power budget, and per-cluster frequency domains whose operating
//! point is bound by the slowest member core.
//!
//! * [`topology`] — cluster/core organization and id types,
//! * [`floorplan`] — die coordinates; builds the variation model's
//!   [`accordion_varius::layout::SitePlan`],
//! * [`memory`] — the Table 2 memory hierarchy parameters,
//! * [`network`] — bus + torus latency model,
//! * [`power`] — chip-level power aggregation and the STV core-count
//!   budget (`N_STV`),
//! * [`chip`] — a fabricated [`chip::Chip`] combining topology with one
//!   variation sample,
//! * [`popcache`] — a process-wide LRU cache of fabricated
//!   populations, the amortization layer behind `accordion-served`,
//! * [`organization`] — the Figure 3 CC/DC design space,
//! * [`thermal`] — the leakage–temperature feedback loop behind the
//!   Table 2 cooling limit,
//! * [`selection`] — energy-efficiency-ordered cluster selection,
//! * [`columns`] — columnar (struct-of-arrays) chip evaluation:
//!   precomputed selection order, prefix operating limits and
//!   per-supply timing contexts for batched sweeps.
//!
//! # Example
//!
//! ```
//! use accordion_chip::chip::Chip;
//!
//! let chip = Chip::fabricate_default(0)?;
//! assert_eq!(chip.topology().num_cores(), 288);
//! assert!(chip.vdd_ntv_v() > 0.4 && chip.vdd_ntv_v() < 0.7);
//! # Ok::<(), accordion_stats::field::FieldError>(())
//! ```

pub mod chip;
pub mod columns;
pub mod floorplan;
pub mod memory;
pub mod network;
pub mod organization;
pub mod popcache;
pub mod power;
pub mod selection;
pub mod thermal;
pub mod topology;

pub use chip::Chip;
pub use columns::{ChipColumns, OperatingTimings, PopulationColumns};
pub use power::ChipPowerModel;
pub use selection::ClusterSelection;
pub use topology::Topology;
