//! Cluster selection policies.
//!
//! Accordion assigns work at cluster granularity (Section 6.1) and,
//! when a problem size demands `N_NTV` cores, "picks the most
//! energy-efficient `N_NTV` cores from the variation-afflicted chip"
//! (Section 6.3). Alternative policies are provided for the ablation
//! study called out in DESIGN.md.

use crate::chip::Chip;
use crate::topology::ClusterId;
use accordion_stats::rng::SeedStream;
use rand::seq::SliceRandom;

/// How to order clusters when selecting `n` of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Most energy-efficient first (the paper's policy).
    EnergyEfficiency,
    /// Highest safe frequency first.
    FastestFirst,
    /// Uniformly random order (ablation baseline); the payload seeds
    /// the shuffle.
    Random(u64),
    /// Cluster-id order (naive baseline).
    InOrder,
}

/// A set of selected clusters with the operating limits they imply.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSelection {
    clusters: Vec<ClusterId>,
    /// Minimum (binding) safe frequency across the selection, GHz.
    safe_f_ghz: f64,
}

impl ClusterSelection {
    /// Assembles a selection from an already-ordered cluster list and
    /// its precomputed binding safe frequency. Used by the columnar
    /// engine ([`crate::columns::ChipColumns`]), which materializes
    /// the efficiency order once and serves every prefix from it.
    pub(crate) fn from_parts(clusters: Vec<ClusterId>, safe_f_ghz: f64) -> Self {
        debug_assert!(!clusters.is_empty(), "selection must be non-empty");
        Self {
            clusters,
            safe_f_ghz,
        }
    }

    /// Selects `n` clusters from `chip` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the cluster count.
    pub fn select(chip: &Chip, n: usize, policy: SelectionPolicy) -> Self {
        let total = chip.topology().num_clusters();
        assert!(n > 0, "selection must be non-empty");
        assert!(n <= total, "cannot select {n} of {total} clusters");
        let mut order: Vec<ClusterId> = (0..total).map(ClusterId).collect();
        match policy {
            SelectionPolicy::EnergyEfficiency => {
                order.sort_by(|a, b| {
                    chip.cluster_efficiency(*b)
                        .partial_cmp(&chip.cluster_efficiency(*a))
                        .expect("efficiencies are finite")
                });
            }
            SelectionPolicy::FastestFirst => {
                order.sort_by(|a, b| {
                    chip.cluster_safe_f_ghz(*b)
                        .partial_cmp(&chip.cluster_safe_f_ghz(*a))
                        .expect("frequencies are finite")
                });
            }
            SelectionPolicy::Random(seed) => {
                let mut rng = SeedStream::new(seed).stream("cluster-shuffle", 0);
                order.shuffle(&mut rng);
            }
            SelectionPolicy::InOrder => {}
        }
        order.truncate(n);
        let safe_f_ghz = order
            .iter()
            .map(|&c| chip.cluster_safe_f_ghz(c))
            .fold(f64::INFINITY, f64::min);
        Self {
            clusters: order,
            safe_f_ghz,
        }
    }

    /// The selected clusters, best first.
    pub fn clusters(&self) -> &[ClusterId] {
        &self.clusters
    }

    /// Number of selected clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the selection is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Total core count across the selection.
    pub fn num_cores(&self, chip: &Chip) -> usize {
        self.len() * chip.topology().cores_per_cluster
    }

    /// The binding safe frequency: all selected clusters run at the
    /// frequency of the slowest one (Section 4: equal progress).
    pub fn safe_f_ghz(&self) -> f64 {
        self.safe_f_ghz
    }

    /// The binding frequency at a speculative per-cycle error rate.
    pub fn f_for_perr_ghz(&self, chip: &Chip, perr: f64) -> f64 {
        self.clusters
            .iter()
            .map(|&c| chip.cluster_f_for_perr_ghz(c, perr))
            .fold(f64::INFINITY, f64::min)
    }

    /// Total power of the selection with all member cores running at
    /// `f_ghz`, in watts.
    pub fn power_w(&self, chip: &Chip, f_ghz: f64) -> f64 {
        self.clusters
            .iter()
            .map(|&c| chip.cluster_power_w(c, f_ghz))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> Chip {
        Chip::fabricate_small(5).unwrap()
    }

    #[test]
    fn efficiency_policy_orders_descending() {
        let chip = chip();
        let sel = ClusterSelection::select(&chip, 4, SelectionPolicy::EnergyEfficiency);
        let effs: Vec<f64> = sel
            .clusters()
            .iter()
            .map(|&c| chip.cluster_efficiency(c))
            .collect();
        for w in effs.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn growing_selection_never_raises_safe_f() {
        let chip = chip();
        let mut prev = f64::INFINITY;
        for n in 1..=4 {
            let sel = ClusterSelection::select(&chip, n, SelectionPolicy::EnergyEfficiency);
            assert!(sel.safe_f_ghz() <= prev + 1e-12);
            prev = sel.safe_f_ghz();
        }
    }

    #[test]
    fn fastest_first_beats_or_ties_others_on_f() {
        let chip = chip();
        for n in 1..=3 {
            let fast = ClusterSelection::select(&chip, n, SelectionPolicy::FastestFirst);
            for policy in [SelectionPolicy::EnergyEfficiency, SelectionPolicy::InOrder] {
                let other = ClusterSelection::select(&chip, n, policy);
                assert!(fast.safe_f_ghz() >= other.safe_f_ghz() - 1e-12);
            }
        }
    }

    #[test]
    fn random_policy_is_seeded() {
        let chip = chip();
        let a = ClusterSelection::select(&chip, 3, SelectionPolicy::Random(7));
        let b = ClusterSelection::select(&chip, 3, SelectionPolicy::Random(7));
        assert_eq!(a, b);
    }

    #[test]
    fn power_grows_with_selection_size() {
        let chip = chip();
        let p1 = ClusterSelection::select(&chip, 1, SelectionPolicy::EnergyEfficiency)
            .power_w(&chip, 0.5);
        let p4 = ClusterSelection::select(&chip, 4, SelectionPolicy::EnergyEfficiency)
            .power_w(&chip, 0.5);
        assert!(p4 > 3.0 * p1);
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn oversized_selection_rejected() {
        ClusterSelection::select(&chip(), 99, SelectionPolicy::InOrder);
    }
}
