//! On-chip network: a bus inside each cluster and a 2D torus across
//! clusters (paper Table 2), with a simple latency model used by the
//! execution-time accounting.

use crate::topology::{ClusterId, Topology};

/// Network parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkParams {
    /// Network clock in GHz (paper: 0.8 GHz at the NTV nominal).
    pub f_network_ghz: f64,
    /// Bus arbitration + transfer latency inside a cluster, in network
    /// cycles.
    pub bus_cycles: u32,
    /// Per-hop latency of the torus, in network cycles.
    pub hop_cycles: u32,
    /// Router/injection overhead per message, in network cycles.
    pub inject_cycles: u32,
}

impl NetworkParams {
    /// Paper-consistent defaults.
    pub fn paper_default() -> Self {
        Self {
            f_network_ghz: 0.8,
            bus_cycles: 4,
            hop_cycles: 2,
            inject_cycles: 3,
        }
    }

    /// Torus hop distance between two clusters (wrap-around Manhattan
    /// distance).
    pub fn torus_hops(&self, topo: &Topology, a: ClusterId, b: ClusterId) -> u32 {
        let (ax, ay) = topo.cluster_xy(a);
        let (bx, by) = topo.cluster_xy(b);
        let dx = ax.abs_diff(bx).min(topo.clusters_x - ax.abs_diff(bx));
        let dy = ay.abs_diff(by).min(topo.clusters_y - ay.abs_diff(by));
        (dx + dy) as u32
    }

    /// One-way message latency in ns between two cores' clusters:
    /// intra-cluster messages ride the bus; inter-cluster messages pay
    /// injection plus per-hop costs.
    pub fn message_latency_ns(&self, topo: &Topology, a: ClusterId, b: ClusterId) -> f64 {
        let cycles = if a == b {
            self.bus_cycles
        } else {
            self.inject_cycles + self.hop_cycles * self.torus_hops(topo, a, b) + self.bus_cycles
        };
        cycles as f64 / self.f_network_ghz
    }

    /// Average one-way latency from a cluster to `n` uniformly spread
    /// destination clusters (used for reduction/merge cost estimates).
    pub fn avg_latency_to_all_ns(&self, topo: &Topology, from: ClusterId) -> f64 {
        let n = topo.num_clusters();
        let total: f64 = (0..n)
            .map(|c| self.message_latency_ns(topo, from, ClusterId(c)))
            .sum();
        total / n as f64
    }
}

impl Default for NetworkParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_cluster_uses_bus() {
        let net = NetworkParams::paper_default();
        let topo = Topology::paper_default();
        let l = net.message_latency_ns(&topo, ClusterId(3), ClusterId(3));
        assert_eq!(l, 4.0 / 0.8);
    }

    #[test]
    fn torus_wraps_around() {
        let net = NetworkParams::paper_default();
        let topo = Topology::paper_default();
        // Clusters 0 (0,0) and 5 (5,0): 5 hops direct, 1 hop wrapped.
        assert_eq!(net.torus_hops(&topo, ClusterId(0), ClusterId(5)), 1);
        // Clusters 0 (0,0) and 2 (2,0): 2 hops.
        assert_eq!(net.torus_hops(&topo, ClusterId(0), ClusterId(2)), 2);
    }

    #[test]
    fn farther_clusters_cost_more() {
        let net = NetworkParams::paper_default();
        let topo = Topology::paper_default();
        let near = net.message_latency_ns(&topo, ClusterId(0), ClusterId(1));
        let far = net.message_latency_ns(&topo, ClusterId(0), ClusterId(14)); // (2,2)
        assert!(far > near);
    }

    #[test]
    fn avg_latency_is_between_extremes() {
        let net = NetworkParams::paper_default();
        let topo = Topology::paper_default();
        let avg = net.avg_latency_to_all_ns(&topo, ClusterId(0));
        let bus = net.message_latency_ns(&topo, ClusterId(0), ClusterId(0));
        let far = net.message_latency_ns(&topo, ClusterId(0), ClusterId(21)); // (3,3): max hops
        assert!(avg > bus && avg < far);
    }
}
