//! Property-based tests for the chip model.

use accordion_chip::chip::Chip;
use accordion_chip::network::NetworkParams;
use accordion_chip::organization::{cluster_yield, CcDcOrganization};
use accordion_chip::selection::{ClusterSelection, SelectionPolicy};
use accordion_chip::topology::{ClusterId, CoreId, Topology};
use accordion_varius::params::VariationParams;
use proptest::prelude::*;
use std::sync::OnceLock;

fn chip() -> &'static Chip {
    static CHIP: OnceLock<Chip> = OnceLock::new();
    CHIP.get_or_init(|| Chip::fabricate_small(0).expect("chip"))
}

proptest! {
    #[test]
    fn topology_cluster_membership_total(cx in 1usize..8, cy in 1usize..8, cpc in 1usize..16) {
        let t = Topology { clusters_x: cx, clusters_y: cy, cores_per_cluster: cpc };
        let mut seen = 0;
        for c in 0..t.num_clusters() {
            for core in t.cores_of(ClusterId(c)) {
                prop_assert_eq!(t.cluster_of(core), ClusterId(c));
                seen += 1;
            }
        }
        prop_assert_eq!(seen, t.num_cores());
    }

    #[test]
    fn torus_distance_is_symmetric_and_bounded(
        cx in 2usize..8, cy in 2usize..8, a in 0usize..64, b in 0usize..64,
    ) {
        let t = Topology { clusters_x: cx, clusters_y: cy, cores_per_cluster: 4 };
        let n = t.num_clusters();
        let (a, b) = (ClusterId(a % n), ClusterId(b % n));
        let net = NetworkParams::paper_default();
        prop_assert_eq!(net.torus_hops(&t, a, b), net.torus_hops(&t, b, a));
        // Wrap-around bound: at most half the ring in each dimension.
        prop_assert!(net.torus_hops(&t, a, b) as usize <= cx / 2 + cy / 2);
        if a == b {
            prop_assert_eq!(net.torus_hops(&t, a, b), 0);
        }
    }

    #[test]
    fn selection_is_subset_without_duplicates(n in 1usize..5, seed in 0u64..50) {
        let sel = ClusterSelection::select(chip(), n, SelectionPolicy::Random(seed));
        prop_assert_eq!(sel.len(), n);
        let mut ids: Vec<usize> = sel.clusters().iter().map(|c| c.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n);
        prop_assert!(ids.iter().all(|&c| c < 4));
    }

    #[test]
    fn binding_frequency_is_the_minimum_member(n in 1usize..5) {
        let sel = ClusterSelection::select(chip(), n, SelectionPolicy::EnergyEfficiency);
        let min_f = sel
            .clusters()
            .iter()
            .map(|&c| chip().cluster_safe_f_ghz(c))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((sel.safe_f_ghz() - min_f).abs() < 1e-12);
    }

    #[test]
    fn selection_power_monotone_in_frequency(n in 1usize..5, f1 in 0.1f64..0.8, df in 0.01f64..0.4) {
        let sel = ClusterSelection::select(chip(), n, SelectionPolicy::EnergyEfficiency);
        prop_assert!(sel.power_w(chip(), f1 + df) > sel.power_w(chip(), f1));
    }

    #[test]
    fn speculative_f_weakly_monotone_in_perr(n in 1usize..5, e1 in 4i32..12, de in 1i32..4) {
        let sel = ClusterSelection::select(chip(), n, SelectionPolicy::EnergyEfficiency);
        let strict = sel.f_for_perr_ghz(chip(), 10f64.powi(-(e1 + de)));
        let loose = sel.f_for_perr_ghz(chip(), 10f64.powi(-e1));
        prop_assert!(loose >= strict);
    }

    #[test]
    fn time_multiplex_duty_trades_linearly(duty in 0.0f64..0.9) {
        let y = cluster_yield(
            chip(),
            ClusterId(0),
            CcDcOrganization::HomogeneousTimeMultiplexed { control_duty: duty },
            &VariationParams::default(),
        );
        let cores = chip().topology().cores_per_cluster as f64;
        prop_assert!((y.dc_core_equivalents - cores * (1.0 - duty)).abs() < 1e-9);
    }

    #[test]
    fn core_ids_display_round_trip(id in 0usize..1000) {
        prop_assert_eq!(format!("{}", CoreId(id)), format!("core{id}"));
        prop_assert_eq!(format!("{}", ClusterId(id)), format!("cluster{id}"));
    }
}
