//! Property-based bit-identity proof for the columnar evaluation
//! layer: over random populations (fabrication seeds) and random
//! operating points (cluster-count, `Perr`, supply), every columnar
//! query must return the **same bits** as the object-walking path it
//! replaces. This is the contract that lets the sweep drivers switch
//! engines without perturbing a single golden artifact.

use accordion_chip::chip::Chip;
use accordion_chip::columns::{ChipColumns, OperatingTimings, COLUMNAR_POLICY};
use accordion_chip::selection::ClusterSelection;
use accordion_chip::topology::ClusterId;
use proptest::prelude::*;
use std::sync::OnceLock;

/// A small population of distinct fabrication seeds, fabricated once —
/// correlated-sample factorization per chip is too expensive to redo
/// per proptest case.
const POP: usize = 4;

fn population() -> &'static Vec<(Chip, ChipColumns)> {
    static CHIPS: OnceLock<Vec<(Chip, ChipColumns)>> = OnceLock::new();
    CHIPS.get_or_init(|| {
        (0..POP as u64)
            .map(|seed| {
                let chip = Chip::fabricate_small(seed).expect("fabrication");
                let cols = ChipColumns::build(&chip);
                (chip, cols)
            })
            .collect()
    })
}

proptest! {
    /// Per-cluster binding frequency: flat columnar pass vs the
    /// per-object scan, bit for bit, across chips and error targets.
    #[test]
    fn cluster_frequencies_match_object_path(
        chip_idx in 0usize..POP, cluster in 0usize..16, exp in 1i32..17,
    ) {
        let (chip, cols) = &population()[chip_idx];
        let n = chip.topology().num_clusters();
        let c = cluster % n;
        let perr = 10f64.powi(-exp);
        prop_assert_eq!(
            cols.timing().cluster_frequency_for_perr(c, perr).to_bits(),
            chip.cluster_timing(ClusterId(c)).frequency_for_perr(perr).to_bits(),
        );
    }

    /// Every prefix of the precomputed efficiency order is the legacy
    /// selection: same clusters, same safe-frequency bits.
    #[test]
    fn selection_prefix_matches_legacy_select(chip_idx in 0usize..POP, n in 1usize..16) {
        let (chip, cols) = &population()[chip_idx];
        let n = 1 + (n - 1) % chip.topology().num_clusters();
        let legacy = ClusterSelection::select(chip, n, COLUMNAR_POLICY);
        let batched = cols.selection_prefix(n);
        prop_assert_eq!(&legacy, &batched);
        prop_assert_eq!(legacy.safe_f_ghz().to_bits(), cols.safe_f_ghz(n).to_bits());
    }

    /// Speculative binding frequency of the best-`n` prefix: hoisted
    /// quantile inversion vs per-cluster re-inversion.
    #[test]
    fn prefix_f_for_perr_matches_selection(
        chip_idx in 0usize..POP, n in 1usize..16, exp in 1i32..17,
    ) {
        let (chip, cols) = &population()[chip_idx];
        let n = 1 + (n - 1) % chip.topology().num_clusters();
        let perr = 10f64.powi(-exp);
        let legacy = ClusterSelection::select(chip, n, COLUMNAR_POLICY);
        prop_assert_eq!(
            cols.f_for_perr_ghz(n, perr).to_bits(),
            legacy.f_for_perr_ghz(chip, perr).to_bits(),
        );
    }

    /// A per-supply timing context agrees with folding the object path
    /// over its own cluster timings — at the designated `VddNTV` (the
    /// reuse branch) and at re-derived supplies alike.
    #[test]
    fn operating_timings_match_object_fold(
        chip_idx in 0usize..POP, vdd_mv in 460u32..801, exp in 1i32..17, ntv in 0u8..2,
    ) {
        let (chip, _) = &population()[chip_idx];
        let vdd_v = if ntv == 1 { chip.vdd_ntv_v() } else { f64::from(vdd_mv) / 1000.0 };
        let perr = 10f64.powi(-exp);
        let ctx = OperatingTimings::at(chip, vdd_v);
        let legacy = ctx
            .timings()
            .iter()
            .map(|t| t.frequency_for_perr(perr))
            .fold(f64::INFINITY, f64::min);
        prop_assert_eq!(ctx.min_frequency_for_perr(perr).to_bits(), legacy.to_bits());
        let legacy_safe = ctx
            .timings()
            .iter()
            .map(|t| t.safe_frequency_ghz(chip.variation_params()))
            .fold(f64::INFINITY, f64::min);
        prop_assert_eq!(ctx.f_safe_ghz().to_bits(), legacy_safe.to_bits());
    }
}
