//! Property tests for the resumable HTTP/1.1 parser (ISSUE 7,
//! satellite 1): a request split at *any* byte boundary must parse
//! identically to one arriving whole, and no input — malformed,
//! oversized, or random garbage — may panic or hang the parser.
//!
//! The torture axis is arrival framing. TCP is a byte stream: the
//! reactor hands the parser whatever `read(2)` returned, which under
//! load means cuts mid-method, mid-header-name, between the `\r` and
//! the `\n`, or mid-body. The parser's contract is that none of that
//! is observable.

use accordion_served::http::{RequestParser, MAX_HEAD_BYTES};
use proptest::prelude::*;
use proptest::TestRng;

const MAX_BODY: usize = 4096;

/// One generated request: its wire bytes plus the parse we expect.
struct Expected {
    wire: Vec<u8>,
    method: &'static str,
    path: String,
    query: Vec<(String, String)>,
    body: Vec<u8>,
    close: bool,
}

/// Deterministically fabricates a valid request from RNG draws:
/// varied methods, paths, query strings, casing, optional extra
/// headers, optional body, optional `Connection: close`.
fn gen_request(rng: &mut TestRng) -> Expected {
    let method = ["GET", "POST", "PUT", "DELETE"][(rng.next_u64() % 4) as usize];
    let path = format!("/v{}/thing{}", rng.next_u64() % 3, rng.next_u64() % 100);
    let mut query = Vec::new();
    let mut target = path.clone();
    if rng.next_u64().is_multiple_of(2) {
        let k = format!("k{}", rng.next_u64() % 10);
        let v = format!("v{}", rng.next_u64() % 10);
        target.push_str(&format!("?{k}={v}"));
        query.push((k, v));
    }
    let body: Vec<u8> = (0..(rng.next_u64() % 200) as usize)
        .map(|_| b'a' + (rng.next_u64() % 26) as u8)
        .collect();
    let close = rng.next_u64().is_multiple_of(3);
    let mut wire = format!("{method} {target} HTTP/1.1\r\n").into_bytes();
    // Header-name casing must not matter.
    let host = if rng.next_u64().is_multiple_of(2) {
        "Host"
    } else {
        "hOsT"
    };
    wire.extend_from_slice(format!("{host}: example\r\n").as_bytes());
    if rng.next_u64().is_multiple_of(2) {
        wire.extend_from_slice(b"X-Filler: some opaque value\r\n");
    }
    if !body.is_empty() || rng.next_u64().is_multiple_of(2) {
        wire.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    }
    if close {
        wire.extend_from_slice(b"Connection: close\r\n");
    }
    wire.extend_from_slice(b"\r\n");
    wire.extend_from_slice(&body);
    Expected {
        wire,
        method,
        path,
        query,
        body,
        close,
    }
}

/// (method, path, query, body, close) — what one parse yields.
type Parsed = (String, String, Vec<(String, String)>, Vec<u8>, bool);

/// Feeds `bytes` to a parser in chunks cut at `cuts` (sorted offsets)
/// and returns every parse the stream yields, panicking on any error.
fn parse_chunked(bytes: &[u8], cuts: &[usize], max_body: usize) -> Vec<Parsed> {
    let mut parser = RequestParser::new(max_body);
    let mut out = Vec::new();
    let mut prev = 0;
    let mut feed = |parser: &mut RequestParser, chunk: &[u8]| {
        parser.push(chunk);
        loop {
            match parser.next_request() {
                Ok(Some(p)) => out.push((
                    p.request.method,
                    p.request.path,
                    p.request.query,
                    p.request.body,
                    p.close,
                )),
                Ok(None) => break,
                Err(e) => panic!("valid stream must parse, got {e:?}"),
            }
        }
    };
    for &cut in cuts {
        feed(&mut parser, &bytes[prev..cut]);
        prev = cut;
    }
    feed(&mut parser, &bytes[prev..]);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A pipelined batch of valid requests parses to the same sequence
    /// whether it arrives whole or split at arbitrary byte boundaries
    /// (including byte-by-byte for small streams).
    #[test]
    fn split_at_any_boundary_parses_identically(seed in 0u64..1_000_000) {
        let mut rng = TestRng::deterministic(&format!("http-batch-{seed}"));
        let n = 1 + (rng.next_u64() % 4) as usize;
        let batch: Vec<Expected> = (0..n).map(|_| gen_request(&mut rng)).collect();
        let mut stream = Vec::new();
        for r in &batch {
            stream.extend_from_slice(&r.wire);
        }

        // Reference parse: the whole stream in one push.
        let whole = parse_chunked(&stream, &[], MAX_BODY);
        prop_assert_eq!(whole.len(), batch.len());
        for (got, want) in whole.iter().zip(&batch) {
            prop_assert_eq!(&got.0, want.method);
            prop_assert_eq!(&got.1, &want.path);
            prop_assert_eq!(&got.2, &want.query);
            prop_assert_eq!(&got.3, &want.body);
            prop_assert_eq!(got.4, want.close);
        }

        // Random cut points.
        let mut cuts: Vec<usize> = (0..(rng.next_u64() % 12) as usize)
            .map(|_| (rng.next_u64() as usize) % (stream.len() + 1))
            .collect();
        cuts.sort_unstable();
        prop_assert_eq!(&parse_chunked(&stream, &cuts, MAX_BODY), &whole);

        // The pathological framing: every byte its own read.
        if stream.len() <= 600 {
            let every: Vec<usize> = (1..stream.len()).collect();
            prop_assert_eq!(&parse_chunked(&stream, &every, MAX_BODY), &whole);
        }
    }

    /// Random garbage never panics and never hangs: after the stream
    /// is consumed, `next_request` settles into a stable answer
    /// (incomplete or an error) instead of looping or flip-flopping.
    #[test]
    fn garbage_never_panics_or_hangs(seed in 0u64..1_000_000) {
        let mut rng = TestRng::deterministic(&format!("http-garbage-{seed}"));
        let len = (rng.next_u64() % 2000) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        let mut parser = RequestParser::new(MAX_BODY);
        let mut errored = false;
        for chunk in bytes.chunks(97) {
            if errored {
                break;
            }
            parser.push(chunk);
            loop {
                match parser.next_request() {
                    Ok(Some(_)) => {} // random bytes legitimately forming a request
                    Ok(None) => break,
                    Err(e) => {
                        // An error is terminal for the connection and
                        // carries a real status.
                        prop_assert!(matches!(e.status(), 400 | 413 | 431));
                        errored = true;
                        break;
                    }
                }
            }
        }
        if !errored {
            // No hang: repeated polls without new input are stable.
            let a = format!("{:?}", parser.next_request());
            let b = format!("{:?}", parser.next_request());
            prop_assert_eq!(a, b);
        }
    }

    /// A valid request whose `Content-Length` exceeds the cap is
    /// rejected with 413 as soon as the head parses — before the body
    /// arrives — at any split.
    #[test]
    fn oversized_body_is_413_at_any_split(extra in 1usize..10_000, cut in 0usize..64) {
        let declared = MAX_BODY + extra;
        let wire = format!("POST /v1/simulate HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        let bytes = wire.as_bytes();
        let cut = cut.min(bytes.len());
        let mut parser = RequestParser::new(MAX_BODY);
        parser.push(&bytes[..cut]);
        let _ = parser.next_request();
        parser.push(&bytes[cut..]);
        match parser.next_request() {
            Err(e) => prop_assert_eq!(e.status(), 413),
            other => prop_assert!(false, "expected 413, got {:?}", other),
        }
    }
}

#[test]
fn malformed_request_lines_are_400() {
    let cases: &[&str] = &[
        "garbage\r\n\r\n",
        "GET\r\n\r\n",
        "get /x HTTP/1.1\r\n\r\n",
        "GET /x SPDY/9\r\n\r\n",
        "GET nopath HTTP/1.1\r\n\r\n",
        "GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        "GET /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
        "GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
    ];
    for raw in cases {
        let mut parser = RequestParser::new(MAX_BODY);
        parser.push(raw.as_bytes());
        match parser.next_request() {
            Err(e) => assert_eq!(e.status(), 400, "{raw:?}"),
            other => panic!("{raw:?} must be 400, got {other:?}"),
        }
    }
}

#[test]
fn oversized_heads_are_431_even_without_a_terminator() {
    // The head cap must trip while the head is still streaming in —
    // a peer sending an unbounded header line cannot grow the buffer
    // past MAX_HEAD_BYTES plus one read.
    let mut parser = RequestParser::new(MAX_BODY);
    parser.push(b"GET /x HTTP/1.1\r\nX-Pad: ");
    let filler = vec![b'a'; MAX_HEAD_BYTES];
    parser.push(&filler);
    match parser.next_request() {
        Err(e) => assert_eq!(e.status(), 431),
        other => panic!("expected 431, got {other:?}"),
    }
}

#[test]
fn pipelined_requests_emerge_in_order_from_one_push() {
    let mut parser = RequestParser::new(MAX_BODY);
    parser.push(
        b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    let a = parser.next_request().unwrap().unwrap();
    assert_eq!((a.request.path.as_str(), a.close), ("/a", false));
    let b = parser.next_request().unwrap().unwrap();
    assert_eq!(b.request.body, b"hi");
    let c = parser.next_request().unwrap().unwrap();
    assert_eq!((c.request.path.as_str(), c.close), ("/c", true));
    assert!(parser.next_request().unwrap().is_none());
}
