//! The simulation engine behind `/v1/simulate`, `/v1/sweep` and
//! `/v1/optimize`.
//!
//! One query answers the paper's central question for one operating
//! point: *given this chip instance at this supply, what frequency can
//! it speculatively run at, what does the CC/DC protocol perceive, and
//! what quality/energy does the application end up with?* The engine
//! stitches the existing layers together — nothing here forks the
//! simulation path, so a query returns exactly what the batch
//! artifacts compute for the same parameters:
//!
//! 1. **population** — [`accordion_chip::popcache`] returns the
//!    `(topology, seed, chips)` population, fabricated at most once;
//! 2. **timing** — one [`OperatingTimings`] context per supply: the
//!    chip's own per-cluster timing (at its designated `VddNTV`) or
//!    re-derived at a requested supply, flattened to columnar form so
//!    frequency queries are flat array passes; a sweep derives the
//!    context once per `Vdd` row and shares it across the grid;
//! 3. **protocol** — [`run_app`] drives the CC/DC rounds at the
//!    speculative error rate, yielding drop/watchdog outcomes;
//! 4. **quality** — per-app [`QualityModel`]s (measured once per
//!    process, cached) interpolate the Figure 2/4 fronts;
//! 5. **energy** — the chip power model prices the active cores at the
//!    operating point.
//!
//! Every response is rendered with the deterministic
//! [`accordion_telemetry::json`] renderer, so identical queries return
//! byte-identical bodies at any worker count.

use accordion::quality::QualityModel;
use accordion_apps::app::all_apps;
use accordion_chip::chip::Chip;
use accordion_chip::columns::OperatingTimings;
use accordion_chip::popcache;
use accordion_chip::topology::{ClusterId, Topology};
use accordion_sim::exec::ExecModel;
use accordion_sim::phases::{iterative_app, run_app};
use accordion_stats::rng::SeedStream;
use accordion_telemetry::event::SimEvent;
use accordion_telemetry::json::Json;
use accordion_telemetry::{counter, flight, flight_track, span};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Upper bound on `chips` per query (bounds memory per cache entry).
const MAX_CHIPS: usize = 100;
/// Upper bound on a sweep's grid size.
const MAX_GRID: usize = 1024;
/// Rendered-response memo capacity (FIFO eviction). Sized so a burst
/// of identical queries — the coalescing target — always hits, while
/// the worst case stays a few MB of JSON.
const MEMO_CAPACITY: usize = 256;

/// A validated simulation query.
#[derive(Debug, Clone)]
pub struct SimQuery {
    /// Benchmark name (one of `all_apps()`).
    pub app: String,
    /// Chip topology: the paper's 288-core chip or the small test one.
    pub topo: Topology,
    /// Problem size, normalized to the benchmark default.
    pub size: f64,
    /// Supply override in millivolts; `None` uses the chip's `VddNTV`.
    pub vdd_mv: Option<f64>,
    /// Population seed (cache key together with `topo`/`chips`).
    pub pop_seed: u64,
    /// Protocol-simulation seed.
    pub seed: u64,
    /// Population size to fabricate.
    pub chips: usize,
    /// Which chip of the population to query.
    pub chip: usize,
    /// Data cores driven by the CC/DC protocol simulation.
    pub dcs: usize,
    /// Data/control phase iterations of the protocol run.
    pub iterations: usize,
    /// Target Drop fraction that sets the speculative error rate.
    pub drop_target: f64,
}

impl SimQuery {
    /// Parses and validates a query from a request body.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (the `400` body) when the JSON
    /// is malformed, a field has the wrong type, or a value is out of
    /// its documented range.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let app = doc
            .get("app")
            .and_then(Json::as_str)
            .ok_or("missing required string field \"app\"")?
            .to_string();
        if !all_apps().iter().any(|a| a.name() == app) {
            let known: Vec<String> = all_apps().iter().map(|a| a.name().to_string()).collect();
            return Err(format!("unknown app {app:?}; known: {}", known.join(", ")));
        }
        let topo = match doc.get("topo").and_then(Json::as_str).unwrap_or("default") {
            "default" => Topology::paper_default(),
            "small" => Topology::small(),
            other => return Err(format!("unknown topo {other:?}; use default or small")),
        };
        let size = num_field(doc, "size", 1.0)?;
        if !(0.01..=100.0).contains(&size) {
            return Err(format!("size {size} outside [0.01, 100]"));
        }
        let vdd_mv = match doc.get("vdd_mv") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let mv = v.as_f64().ok_or("vdd_mv must be a number")?;
                if !(300.0..=1200.0).contains(&mv) {
                    return Err(format!("vdd_mv {mv} outside [300, 1200]"));
                }
                Some(mv)
            }
        };
        let pop_seed = int_field(doc, "pop_seed", 2014.0)? as u64;
        let seed = int_field(doc, "seed", 0.0)? as u64;
        let chips = int_field(doc, "chips", 8.0)? as usize;
        if chips == 0 || chips > MAX_CHIPS {
            return Err(format!("chips {chips} outside [1, {MAX_CHIPS}]"));
        }
        let chip = int_field(doc, "chip", 0.0)? as usize;
        if chip >= chips {
            return Err(format!("chip index {chip} outside population of {chips}"));
        }
        let dcs = int_field(doc, "dcs", 16.0)? as usize;
        if dcs == 0 || dcs > 1024 {
            return Err(format!("dcs {dcs} outside [1, 1024]"));
        }
        let iterations = int_field(doc, "iterations", 3.0)? as usize;
        if iterations == 0 || iterations > 64 {
            return Err(format!("iterations {iterations} outside [1, 64]"));
        }
        let drop_target = num_field(doc, "drop_target", 0.25)?;
        if !(0.0..1.0).contains(&drop_target) || drop_target == 0.0 {
            return Err(format!("drop_target {drop_target} outside (0, 1)"));
        }
        Ok(Self {
            app,
            topo,
            size,
            vdd_mv,
            pop_seed,
            seed,
            chips,
            chip,
            dcs,
            iterations,
            drop_target,
        })
    }
}

fn num_field(doc: &Json, key: &str, default: f64) -> Result<f64, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_f64().ok_or_else(|| format!("{key} must be a number")),
    }
}

fn int_field(doc: &Json, key: &str, default: f64) -> Result<f64, String> {
    let v = num_field(doc, key, default)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("{key} must be a non-negative integer"));
    }
    Ok(v)
}

/// Errors a valid query can still hit while executing.
#[derive(Debug)]
pub enum EngineError {
    /// Client-side problem discovered during execution → 400.
    Bad(String),
    /// Internal model failure (e.g. correlation factorization) → 500.
    Internal(String),
}

/// Per-app quality models, measured once per process. Front
/// measurement runs the real kernels (seconds of work), which is
/// exactly the state a long-lived service exists to amortize.
fn quality_for(app_name: &str) -> Arc<QualityModel> {
    static MODELS: OnceLock<Mutex<HashMap<String, Arc<QualityModel>>>> = OnceLock::new();
    let models = MODELS.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(m) = models.lock().expect("quality cache lock").get(app_name) {
        counter!("served.quality_cache.hits").inc();
        return m.clone();
    }
    counter!("served.quality_cache.misses").inc();
    // Measure outside the lock: a cold canneal query must not block a
    // warm hotspot one. A racing duplicate measure is deterministic,
    // so whichever insertion wins, the model is the same.
    let app = all_apps()
        .into_iter()
        .find(|a| a.name() == app_name)
        .expect("validated app name");
    let measured = Arc::new(QualityModel::measure(app.as_ref()));
    models
        .lock()
        .expect("quality cache lock")
        .entry(app_name.to_string())
        .or_insert(measured)
        .clone()
}

/// Answers one simulation query. See the module docs for the pipeline.
///
/// # Errors
///
/// [`EngineError::Bad`] for client mistakes surfacing late,
/// [`EngineError::Internal`] for model failures.
pub fn simulate(q: &SimQuery) -> Result<Json, EngineError> {
    let cache_started = Instant::now();
    let (pop, cache_hit) = popcache::population_with_status(q.topo, q.pop_seed, q.chips)
        .map_err(|e| EngineError::Internal(format!("variation sampler: {e:?}")))?;
    crate::obs::note_cache(cache_hit);
    let cache_us = cache_started.elapsed().as_micros() as u64;
    accordion_telemetry::event::advance_sim(cache_us);
    flight!(SimEvent::ServeStage {
        stage: "serve.cache",
        us: cache_us,
    });
    let chip = &pop[q.chip];
    let vdd_v = q.vdd_mv.map_or(chip.vdd_ntv_v(), |mv| mv / 1000.0);
    let ctx = OperatingTimings::at(chip, vdd_v);
    simulate_at(q, chip, &ctx)
}

/// The per-point core of [`simulate`]: everything downstream of the
/// population lookup and per-supply timing derivation, so a sweep can
/// hoist both and share one [`OperatingTimings`] across every grid
/// cell at the same `Vdd`. `ctx` must have been derived from `chip`
/// at the query's operating supply.
fn simulate_at(q: &SimQuery, chip: &Chip, ctx: &OperatingTimings) -> Result<Json, EngineError> {
    let _span = span!("served.engine.simulate");
    counter!("served.engine.simulations").inc();
    let quality = quality_for(&q.app);
    let app = all_apps()
        .into_iter()
        .find(|a| a.name() == q.app)
        .expect("validated app name");

    // Per-cluster timing at the operating supply, from the hoisted
    // context: chip-wide safe frequency and the columnar binding-
    // frequency query (both bit-identical to the per-cluster object
    // walk they replaced).
    let vdd_v = ctx.vdd_v();
    let f_safe = ctx.f_safe_ghz();

    // Workload → per-thread cycles → speculative error rate. The
    // error-rate bridge is the validation module's: the Drop-x level
    // the quality model reads corresponds to Perr = −ln(1−x)/e.
    let exec = ExecModel::paper_default();
    let w = app.full_scale_workload(app.default_knob()).scaled(q.size);
    let n_cores = chip.topology().num_cores();
    let e_cycles = exec.thread_cycles(&w, w.work_units / n_cores as f64, f_safe);
    let perr = (-f64::ln_1p(-q.drop_target) / e_cycles).clamp(1e-300, 0.999_999);
    let f_run = ctx.min_frequency_for_perr(perr);

    // Protocol outcome at the speculative rate.
    let work = (e_cycles / q.iterations as f64).clamp(1.0, 1e15) as u64;
    let phases = iterative_app(q.iterations, work, 10_000);
    let run = run_app(&phases, q.dcs, perr, SeedStream::new(q.seed));

    // Quality from the measured fronts, clamped to their domain.
    let (lo, hi) = quality.size_domain();
    let s = q.size.clamp(lo, hi);

    // Energy: active cores plus uncore across the whole chip, at the
    // operating supply and speculative frequency.
    let power_w = chip_power_at(chip, vdd_v, f_run);
    let time_s = e_cycles / (f_run * 1e9);

    Ok(Json::obj(vec![
        (
            "request",
            Json::obj(vec![
                ("app", Json::str(&q.app)),
                (
                    "topo",
                    Json::str(if q.topo == Topology::small() {
                        "small"
                    } else {
                        "default"
                    }),
                ),
                ("size", Json::Num(q.size)),
                ("vdd_mv", Json::Num(vdd_v * 1000.0)),
                ("pop_seed", Json::Num(q.pop_seed as f64)),
                ("seed", Json::Num(q.seed as f64)),
                ("chips", Json::Num(q.chips as f64)),
                ("chip", Json::Num(q.chip as f64)),
                ("dcs", Json::Num(q.dcs as f64)),
                ("iterations", Json::Num(q.iterations as f64)),
                ("drop_target", Json::Num(q.drop_target)),
            ]),
        ),
        (
            "frequency",
            Json::obj(vec![
                ("f_safe_ghz", Json::Num(f_safe)),
                ("f_run_ghz", Json::Num(f_run)),
                ("speculative_gain", Json::Num(f_run / f_safe)),
                ("perr_per_cycle", Json::Num(perr)),
            ]),
        ),
        (
            "quality",
            Json::obj(vec![
                ("safe", Json::Num(quality.quality_safe(s))),
                ("speculative", Json::Num(quality.quality_speculative(s))),
                (
                    "scenario",
                    Json::str(quality.speculative_scenario().label()),
                ),
            ]),
        ),
        (
            "outcome",
            Json::obj(vec![
                ("drop_fraction", Json::Num(run.overall_drop_fraction)),
                ("watchdog_fires", Json::Num(f64::from(run.watchdog_fires))),
                ("makespan_cycles", Json::Num(run.makespan_cycles as f64)),
                ("rounds", Json::Num(run.rounds.len() as f64)),
            ]),
        ),
        (
            "energy",
            Json::obj(vec![
                ("power_w", Json::Num(power_w)),
                ("time_s", Json::Num(time_s)),
                ("energy_j", Json::Num(power_w * time_s)),
            ]),
        ),
    ]))
}

// ---------------------------------------------------------------------------
// Cross-connection coalescing: singleflight + rendered-response memo.
// ---------------------------------------------------------------------------

/// What a flight publishes: the rendered body, or an error whose
/// `bad` flag lets joiners reconstruct the right [`EngineError`]
/// class (and therefore the right HTTP status).
type FlightOutcome = Result<Arc<str>, (bool, String)>;

/// One in-flight evaluation other requests can latch onto. The leader
/// publishes into `slot` and notifies; joiners block on the condvar.
struct Flight {
    slot: Mutex<Option<FlightOutcome>>,
    done: Condvar,
}

/// Publishes a failure if the leader unwinds before publishing a
/// result — joiners must never hang on a panicked leader.
struct FlightGuard<'a> {
    key: &'a str,
    flight: &'a Arc<Flight>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        inflight()
            .lock()
            .expect("singleflight map poisoned")
            .remove(self.key);
        let mut slot = self.flight.slot.lock().expect("flight slot poisoned");
        if slot.is_none() {
            *slot = Some(Err((false, "simulation panicked".to_string())));
        }
        drop(slot);
        self.flight.done.notify_all();
    }
}

fn inflight() -> &'static Mutex<HashMap<String, Arc<Flight>>> {
    static MAP: OnceLock<Mutex<HashMap<String, Arc<Flight>>>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Bounded FIFO memo of rendered responses. Entries are immutable
/// (identical query ⇒ byte-identical body, the determinism the test
/// suite pins), so eviction order does not affect correctness.
struct Memo {
    map: HashMap<String, Arc<str>>,
    order: VecDeque<String>,
}

fn memo() -> &'static Mutex<Memo> {
    static MEMO: OnceLock<Mutex<Memo>> = OnceLock::new();
    MEMO.get_or_init(|| {
        Mutex::new(Memo {
            map: HashMap::new(),
            order: VecDeque::new(),
        })
    })
}

/// Every field of the query, canonically rendered. Floats go through
/// `to_bits` so `0.5` and `0.5000…01` never alias.
fn coalesce_key(q: &SimQuery) -> String {
    format!(
        "{}|{}|{:x}|{}|{}|{}|{}|{}|{}|{}|{:x}",
        q.app,
        if q.topo == Topology::small() {
            "small"
        } else {
            "default"
        },
        q.size.to_bits(),
        q.vdd_mv
            .map_or_else(|| "ntv".to_string(), |v| format!("{:x}", v.to_bits())),
        q.pop_seed,
        q.seed,
        q.chips,
        q.chip,
        q.dcs,
        q.iterations,
        q.drop_target.to_bits()
    )
}

/// Marks the current request as answered by coalescing: the metric the
/// dashboards watch, the access-log `cache` field, and a trace span
/// (so a coalesced request's flight track shows where its latency
/// went — waiting on the leader, not simulating). Also used by the
/// server's route-layer raw-body replay, which fronts this memo.
pub(crate) fn note_coalesced(us: u64) {
    counter!("served.coalesced").inc();
    crate::obs::note_cache(true);
    accordion_telemetry::event::advance_sim(us);
    flight!(SimEvent::ServeStage {
        stage: "serve.coalesced",
        us,
    });
}

/// [`simulate`], rendered — with cross-connection coalescing.
///
/// Identical queries collapse: concurrent duplicates join the one
/// in-flight evaluation (singleflight) and recent results are replayed
/// from a bounded memo, so a thundering herd of the same operating
/// point costs one simulation however many connections ask. Joined and
/// memoized answers increment `served_coalesced_total` and log
/// `cache:"hit"`. Determinism makes this safe: the engine is a pure
/// function of the query, so a replayed body is byte-identical to a
/// fresh one (pinned by `tests/coalesce.rs`).
///
/// # Errors
///
/// As [`simulate`]. Errors are published to concurrent joiners (they
/// fail with the leader) but never memoized — the next request retries.
pub fn simulate_rendered(q: &SimQuery) -> Result<Arc<str>, EngineError> {
    coalesced_rendered(coalesce_key(q), || simulate(q).map(|doc| doc.render()))
}

/// [`sweep`], rendered — with the same cross-connection coalescing as
/// [`simulate_rendered`]. The key is the canonical rendering of the
/// parsed request document: two requests that parse to the same JSON
/// describe the same grid, and the sweep is a pure function of it
/// (worker count never changes the bytes — the determinism contract).
///
/// # Errors
///
/// As [`sweep`]; errors propagate to joiners but are never memoized.
pub fn sweep_rendered(doc: &Json, workers: usize) -> Result<Arc<str>, EngineError> {
    coalesced_rendered(format!("sweep|{}", doc.render()), || {
        sweep(doc, workers).map(|d| d.render())
    })
}

/// The singleflight + memo core shared by the rendered entry points:
/// memo hit → replay; join an in-flight leader if one exists; otherwise
/// lead, evaluate, publish, memoize.
fn coalesced_rendered(
    key: String,
    eval: impl FnOnce() -> Result<String, EngineError>,
) -> Result<Arc<str>, EngineError> {
    let started = Instant::now();
    if let Some(hit) = memo().lock().expect("memo poisoned").map.get(&key).cloned() {
        note_coalesced(started.elapsed().as_micros() as u64);
        return Ok(hit);
    }
    let (flight, leader) = {
        let mut map = inflight().lock().expect("singleflight map poisoned");
        match map.get(&key) {
            Some(f) => (f.clone(), false),
            None => {
                let f = Arc::new(Flight {
                    slot: Mutex::new(None),
                    done: Condvar::new(),
                });
                map.insert(key.clone(), f.clone());
                (f, true)
            }
        }
    };
    if !leader {
        // Join the in-flight evaluation.
        let mut slot = flight.slot.lock().expect("flight slot poisoned");
        while slot.is_none() {
            slot = flight.done.wait(slot).expect("flight slot poisoned");
        }
        let result = slot.clone().expect("loop exits only when published");
        drop(slot);
        return match result {
            Ok(body) => {
                note_coalesced(started.elapsed().as_micros() as u64);
                Ok(body)
            }
            Err((true, msg)) => Err(EngineError::Bad(msg)),
            Err((false, msg)) => Err(EngineError::Internal(msg)),
        };
    }
    // Leader: evaluate, publish, memoize. The guard keeps joiners from
    // hanging if `simulate` panics (the server answers the leader 500).
    let mut guard = FlightGuard {
        key: &key,
        flight: &flight,
        armed: true,
    };
    let outcome = eval();
    let (published, returned) = match outcome {
        Ok(rendered) => {
            let body: Arc<str> = Arc::from(rendered);
            let mut m = memo().lock().expect("memo poisoned");
            if !m.map.contains_key(&key) {
                if m.order.len() >= MEMO_CAPACITY {
                    if let Some(old) = m.order.pop_front() {
                        m.map.remove(&old);
                    }
                }
                m.map.insert(key.clone(), body.clone());
                m.order.push_back(key.clone());
            }
            drop(m);
            (Ok(body.clone()), Ok(body))
        }
        Err(EngineError::Bad(msg)) => (Err((true, msg.clone())), Err(EngineError::Bad(msg))),
        Err(EngineError::Internal(msg)) => {
            (Err((false, msg.clone())), Err(EngineError::Internal(msg)))
        }
    };
    inflight()
        .lock()
        .expect("singleflight map poisoned")
        .remove(&key);
    *flight.slot.lock().expect("flight slot poisoned") = Some(published);
    flight.done.notify_all();
    guard.armed = false;
    returned
}

/// Whole-chip power with every core active at `f_ghz` and `vdd_v`
/// (mirrors `Chip::cluster_power_w`, generalized to a supply override).
fn chip_power_at(chip: &Chip, vdd_v: f64, f_ghz: f64) -> f64 {
    let core_model = chip.power_model().core_model();
    let variation = &chip.sample().variation;
    let tech = chip.freq_model().technology();
    let mut total = 0.0;
    for c in 0..chip.topology().num_clusters() {
        for core in chip.topology().cores_of(ClusterId(c)) {
            let dv = variation.core_vth_delta_v[core.0];
            let lm = variation.core_leff_mult[core.0];
            total += core_model.core_power(vdd_v, f_ghz, dv, lm).total_w();
        }
        total += chip
            .power_model()
            .cluster_uncore_w(vdd_v, f_ghz / tech.f_nom_ghz);
    }
    total
}

/// Parses and runs a `/v1/sweep` body: the same fields as
/// `/v1/simulate` except `vdd_mv` and `size` may be arrays; the cross
/// product becomes the grid, executed as one ordered parallel map over
/// `workers` pool threads.
///
/// # Errors
///
/// [`EngineError::Bad`] on malformed input or an oversized grid;
/// [`EngineError::Internal`] on model failures in any grid point.
pub fn sweep(doc: &Json, workers: usize) -> Result<Json, EngineError> {
    let _span = span!("served.engine.sweep");
    let vdds: Vec<Option<f64>> = match doc.get("vdd_mv") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| v.as_f64().ok_or("vdd_mv entries must be numbers"))
            .map(|r| r.map(Some))
            .collect::<Result<_, _>>()
            .map_err(|e| EngineError::Bad(e.into()))?,
        _ => vec![None],
    };
    let sizes: Vec<f64> = match doc.get("size") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| v.as_f64().ok_or("size entries must be numbers"))
            .collect::<Result<_, _>>()
            .map_err(|e| EngineError::Bad(e.into()))?,
        _ => vec![1.0],
    };
    if vdds.is_empty() || sizes.is_empty() {
        return Err(EngineError::Bad(
            "vdd_mv/size arrays must be non-empty".into(),
        ));
    }
    if vdds.len() * sizes.len() > MAX_GRID {
        return Err(EngineError::Bad(format!(
            "grid of {} points exceeds the {MAX_GRID}-point cap",
            vdds.len() * sizes.len()
        )));
    }

    // Validate once with scalar placeholders, then stamp out the grid.
    let mut scalar = doc.clone();
    set_field(&mut scalar, "vdd_mv", vdds[0].map_or(Json::Null, Json::Num));
    set_field(&mut scalar, "size", Json::Num(sizes[0]));
    let base = SimQuery::from_json(&scalar).map_err(EngineError::Bad)?;
    for &mv in vdds.iter().flatten() {
        if !(300.0..=1200.0).contains(&mv) {
            return Err(EngineError::Bad(format!("vdd_mv {mv} outside [300, 1200]")));
        }
    }
    for &s in &sizes {
        if !(0.01..=100.0).contains(&s) {
            return Err(EngineError::Bad(format!("size {s} outside [0.01, 100]")));
        }
    }

    // Warm the shared state sequentially (population + quality fronts)
    // so the fan-out below is pure per-point work.
    let _ = quality_for(&base.app);
    let cache_started = Instant::now();
    let (pop, cache_hit) =
        popcache::population_with_status(base.topo, base.pop_seed, base.chips)
            .map_err(|e| EngineError::Internal(format!("variation sampler: {e:?}")))?;
    crate::obs::note_cache(cache_hit);
    let cache_us = cache_started.elapsed().as_micros() as u64;
    accordion_telemetry::event::advance_sim(cache_us);
    flight!(SimEvent::ServeStage {
        stage: "serve.cache",
        us: cache_us,
    });
    let chip = &pop[base.chip];

    // Incremental sweep: one per-supply timing context per distinct
    // `Vdd` (grid rows), derived once here and shared by every size
    // cell in the row. A G-cell grid does O(rows) timing setup, not G.
    let ctxs: Vec<OperatingTimings> = vdds
        .iter()
        .map(|&vdd| {
            let vdd_v = vdd.map_or(chip.vdd_ntv_v(), |mv| mv / 1000.0);
            OperatingTimings::at(chip, vdd_v)
        })
        .collect();

    let mut grid: Vec<SimQuery> = Vec::with_capacity(vdds.len() * sizes.len());
    for &vdd in &vdds {
        for &size in &sizes {
            grid.push(SimQuery {
                vdd_mv: vdd,
                size,
                ..base.clone()
            });
        }
    }
    counter!("served.engine.sweep_points").add(grid.len() as u64);
    // Fan out over the pool. Each point enters its own flight track
    // named by the owning request's pool task tag, so a Chrome trace
    // shows per-request span trees (`req00000012/point7`) even though
    // the points execute on anonymous work-stealing workers. Grid
    // order is vdd-major, so point `i` reads row `i / sizes.len()`'s
    // hoisted context.
    let fanout_started = Instant::now();
    let points = accordion_pool::par_map_indexed_with(workers, grid.len(), |i| {
        let tag = accordion_pool::task_tag();
        let _t = if tag != 0 {
            flight_track!("req{:08}/point{}", tag, i)
        } else {
            flight_track!("sweep/point{}", i)
        };
        simulate_at(&grid[i], chip, &ctxs[i / sizes.len()])
    });
    let fanout_us = fanout_started.elapsed().as_micros() as u64;
    accordion_telemetry::event::advance_sim(fanout_us);
    flight!(SimEvent::ServeStage {
        stage: "serve.fanout",
        us: fanout_us,
    });
    let mut rendered = Vec::with_capacity(points.len());
    for p in points {
        rendered.push(p?);
    }
    Ok(Json::obj(vec![
        ("count", Json::Num(rendered.len() as f64)),
        ("grid", Json::Arr(rendered)),
    ]))
}

fn set_field(doc: &mut Json, key: &str, value: Json) {
    if let Json::Obj(pairs) = doc {
        if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            pairs.push((key.to_string(), value));
        }
    }
}

// ---------------------------------------------------------------------------
// `/v1/optimize`: the operating-point optimizer behind the service.
// ---------------------------------------------------------------------------

/// Upper bound on the optimizer's per-generation population.
const MAX_OPT_POPULATION: usize = 128;
/// Upper bound on breeding generations per request.
const MAX_OPT_GENERATIONS: usize = 64;

fn bool_field(doc: &Json, key: &str, default: bool) -> Result<bool, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("{key} must be a boolean")),
    }
}

/// Parses and validates a `/v1/optimize` body into an
/// [`accordion_opt::OptimizeRequest`]. Field vocabulary and defaults
/// match `repro optimize`; bounds keep one request's work finite.
///
/// # Errors
///
/// A human-readable message (the `400` body) when the JSON is
/// malformed, a field has the wrong type, or a value is out of range.
pub fn optimize_request_from_json(doc: &Json) -> Result<accordion_opt::OptimizeRequest, String> {
    use accordion_opt::{Constraints, KnobSpace, OptConfig};
    let app = doc
        .get("app")
        .and_then(Json::as_str)
        .ok_or("missing required string field \"app\"")?
        .to_string();
    if !all_apps().iter().any(|a| a.name() == app) {
        let known: Vec<String> = all_apps().iter().map(|a| a.name().to_string()).collect();
        return Err(format!("unknown app {app:?}; known: {}", known.join(", ")));
    }
    let topo = match doc.get("topo").and_then(Json::as_str).unwrap_or("default") {
        "default" => Topology::paper_default(),
        "small" => Topology::small(),
        other => return Err(format!("unknown topo {other:?}; use default or small")),
    };
    let pop_seed = int_field(doc, "pop_seed", 2014.0)? as u64;
    let chips = int_field(doc, "chips", 8.0)? as usize;
    if chips == 0 || chips > MAX_CHIPS {
        return Err(format!("chips {chips} outside [1, {MAX_CHIPS}]"));
    }
    let chip = int_field(doc, "chip", 0.0)? as usize;
    if chip >= chips {
        return Err(format!("chip index {chip} outside population of {chips}"));
    }
    let seed = int_field(doc, "seed", 0.0)? as u64;
    let population = int_field(doc, "population", 24.0)? as usize;
    if !(4..=MAX_OPT_POPULATION).contains(&population) {
        return Err(format!(
            "population {population} outside [4, {MAX_OPT_POPULATION}]"
        ));
    }
    let generations = int_field(doc, "generations", 8.0)? as usize;
    if generations == 0 || generations > MAX_OPT_GENERATIONS {
        return Err(format!(
            "generations {generations} outside [1, {MAX_OPT_GENERATIONS}]"
        ));
    }
    let scout_steps = int_field(doc, "scout_steps", 3.0)? as u32;
    if !(2..=6).contains(&scout_steps) {
        return Err(format!("scout_steps {scout_steps} outside [2, 6]"));
    }
    let quality_floor = match doc.get("quality_floor") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let q = v.as_f64().ok_or("quality_floor must be a number")?;
            if !(0.0..=1.0).contains(&q) {
                return Err(format!("quality_floor {q} outside [0, 1]"));
            }
            Some(q)
        }
    };
    let power_budget_w = match doc.get("power_budget_w") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let w = v.as_f64().ok_or("power_budget_w must be a number")?;
            if w <= 0.0 || !w.is_finite() {
                return Err(format!("power_budget_w {w} must be positive"));
            }
            Some(w)
        }
    };
    let time_budget_s = match doc.get("time_budget_s") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let t = v.as_f64().ok_or("time_budget_s must be a number")?;
            if t <= 0.0 || !t.is_finite() {
                return Err(format!("time_budget_s {t} must be positive"));
            }
            Some(t)
        }
    };
    let iso = bool_field(doc, "iso", false)?;
    let grid_check = match doc.get("grid_check") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let steps = v
                .as_f64()
                .filter(|s| s.fract() == 0.0 && (2.0..=6.0).contains(s))
                .ok_or("grid_check must be an integer in [2, 6]")?;
            Some(steps as u32)
        }
    };
    // The cluster-knob ceiling is clamped to the chip's actual cluster
    // count inside `optimize_report`; 64 just has to exceed it.
    Ok(accordion_opt::OptimizeRequest {
        app,
        topo,
        pop_seed,
        chips,
        chip,
        cfg: OptConfig {
            seed,
            population,
            generations,
            scout_steps,
            space: KnobSpace::full(64),
            constraints: Constraints {
                quality_floor,
                power_budget_w,
                time_budget_s,
            },
        },
        iso,
        grid_check,
    })
}

/// Parses and runs a `/v1/optimize` body: knob-space search via the
/// seeded NSGA-II loop in `accordion-opt`, sharing the process-wide
/// population/quality caches with the other routes. The report is a
/// pure function of the request document (see `accordion_opt::report`),
/// which is what makes the coalescing in [`optimize_rendered`] sound.
///
/// # Errors
///
/// [`EngineError::Bad`] on malformed input, [`EngineError::Internal`]
/// on model failures (e.g. the variation sampler).
pub fn optimize(doc: &Json, workers: usize) -> Result<Json, EngineError> {
    let _span = span!("served.engine.optimize");
    let req = optimize_request_from_json(doc).map_err(EngineError::Bad)?;
    counter!("served.engine.optimizations").inc();
    accordion_opt::optimize_report(&req, workers).map_err(|msg| {
        // Binding errors surfacing past our validation are model-side.
        if msg.starts_with("variation sampler") {
            EngineError::Internal(msg)
        } else {
            EngineError::Bad(msg)
        }
    })
}

/// [`optimize`], rendered — with the same cross-connection coalescing
/// as [`sweep_rendered`]: the key is the canonical rendering of the
/// parsed request document, and the optimizer's byte-determinism
/// contract (same request ⇒ same bytes at any worker count) makes
/// replaying a memoized body indistinguishable from re-searching.
///
/// # Errors
///
/// As [`optimize`]; errors propagate to joiners but are never memoized.
pub fn optimize_rendered(doc: &Json, workers: usize) -> Result<Arc<str>, EngineError> {
    coalesced_rendered(format!("optimize|{}", doc.render()), || {
        optimize(doc, workers).map(|d| d.render())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_telemetry::json;

    fn query(body: &str) -> SimQuery {
        SimQuery::from_json(&json::parse(body).unwrap()).unwrap()
    }

    #[test]
    fn defaults_fill_in() {
        let q = query(r#"{"app": "hotspot"}"#);
        assert_eq!(q.chips, 8);
        assert_eq!(q.chip, 0);
        assert_eq!(q.topo, Topology::paper_default());
        assert_eq!(q.vdd_mv, None);
        assert_eq!(q.drop_target, 0.25);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        for body in [
            r#"{}"#,
            r#"{"app": "nope"}"#,
            r#"{"app": "hotspot", "chips": 0}"#,
            r#"{"app": "hotspot", "chip": 8}"#,
            r#"{"app": "hotspot", "vdd_mv": 90}"#,
            r#"{"app": "hotspot", "drop_target": 1.5}"#,
            r#"{"app": "hotspot", "size": "big"}"#,
            r#"{"app": "hotspot", "topo": "mega"}"#,
        ] {
            let doc = json::parse(body).unwrap();
            assert!(SimQuery::from_json(&doc).is_err(), "{body}");
        }
    }

    #[test]
    fn simulate_is_deterministic_and_sane() {
        let mut q = query(r#"{"app": "hotspot", "topo": "small", "chips": 2}"#);
        q.pop_seed = 9101;
        let a = simulate(&q).unwrap().render();
        let b = simulate(&q).unwrap().render();
        assert_eq!(a, b);
        let doc = json::parse(&a).unwrap();
        let f_safe = doc
            .get("frequency")
            .and_then(|f| f.get("f_safe_ghz"))
            .and_then(Json::as_f64)
            .unwrap();
        let f_run = doc
            .get("frequency")
            .and_then(|f| f.get("f_run_ghz"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(f_safe > 0.1 && f_safe < 1.0, "f_safe {f_safe}");
        assert!(f_run > f_safe, "speculation must buy frequency");
        let power = doc
            .get("energy")
            .and_then(|e| e.get("power_w"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(power > 0.0 && power < 200.0, "power {power}");
    }

    #[test]
    fn vdd_override_changes_frequencies() {
        let mut q = query(r#"{"app": "hotspot", "topo": "small", "chips": 2}"#);
        q.pop_seed = 9102;
        let ntv = simulate(&q).unwrap();
        q.vdd_mv = Some(700.0);
        let boosted = simulate(&q).unwrap();
        let f = |doc: &Json| {
            doc.get("frequency")
                .and_then(|f| f.get("f_safe_ghz"))
                .and_then(Json::as_f64)
                .unwrap()
        };
        assert!(f(&boosted) > f(&ntv), "higher Vdd must clock faster");
    }

    #[test]
    fn optimize_request_validation() {
        let ok = json::parse(r#"{"app": "hotspot", "topo": "small", "chips": 2}"#).unwrap();
        let req = optimize_request_from_json(&ok).unwrap();
        assert_eq!(req.cfg.population, 24);
        assert_eq!(req.cfg.generations, 8);
        assert!(!req.iso);
        assert!(req.grid_check.is_none());
        for body in [
            r#"{}"#,
            r#"{"app": "nope"}"#,
            r#"{"app": "hotspot", "population": 2}"#,
            r#"{"app": "hotspot", "generations": 0}"#,
            r#"{"app": "hotspot", "generations": 65}"#,
            r#"{"app": "hotspot", "scout_steps": 9}"#,
            r#"{"app": "hotspot", "quality_floor": 1.5}"#,
            r#"{"app": "hotspot", "power_budget_w": -1}"#,
            r#"{"app": "hotspot", "iso": "yes"}"#,
            r#"{"app": "hotspot", "grid_check": 10}"#,
        ] {
            let doc = json::parse(body).unwrap();
            assert!(optimize_request_from_json(&doc).is_err(), "{body}");
        }
    }

    #[test]
    fn optimize_is_deterministic_and_coalesces() {
        let doc = json::parse(
            r#"{"app": "hotspot", "topo": "small", "chips": 2, "pop_seed": 9104,
                "seed": 5, "population": 8, "generations": 2, "scout_steps": 2,
                "quality_floor": 0.9, "grid_check": 2}"#,
        )
        .unwrap();
        let a = optimize(&doc, 2).unwrap().render();
        let b = optimize(&doc, 1).unwrap().render();
        assert_eq!(a, b, "worker count must never change the bytes");
        let parsed = json::parse(&a).unwrap();
        assert_eq!(
            parsed.get("grid_check").and_then(|g| g.get("dominated")),
            Some(&Json::Bool(true))
        );
        // The rendered path replays the memo for an identical document.
        let first = optimize_rendered(&doc, 2).unwrap();
        let second = optimize_rendered(&doc, 2).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "second call must be a memo hit"
        );
        assert_eq!(first.as_ref(), a);
    }

    #[test]
    fn sweep_matches_pointwise_simulate() {
        let doc = json::parse(
            r#"{"app": "hotspot", "topo": "small", "chips": 2, "pop_seed": 9103,
                "size": [0.5, 1.0], "vdd_mv": [550, 600]}"#,
        )
        .unwrap();
        let grid = sweep(&doc, 2).unwrap();
        assert_eq!(grid.get("count").and_then(Json::as_f64), Some(4.0));
        // Grid order is the vdd-major cross product; each entry equals
        // the scalar endpoint's answer for the same parameters.
        let mut q = query(r#"{"app": "hotspot", "topo": "small", "chips": 2, "pop_seed": 9103}"#);
        q.vdd_mv = Some(550.0);
        q.size = 0.5;
        let lone = simulate(&q).unwrap().render();
        let first = match grid.get("grid") {
            Some(Json::Arr(items)) => items[0].render(),
            _ => panic!("grid missing"),
        };
        assert_eq!(lone, first);
    }
}
