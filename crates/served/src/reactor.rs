//! A minimal readiness reactor: `poll(2)` plus a self-pipe waker.
//!
//! The serving front end multiplexes every connection on one event
//! thread; this module is the thin, zero-dependency layer between that
//! thread and the kernel. It wraps exactly two primitives:
//!
//! * [`PollSet`] — a reusable `pollfd` array handed to `poll(2)`
//!   (declared directly via `extern "C"`; `std` already links libc on
//!   every Unix target, so no external crate is needed);
//! * [`Waker`] — a `socketpair(2)` self-pipe (via
//!   [`UnixStream::pair`]) that lets worker threads interrupt a
//!   blocked `poll` when a completed response is ready to write.
//!
//! `poll` rather than `epoll` is deliberate: the set is rebuilt from
//! the connection table every iteration, which makes readiness state
//! impossible to leak on close (the classic epoll stale-registration
//! bug) and costs O(connections) per tick — irrelevant at the hundreds
//! of sockets this service is sized for, and far below the simulation
//! cost it fronts.

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// `struct pollfd` from `<poll.h>`, laid out for the C ABI.
#[repr(C)]
#[derive(Clone, Copy)]
struct RawPollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

extern "C" {
    fn poll(
        fds: *mut RawPollFd,
        nfds: std::ffi::c_ulong,
        timeout_ms: std::ffi::c_int,
    ) -> std::ffi::c_int;
}

/// What one registered descriptor reported after [`PollSet::wait`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Readiness {
    /// Data (or an accepted connection, or EOF) is readable.
    pub readable: bool,
    /// The socket can take more bytes without blocking.
    pub writable: bool,
    /// Error, hangup, or invalid descriptor — the owner should close.
    pub error: bool,
}

impl Readiness {
    /// Whether anything at all was reported.
    pub fn any(self) -> bool {
        self.readable || self.writable || self.error
    }
}

/// A reusable descriptor set for `poll(2)`.
///
/// The reactor clears and repopulates the set each loop iteration from
/// its live connection table, then calls [`wait`](Self::wait) once.
/// Registration order is the caller's index space: `push` returns the
/// slot to pass to [`readiness`](Self::readiness) afterwards.
pub struct PollSet {
    fds: Vec<RawPollFd>,
}

impl Default for PollSet {
    fn default() -> Self {
        Self::new()
    }
}

impl PollSet {
    /// An empty set.
    pub fn new() -> Self {
        Self { fds: Vec::new() }
    }

    /// Drops all registrations (the backing allocation is kept).
    pub fn clear(&mut self) {
        self.fds.clear();
    }

    /// Registers `fd` for the requested interests; returns its slot.
    pub fn push(&mut self, fd: RawFd, read: bool, write: bool) -> usize {
        let mut events = 0i16;
        if read {
            events |= POLLIN;
        }
        if write {
            events |= POLLOUT;
        }
        self.fds.push(RawPollFd {
            fd,
            events,
            revents: 0,
        });
        self.fds.len() - 1
    }

    /// Blocks until at least one descriptor is ready or `timeout`
    /// elapses; returns how many descriptors reported events (0 on
    /// timeout). `EINTR` is retried transparently.
    ///
    /// # Errors
    ///
    /// Propagates any `poll(2)` failure other than `EINTR`.
    pub fn wait(&mut self, timeout: Duration) -> io::Result<usize> {
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        loop {
            let rc = unsafe {
                poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as std::ffi::c_ulong,
                    ms,
                )
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// Readiness reported for the descriptor registered at `slot`.
    pub fn readiness(&self, slot: usize) -> Readiness {
        let revents = self.fds.get(slot).map_or(0, |f| f.revents);
        Readiness {
            readable: revents & POLLIN != 0,
            writable: revents & POLLOUT != 0,
            error: revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
        }
    }
}

/// A self-pipe that interrupts a blocked [`PollSet::wait`].
///
/// The read half lives on the reactor thread and is registered in the
/// poll set every iteration; any number of [`WakeHandle`] clones live
/// on worker threads and call [`WakeHandle::wake`] after posting a
/// completion. Both halves are non-blocking: a wake onto a full pipe
/// is silently dropped, which is correct — the pipe being full already
/// guarantees the reactor has a pending wake-up.
pub struct Waker {
    rx: UnixStream,
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Creates the socket pair.
    ///
    /// # Errors
    ///
    /// Propagates `socketpair(2)` / `fcntl(2)` failures.
    pub fn new() -> io::Result<Self> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Self {
            rx,
            tx: Arc::new(tx),
        })
    }

    /// The descriptor to register (read interest) in the poll set.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// A clonable handle for producer threads.
    pub fn handle(&self) -> WakeHandle {
        WakeHandle {
            tx: self.tx.clone(),
        }
    }

    /// Consumes every pending wake byte (level-triggered `poll` would
    /// otherwise report the pipe readable forever).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

/// Wakes the reactor; clonable and cheap. See [`Waker`].
#[derive(Clone)]
pub struct WakeHandle {
    tx: Arc<UnixStream>,
}

impl WakeHandle {
    /// Interrupts the reactor's current (or next) `poll` call.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn timeout_expires_with_no_events() {
        let waker = Waker::new().unwrap();
        let mut set = PollSet::new();
        set.push(waker.fd(), true, false);
        let t0 = Instant::now();
        let n = set.wait(Duration::from_millis(30)).unwrap();
        assert_eq!(n, 0);
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn wake_interrupts_poll_and_drain_resets() {
        let waker = Waker::new().unwrap();
        let handle = waker.handle();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            handle.wake();
        });
        let mut set = PollSet::new();
        let slot = set.push(waker.fd(), true, false);
        let n = set.wait(Duration::from_secs(5)).unwrap();
        assert_eq!(n, 1);
        assert!(set.readiness(slot).readable);
        t.join().unwrap();

        // After draining, the pipe is quiet again.
        waker.drain();
        set.clear();
        set.push(waker.fd(), true, false);
        assert_eq!(set.wait(Duration::from_millis(10)).unwrap(), 0);
    }

    #[test]
    fn socket_readability_is_reported() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        a.write_all(b"x").unwrap();
        let mut set = PollSet::new();
        let slot = set.push(b.as_raw_fd(), true, true);
        let n = set.wait(Duration::from_secs(1)).unwrap();
        assert!(n >= 1);
        let r = set.readiness(slot);
        assert!(r.readable && r.writable, "{r:?}");
    }

    #[test]
    fn wake_on_full_pipe_does_not_block() {
        let waker = Waker::new().unwrap();
        let handle = waker.handle();
        // Saturate the pipe; every wake must return promptly.
        for _ in 0..100_000 {
            handle.wake();
        }
        waker.drain();
        let mut set = PollSet::new();
        set.push(waker.fd(), true, false);
        assert_eq!(set.wait(Duration::from_millis(5)).unwrap(), 0);
    }
}
