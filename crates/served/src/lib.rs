//! `accordion-served` — a batched, cached HTTP simulation service.
//!
//! Running every question about the Accordion chip as a fresh `repro`
//! invocation re-pays the expensive setup each time: fabricating a
//! variation-mapped population (envelope Cholesky factorization plus
//! per-chip sampling) and measuring the application quality fronts
//! (real kernel executions). A long-lived service pays those once and
//! answers every subsequent operating-point query from warm caches —
//! the same amortization argument the paper makes for soft NTV chips
//! themselves: keep the expensive structure, vary the cheap knob.
//!
//! The server is zero-dependency (`std::net` plus the workspace's own
//! crates) and exposes:
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /v1/simulate` | one operating point: app, size, Vdd, seed → frequency, quality, protocol outcome, energy |
//! | `POST /v1/sweep` | a Vdd × size grid, executed as one ordered parallel map |
//! | `POST /v1/optimize` | operating-point search: iso-metric fronts + seeded NSGA-II over the knob space |
//! | `GET /v1/artifacts` | registered repro artifact ids |
//! | `GET /v1/artifacts/{name}` | generate one artifact (chunked transfer encoding) |
//! | `GET /healthz` | liveness plus cache occupancy |
//! | `GET /metrics` | text exposition of the telemetry registry |
//! | `POST /v1/shutdown` | cooperative shutdown; queued requests drain |
//!
//! The front end is a non-blocking **readiness loop** (`poll(2)`
//! behind [`reactor`]): one reactor thread multiplexes every
//! connection — HTTP/1.1 keep-alive, pipelining, incremental parsing —
//! while a fixed worker pool executes requests from a bounded queue.
//! Identical concurrent `/v1/simulate` queries **coalesce** onto one
//! evaluation ([`engine::simulate_rendered`]), surfaced as
//! `served_coalesced_total`.
//!
//! Robustness bounds: a fixed worker pool, a bounded request queue
//! (overflow → `503` + `Retry-After`, answered by the reactor without
//! waiting for a worker), per-request read/write deadlines with `408`
//! slow-client eviction, an idle keep-alive reaper, head (`431`) and
//! body (`413`) size caps, and panic isolation per request.
//! Determinism: identical requests produce byte-identical JSON
//! regardless of `--jobs`, because responses render through the
//! deterministic [`accordion_telemetry::json`] renderer and all
//! parallel fan-out uses the ordered pool primitives.
//!
//! # Example
//!
//! ```
//! use accordion_served::{start, ServeConfig};
//!
//! let handle = start(ServeConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     ..ServeConfig::default()
//! })?;
//! let addr = handle.addr();
//! assert_eq!(addr.ip().to_string(), "127.0.0.1");
//! handle.shutdown(); // drains, joins, flushes telemetry
//! # Ok::<(), std::io::Error>(())
//! ```
#![deny(missing_docs)]

pub mod engine;
pub mod http;
pub mod obs;
pub mod reactor;
pub mod server;

pub use engine::{
    optimize, optimize_rendered, simulate, simulate_rendered, sweep, EngineError, SimQuery,
};
pub use server::{start, ArtifactSource, ServeConfig, ServerHandle, ShutdownTrigger};
