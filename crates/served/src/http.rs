//! Minimal HTTP/1.1 framing: request parsing and response writing.
//!
//! Just enough of RFC 9112 for a localhost JSON service: one request
//! per connection (`Connection: close`), `Content-Length` bodies with
//! a hard size cap, and chunked transfer encoding for responses whose
//! length is unknown when the status line goes out (the artifact
//! endpoint). Parsing never panics on malformed input — every error
//! maps to a 4xx so a fuzzer can only ever collect error responses.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request line + headers, independent of the body cap.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the request target, without the query string.
    pub path: String,
    /// Query string key/value pairs, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be served; each variant maps to one status.
#[derive(Debug)]
pub enum RequestError {
    /// Malformed request line, header, or body framing → 400.
    Bad(String),
    /// Declared or actual body exceeds the configured cap → 413.
    TooLarge,
    /// The socket timed out before a full request arrived → 408.
    Timeout,
    /// The peer vanished mid-request; nothing can be written back.
    Disconnected,
}

/// Reads and parses one request from `stream`.
///
/// The caller is expected to have set the socket read timeout; a
/// timeout surfaces as [`RequestError::Timeout`] so the handler can
/// answer `408` while the connection is still writable.
///
/// # Errors
///
/// Returns a [`RequestError`] describing the 4xx to answer (or that
/// the peer is gone).
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, RequestError> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    // Request line.
    read_line_capped(&mut reader, &mut head)?;
    let line = head.trim_end();
    let mut parts = line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or_else(|| RequestError::Bad(format!("malformed request line {line:?}")))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Bad("missing request target".into()))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        other => return Err(RequestError::Bad(format!("bad HTTP version {other:?}"))),
    }
    let (path, query) = split_target(target)?;

    // Headers: we only act on Content-Length; everything else is
    // tolerated and ignored (unknown headers must not kill a request).
    let mut content_length = 0usize;
    let mut head_bytes = head.len();
    loop {
        let mut line = String::new();
        read_line_capped(&mut reader, &mut line)?;
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(RequestError::TooLarge);
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Bad(format!("malformed header {line:?}")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| RequestError::Bad(format!("bad Content-Length {value:?}")))?;
        }
    }
    if content_length > max_body {
        return Err(RequestError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(map_io)?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

fn read_line_capped(
    reader: &mut BufReader<&mut TcpStream>,
    out: &mut String,
) -> Result<(), RequestError> {
    // `read_line` on a malicious endless line would balloon; take() at
    // the head cap bounds it. A line cut by the cap fails the parse.
    let mut limited = reader.take(MAX_HEAD_BYTES as u64);
    let n = limited.read_line(out).map_err(map_io)?;
    if n == 0 {
        return Err(RequestError::Disconnected);
    }
    Ok(())
}

fn map_io(e: std::io::Error) -> RequestError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RequestError::Timeout,
        std::io::ErrorKind::InvalidData => RequestError::Bad("non-UTF-8 request head".into()),
        _ => RequestError::Disconnected,
    }
}

fn split_target(target: &str) -> Result<(String, Vec<(String, String)>), RequestError> {
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    if !path.starts_with('/') {
        return Err(RequestError::Bad(format!("bad request target {target:?}")));
    }
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    Ok((path.to_string(), query))
}

/// A response ready to be written: status, content type, extra
/// headers, body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value) — e.g. `Retry-After` on a 503.
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A JSON error envelope: `{"error": msg}`.
    pub fn error(status: u16, msg: &str) -> Self {
        let body = accordion_telemetry::json::Json::obj(vec![(
            "error",
            accordion_telemetry::json::Json::str(msg),
        )]);
        Self::json(status, body.render())
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }

    /// Writes the response with `Content-Length` framing. Write errors
    /// are swallowed — the peer hanging up mid-response must never
    /// bring the handler down.
    pub fn write_to(&self, stream: &mut TcpStream) {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let _ = stream.write_all(head.as_bytes());
        let _ = stream.write_all(&self.body);
        let _ = stream.flush();
    }
}

/// Writes a `200` header block with `Transfer-Encoding: chunked` and
/// returns a writer for the body chunks. Used by the artifact endpoint
/// so the client sees headers (and starts reading) before the artifact
/// has finished generating.
pub fn begin_chunked<'a>(
    stream: &'a mut TcpStream,
    content_type: &str,
) -> std::io::Result<ChunkedWriter<'a>> {
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()?;
    Ok(ChunkedWriter { stream })
}

/// Writer half of a chunked response; see [`begin_chunked`].
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl ChunkedWriter<'_> {
    /// Writes one chunk (empty input writes nothing — an empty chunk
    /// would terminate the stream).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Writes the terminal chunk, ending the response.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// Canonical reason phrase for the status codes this service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_splitting() {
        let (path, query) = split_target("/v1/artifacts/fig5a?chips=3&x=1").unwrap();
        assert_eq!(path, "/v1/artifacts/fig5a");
        assert_eq!(
            query,
            vec![
                ("chips".to_string(), "3".to_string()),
                ("x".to_string(), "1".to_string())
            ]
        );
        assert!(split_target("no-slash").is_err());
    }

    #[test]
    fn reason_phrases_cover_emitted_statuses() {
        for s in [200, 400, 404, 405, 408, 413, 500, 503] {
            assert_ne!(status_reason(s), "Unknown", "status {s}");
        }
    }
}
