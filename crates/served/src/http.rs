//! HTTP/1.1 framing: a resumable request parser and response encoding.
//!
//! Just enough of RFC 9112 for a localhost JSON service, rebuilt for
//! the non-blocking front end: the parser is **push-based and
//! resumable** — the reactor feeds it whatever bytes `read(2)` handed
//! over, and [`RequestParser::next_request`] yields a request exactly
//! when one is complete, however the bytes were split across reads.
//! One buffer can hold several pipelined requests; each call yields
//! the next. Parsing never panics on malformed input — every error
//! maps to a 4xx (`400` bad framing, `413` oversized body, `431`
//! oversized head) so a fuzzer can only ever collect error responses.
//!
//! Responses are encoded to owned byte buffers ([`Response::encode`],
//! [`ChunkedEncoder`]) rather than written to a socket: the reactor
//! owns all socket writes and may need to park a partially-written
//! response until the peer drains it.

/// Hard cap on the request line + headers, independent of the body cap.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the request target, without the query string.
    pub path: String,
    /// Query string key/value pairs, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; each variant maps to one status.
#[derive(Debug)]
pub enum RequestError {
    /// Malformed request line, header, or body framing → 400.
    Bad(String),
    /// Declared body exceeds the configured cap → 413.
    TooLarge,
    /// Request line + headers exceed [`MAX_HEAD_BYTES`] → 431.
    HeadersTooLarge,
}

impl RequestError {
    /// The HTTP status this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            Self::Bad(_) => 400,
            Self::TooLarge => 413,
            Self::HeadersTooLarge => 431,
        }
    }

    /// The error-envelope message for the response body.
    pub fn message(&self) -> String {
        match self {
            Self::Bad(msg) => msg.clone(),
            Self::TooLarge => "request exceeds size limits".into(),
            Self::HeadersTooLarge => "request headers exceed size limits".into(),
        }
    }
}

/// One complete request plus its connection disposition.
#[derive(Debug)]
pub struct Parsed {
    /// The request itself.
    pub request: Request,
    /// Whether the connection must close after this response:
    /// `Connection: close`, or an HTTP/1.0 peer that did not opt into
    /// keep-alive.
    pub close: bool,
}

/// Head fields carried from the head phase into the body phase.
#[derive(Debug)]
struct Head {
    method: String,
    path: String,
    query: Vec<(String, String)>,
    close: bool,
    content_length: usize,
}

enum State {
    /// Accumulating request line + headers.
    Head,
    /// Head parsed; waiting for `content_length` body bytes.
    Body(Head),
}

/// A resumable, push-based HTTP/1.1 request parser.
///
/// Feed raw socket bytes with [`push`](Self::push); pull complete
/// requests with [`next_request`](Self::next_request). The parser
/// carries its state across calls, so a request split at any byte
/// boundary — even mid-header-name or mid-body — parses identically
/// to one arriving whole (pinned by `tests/http_props.rs`).
///
/// After an error the connection is unusable (framing is lost); the
/// server answers the 4xx and closes. The parser makes no attempt to
/// resynchronize.
pub struct RequestParser {
    buf: Vec<u8>,
    state: State,
    max_body: usize,
}

impl RequestParser {
    /// A fresh parser with the given body cap.
    pub fn new(max_body: usize) -> Self {
        Self {
            buf: Vec::new(),
            state: State::Head,
            max_body,
        }
    }

    /// Appends raw bytes from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether the peer is mid-request: a partial head or an awaited
    /// body. Distinguishes a *slow* client (evict with `408` after the
    /// request deadline) from an *idle* keep-alive connection between
    /// requests (close silently after the idle timeout).
    pub fn mid_request(&self) -> bool {
        match self.state {
            State::Head => !self.buf.is_empty(),
            State::Body(_) => true,
        }
    }

    /// Yields the next complete request, if the buffer holds one.
    ///
    /// `Ok(None)` means "need more bytes" — never an error, never a
    /// hang. Call again after the next [`push`](Self::push).
    ///
    /// # Errors
    ///
    /// A [`RequestError`] naming the 4xx to answer before closing.
    pub fn next_request(&mut self) -> Result<Option<Parsed>, RequestError> {
        if matches!(self.state, State::Head) {
            // Tolerate blank line(s) before the request line (RFC 9112
            // §2.2 — robustness for clients that end the previous body
            // with a stray CRLF).
            let lead = self
                .buf
                .iter()
                .take_while(|&&b| b == b'\r' || b == b'\n')
                .count();
            if lead > 0 {
                self.buf.drain(..lead);
            }
            let Some((head_end, body_start)) = find_head_end(&self.buf) else {
                if self.buf.len() > MAX_HEAD_BYTES {
                    return Err(RequestError::HeadersTooLarge);
                }
                return Ok(None);
            };
            if body_start > MAX_HEAD_BYTES {
                return Err(RequestError::HeadersTooLarge);
            }
            let head = parse_head(&self.buf[..head_end])?;
            if head.content_length > self.max_body {
                return Err(RequestError::TooLarge);
            }
            self.buf.drain(..body_start);
            self.state = State::Body(head);
        }
        if let State::Body(head) = &self.state {
            if self.buf.len() < head.content_length {
                return Ok(None);
            }
            let State::Body(head) = std::mem::replace(&mut self.state, State::Head) else {
                unreachable!("state checked above");
            };
            let body: Vec<u8> = self.buf.drain(..head.content_length).collect();
            return Ok(Some(Parsed {
                request: Request {
                    method: head.method,
                    path: head.path,
                    query: head.query,
                    body,
                },
                close: head.close,
            }));
        }
        Ok(None)
    }
}

/// Locates the head terminator: returns `(head_len, body_start)` for
/// the first `\r\n\r\n` (or the lenient `\n\n` / `\n\r\n`) in `buf`.
/// `head_len` excludes the blank line.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match (buf.get(i + 1), buf.get(i + 2)) {
                (Some(b'\n'), _) => return Some((i + 1, i + 2)),
                (Some(b'\r'), Some(b'\n')) => return Some((i + 1, i + 3)),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Parses the request line + header block (terminator excluded).
fn parse_head(raw: &[u8]) -> Result<Head, RequestError> {
    let text =
        std::str::from_utf8(raw).map_err(|_| RequestError::Bad("non-UTF-8 request head".into()))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

    let line = lines.next().unwrap_or("");
    let mut parts = line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or_else(|| RequestError::Bad(format!("malformed request line {line:?}")))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Bad("missing request target".into()))?;
    let version = match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => v,
        other => return Err(RequestError::Bad(format!("bad HTTP version {other:?}"))),
    };
    let (path, query) = split_target(target)?;

    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 must opt in.
    let mut close = version == "HTTP/1.0";
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Bad(format!("malformed header {line:?}")));
        };
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| RequestError::Bad(format!("bad Content-Length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // Request bodies are Content-Length-only; an encoded body
            // we would misframe must be rejected, not ignored.
            return Err(RequestError::Bad(
                "Transfer-Encoding request bodies are not supported".into(),
            ));
        } else if name.eq_ignore_ascii_case("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    close = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    close = false;
                }
            }
        }
    }
    Ok(Head {
        method,
        path,
        query,
        close,
        content_length,
    })
}

/// Splits a request target into path and parsed query pairs.
fn split_target(target: &str) -> Result<(String, Vec<(String, String)>), RequestError> {
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    if !path.starts_with('/') {
        return Err(RequestError::Bad(format!("bad request target {target:?}")));
    }
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    Ok((path.to_string(), query))
}

/// A response ready to be encoded: status, content type, extra
/// headers, body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value) — e.g. `Retry-After` on a 503.
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A JSON error envelope: `{"error": msg}`.
    pub fn error(status: u16, msg: &str) -> Self {
        let body = accordion_telemetry::json::Json::obj(vec![(
            "error",
            accordion_telemetry::json::Json::str(msg),
        )]);
        Self::json(status, body.render())
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }

    /// Encodes the full wire form with `Content-Length` framing. The
    /// `Connection` header advertises the connection's actual fate so
    /// clients can pool sockets correctly.
    pub fn encode(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// Encodes a `200` response with `Transfer-Encoding: chunked` framing.
/// Used by the artifact endpoint, whose body length is unknown until
/// generation finishes; chunked framing keeps the connection reusable
/// under keep-alive.
pub struct ChunkedEncoder {
    out: Vec<u8>,
}

impl ChunkedEncoder {
    /// Starts a chunked `200` with the given content type.
    pub fn new(content_type: &str, keep_alive: bool) -> Self {
        let head = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
            if keep_alive { "keep-alive" } else { "close" },
        );
        Self {
            out: head.into_bytes(),
        }
    }

    /// Appends one chunk (empty input appends nothing — an empty chunk
    /// would terminate the stream).
    pub fn chunk(&mut self, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        self.out
            .extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
        self.out.extend_from_slice(data);
        self.out.extend_from_slice(b"\r\n");
    }

    /// Appends the terminal chunk and returns the full wire form.
    pub fn finish(mut self) -> Vec<u8> {
        self.out.extend_from_slice(b"0\r\n\r\n");
        self.out
    }
}

/// Canonical reason phrase for the status codes this service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(raw: &[u8]) -> Result<Option<Parsed>, RequestError> {
        let mut p = RequestParser::new(1 << 20);
        p.push(raw);
        p.next_request()
    }

    #[test]
    fn target_splitting() {
        let (path, query) = split_target("/v1/artifacts/fig5a?chips=3&x=1").unwrap();
        assert_eq!(path, "/v1/artifacts/fig5a");
        assert_eq!(
            query,
            vec![
                ("chips".to_string(), "3".to_string()),
                ("x".to_string(), "1".to_string())
            ]
        );
        assert!(split_target("no-slash").is_err());
    }

    #[test]
    fn reason_phrases_cover_emitted_statuses() {
        for s in [200, 400, 404, 405, 408, 413, 431, 500, 503] {
            assert_ne!(status_reason(s), "Unknown", "status {s}");
        }
    }

    #[test]
    fn whole_request_parses() {
        let parsed = parse_one(b"POST /v1/simulate HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}")
            .unwrap()
            .expect("complete request");
        assert_eq!(parsed.request.method, "POST");
        assert_eq!(parsed.request.path, "/v1/simulate");
        assert_eq!(parsed.request.body, b"{}");
        assert!(!parsed.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn byte_by_byte_arrival_parses_identically() {
        let raw = b"POST /v1/sim?x=1 HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nhello";
        let mut p = RequestParser::new(64);
        for (i, b) in raw.iter().enumerate() {
            p.push(std::slice::from_ref(b));
            let r = p.next_request().unwrap();
            if i + 1 < raw.len() {
                assert!(r.is_none(), "complete too early at byte {i}");
                assert!(p.mid_request());
            } else {
                let parsed = r.expect("complete at last byte");
                assert_eq!(parsed.request.body, b"hello");
                assert_eq!(parsed.request.query_value("x"), Some("1"));
                assert!(!p.mid_request());
            }
        }
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let mut p = RequestParser::new(64);
        p.push(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n");
        let a = p.next_request().unwrap().expect("first");
        assert_eq!(a.request.path, "/a");
        assert!(!a.close);
        let b = p.next_request().unwrap().expect("second");
        assert_eq!(b.request.path, "/b");
        assert!(b.close, "Connection: close must be honored");
        assert!(p.next_request().unwrap().is_none());
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn http10_defaults_to_close_and_can_opt_in() {
        let a = parse_one(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(a.close);
        let b = parse_one(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!b.close);
    }

    #[test]
    fn framing_errors_map_to_their_statuses() {
        for (raw, status) in [
            (&b"garbage\r\n\r\n"[..], 400),
            (b"GET\r\n\r\n", 400),
            (b"get / HTTP/1.1\r\n\r\n", 400),
            (b"GET / SPDY/9\r\n\r\n", 400),
            (b"GET nopath HTTP/1.1\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nbroken header line\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 400),
            (b"\xff\xfe / HTTP/1.1\r\n\r\n", 400),
        ] {
            let err = parse_one(raw).err().unwrap_or_else(|| {
                panic!("expected error for {raw:?}");
            });
            assert_eq!(err.status(), status, "{raw:?}");
        }
    }

    #[test]
    fn oversized_body_is_413_and_oversized_head_431() {
        let mut p = RequestParser::new(16);
        p.push(b"POST / HTTP/1.1\r\nContent-Length: 64\r\n\r\n");
        assert_eq!(p.next_request().err().map(|e| e.status()), Some(413));

        let mut p = RequestParser::new(1 << 20);
        p.push(b"GET / HTTP/1.1\r\nX-Pad: ");
        p.push(&vec![b'a'; MAX_HEAD_BYTES + 1]);
        assert_eq!(p.next_request().err().map(|e| e.status()), Some(431));

        // An unterminated head is also caught incrementally, before
        // any terminator arrives.
        let mut p = RequestParser::new(1 << 20);
        p.push(&vec![b'a'; MAX_HEAD_BYTES + 1]);
        assert_eq!(p.next_request().err().map(|e| e.status()), Some(431));
    }

    #[test]
    fn leading_blank_lines_are_tolerated() {
        let mut p = RequestParser::new(64);
        p.push(b"\r\n\r\nGET / HTTP/1.1\r\n\r\n");
        let parsed = p.next_request().unwrap().expect("request after CRLFs");
        assert_eq!(parsed.request.path, "/");
    }

    #[test]
    fn encode_advertises_connection_fate() {
        let resp = Response::json(200, "{}".into());
        let ka = String::from_utf8(resp.encode(true)).unwrap();
        assert!(ka.contains("Connection: keep-alive\r\n"), "{ka}");
        assert!(ka.contains("Content-Length: 2\r\n"), "{ka}");
        let close = String::from_utf8(resp.encode(false)).unwrap();
        assert!(close.contains("Connection: close\r\n"), "{close}");
        assert!(close.ends_with("\r\n\r\n{}"), "{close}");
    }

    #[test]
    fn chunked_encoding_frames_and_terminates() {
        let mut enc = ChunkedEncoder::new("text/plain; charset=utf-8", true);
        enc.chunk(b"");
        enc.chunk(b"hello");
        let wire = String::from_utf8(enc.finish()).unwrap();
        assert!(wire.contains("Transfer-Encoding: chunked\r\n"), "{wire}");
        assert!(wire.ends_with("5\r\nhello\r\n0\r\n\r\n"), "{wire}");
    }
}
