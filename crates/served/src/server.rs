//! The HTTP server: a readiness loop front end over a worker pool.
//!
//! One **reactor thread** owns the listener and every connection:
//! non-blocking sockets multiplexed with [`crate::reactor::PollSet`],
//! per-connection state machines that feed bytes to the resumable
//! [`RequestParser`], HTTP/1.1 keep-alive with pipelining, and the
//! timeout table (request deadline, write-stall eviction, idle reaping
//! — see `DESIGN.md` §10). Parsed requests become jobs on a bounded
//! queue consumed by **worker threads**; a completed response travels
//! back as an encoded byte buffer and the reactor writes it in request
//! order, however the workers finished.
//!
//! The bounds survive from the blocking ancestor: the job queue has a
//! hard capacity (overflow answers `503` + `Retry-After` straight from
//! the reactor — load shedding never blocks on a worker), request
//! bodies have a byte cap, heads a smaller one (`431`), a slow client
//! mid-request is evicted with `408` after the deadline, and handler
//! panics are caught and answered as `500` without taking the worker
//! down.
//!
//! Shutdown is cooperative: [`ShutdownTrigger::request`] (also wired
//! to `POST /v1/shutdown`) flips the stop flag and wakes the reactor;
//! jobs already queued are drained and their responses written, new
//! requests are refused with `503`, and [`ServerHandle::join`] joins
//! all threads and flushes telemetry.

use crate::engine::{self, EngineError, SimQuery};
use crate::http::{self, Request, RequestParser, Response};
use crate::obs::{self, AccessLog, AccessRecord};
use crate::reactor::{PollSet, WakeHandle, Waker};
use accordion_chip::popcache;
use accordion_telemetry::alerts::{self, AlertSet};
use accordion_telemetry::event::SimEvent;
use accordion_telemetry::registry::exponential_bounds;
use accordion_telemetry::rolling::RollingHistogram;
use accordion_telemetry::tsdb::Tsdb;
use accordion_telemetry::{counter, flight, flight_track, histogram, json, prom, sink};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Reactor poll tick: the upper bound on timeout-detection latency.
/// Readiness and completions interrupt the tick immediately.
const TICK: Duration = Duration::from_millis(25);

/// Artifact generation injected by the binary crate (`repro`). The
/// service crate cannot depend on `accordion-bench` (which depends on
/// everything, including — via the CLI — this crate), so the registry
/// arrives as data: the artifact id list and a generator function.
#[derive(Clone, Copy)]
pub struct ArtifactSource {
    /// Registered artifact ids, e.g. `fig5a`, `tab3`.
    pub ids: &'static [&'static str],
    /// Generates one artifact at a population size; `None` for an
    /// unknown id.
    pub generate: fn(&str, usize) -> Option<String>,
}

/// Server configuration. `Default` matches the CLI defaults.
#[derive(Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080`. Port `0` picks an
    /// ephemeral port (tests use this).
    pub addr: String,
    /// Worker threads — the number of requests in service at once.
    pub handler_threads: usize,
    /// Pool workers available to a single request (sweep fan-out).
    pub request_jobs: usize,
    /// Parsed-but-unhandled request cap; beyond it, `503`.
    pub queue_capacity: usize,
    /// Request body cap in bytes (`413` beyond it).
    pub max_body_bytes: usize,
    /// Per-request deadline: a client mid-request that sends nothing
    /// for this long is evicted with `408`; a response that makes no
    /// write progress for this long is dropped.
    pub deadline: Duration,
    /// How long a keep-alive connection may sit idle *between*
    /// requests before the reactor closes it silently.
    pub idle_timeout: Duration,
    /// Whether to keep connections open between requests. `false`
    /// restores one-request-per-connection (`Connection: close` on
    /// every response).
    pub keep_alive: bool,
    /// Pipelining depth: requests admitted per connection before its
    /// earlier responses have been written (backpressure bound).
    pub max_pipeline: usize,
    /// Artifact generation hook, if the host binary provides one.
    pub artifacts: Option<ArtifactSource>,
    /// Enables `POST /v1/debug/sleep` (tests only — lets a test pin
    /// every worker thread deterministically).
    pub debug_endpoints: bool,
    /// JSONL access-log path (`repro serve --access-log`); `None`
    /// disables access logging.
    pub access_log: Option<String>,
    /// Include wall-clock fields (`queue_us`, `latency_us`) in access
    /// log lines. The determinism test turns this off to pin the file
    /// byte-identical at any `request_jobs`.
    pub log_timing: bool,
    /// Run the self-scrape loop: sample the prom registry into the
    /// in-process TSDB every [`Self::scrape_interval`] and evaluate
    /// alert rules against it. `false` leaves `/v1/timeseries` and
    /// `/v1/alerts` serving empty history (the endpoints stay up).
    pub self_scrape: bool,
    /// Self-scrape sampling period.
    pub scrape_interval: Duration,
    /// Alert-rule file path (`repro serve --alerts`); parsed at
    /// [`start`], rejected with the parse errors when malformed.
    pub alert_rules: Option<String>,
    /// Rolling window of the per-outcome latency histograms, seconds.
    /// The global registry fixes a rolling histogram's window at first
    /// creation, so [`start`] pre-registers every outcome class with
    /// this value. Tests shrink it so an injected latency spike ages
    /// out of `p99` (and the alerts watching it) within the test
    /// budget rather than after the production 60 s.
    pub latency_window_s: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_string(),
            handler_threads: 4,
            request_jobs: 2,
            queue_capacity: 128,
            max_body_bytes: 1 << 20,
            deadline: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(30),
            keep_alive: true,
            max_pipeline: 32,
            artifacts: None,
            debug_endpoints: false,
            access_log: None,
            log_timing: true,
            self_scrape: true,
            scrape_interval: Duration::from_secs(1),
            alert_rules: None,
            latency_window_s: 60.0,
        }
    }
}

/// One parsed request on its way to a worker.
struct Job {
    /// Owning connection's key in the reactor table.
    conn: u64,
    /// Per-connection response sequence (in-order write key).
    seq: u64,
    /// Arrival-order request id (1-based, process of the server).
    id: u64,
    request: Request,
    /// Advertise (and honor) keep-alive on the response.
    keep_alive: bool,
    /// When the request finished parsing (queue-wait accounting).
    queued: Instant,
    /// Reactor-side parse duration, re-emitted as the request's
    /// `serve.parse` stage from the worker's flight track.
    parse_us: u64,
}

/// A fully-encoded response travelling back to the reactor.
struct Completion {
    conn: u64,
    seq: u64,
    bytes: Vec<u8>,
}

struct Shared {
    cfg: ServeConfig,
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    completions: Mutex<Vec<Completion>>,
    waker: WakeHandle,
    stop: AtomicBool,
    /// Arrival-order request id source (first request gets id 1).
    next_id: AtomicU64,
    /// Requests currently inside a worker.
    in_flight: AtomicU64,
    /// Requests fully answered (including error responses).
    handled: AtomicU64,
    /// Requests shed with `503` at the queue.
    shed: AtomicU64,
    /// Server start, for `/healthz` uptime and the uptime gauge.
    started: Instant,
    /// JSONL access log, when configured.
    log: Option<AccessLog>,
    /// Route-layer replay memo: exact `(route, body-bytes)` of an
    /// already-answered simulate/sweep → its rendered `200` body. A
    /// hit skips JSON parsing and query validation entirely; it is
    /// sound for the same reason the engine memo is (the engine is a
    /// pure function of the request, so the replay is byte-identical)
    /// and counts as a coalesced answer in the metrics/log.
    raw_memo: Mutex<RawMemo>,
    /// Self-scrape history store behind `/v1/timeseries`.
    tsdb: Arc<Tsdb>,
    /// Alert rules + evaluation state behind `/v1/alerts`.
    alerts: Mutex<AlertSet>,
}

/// Bounded FIFO map behind [`Shared::raw_memo`]. Only successful
/// (`200`) bodies enter; errors always re-evaluate. Nested by route so
/// the hot lookup probes with the borrowed body slice (`Vec<u8>:
/// Borrow<[u8]>`) — no allocation on a hit.
#[derive(Default)]
struct RawMemo {
    map: HashMap<&'static str, HashMap<Vec<u8>, Arc<str>>>,
    order: VecDeque<(&'static str, Vec<u8>)>,
}

/// Entry cap for [`RawMemo`] — matches the engine memo's bound.
const RAW_MEMO_CAPACITY: usize = 256;

impl RawMemo {
    fn get(&self, route: &'static str, body: &[u8]) -> Option<Arc<str>> {
        self.map.get(route)?.get(body).cloned()
    }

    fn put(&mut self, route: &'static str, body: &[u8], rendered: Arc<str>) {
        if self
            .map
            .get(route)
            .is_some_and(|per_route| per_route.contains_key(body))
        {
            return;
        }
        if self.order.len() >= RAW_MEMO_CAPACITY {
            if let Some((r, b)) = self.order.pop_front() {
                if let Some(per_route) = self.map.get_mut(r) {
                    per_route.remove(&b);
                }
            }
        }
        self.map
            .entry(route)
            .or_default()
            .insert(body.to_vec(), rendered);
        self.order.push_back((route, body.to_vec()));
    }
}

impl Shared {
    /// Flips the stop flag, wakes the workers, and interrupts the
    /// reactor's poll.
    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.available.notify_all();
        self.waker.wake();
    }
}

/// Requests a running server to stop; clonable and usable from any
/// thread (the CLI hands one to its stdin watcher, the router wires
/// one to `POST /v1/shutdown`).
#[derive(Clone)]
pub struct ShutdownTrigger {
    shared: Arc<Shared>,
}

impl ShutdownTrigger {
    /// Flips the stop flag and wakes every thread. Idempotent.
    pub fn request(&self) {
        self.shared.request_stop();
    }

    /// Whether shutdown has been requested.
    pub fn is_requested(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }
}

/// A running server: the bound address plus the threads serving it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actual bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A trigger that can stop this server from another thread.
    pub fn trigger(&self) -> ShutdownTrigger {
        ShutdownTrigger {
            shared: self.shared.clone(),
        }
    }

    /// Blocks until the server has stopped (externally triggered or
    /// via `POST /v1/shutdown`), then joins threads and flushes
    /// telemetry. Queued requests are drained, not dropped.
    pub fn join(mut self) {
        if let Some(t) = self.reactor.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        sink::flush();
    }

    /// Requests shutdown and then [`join`](Self::join)s.
    pub fn shutdown(self) {
        self.trigger().request();
        self.join();
    }
}

/// Binds and starts the server; returns once the listener is live.
///
/// # Errors
///
/// Propagates the bind failure (address in use, permission) or waker
/// creation failure.
pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let waker = Waker::new()?;
    let log = match &cfg.access_log {
        Some(path) => Some(AccessLog::create(path, cfg.log_timing)?),
        None => None,
    };
    let rules = match &cfg.alert_rules {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            alerts::parse_rules(&text).map_err(|errs| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("alert rules {path}: {}", errs.join("; ")),
                )
            })?
        }
        None => Vec::new(),
    };
    describe_metrics();
    // First creation fixes a rolling histogram's window (the registry
    // ignores the spec on later lookups), so claim every outcome class
    // at the configured window before any request records into them.
    for outcome in ["ok", "timeout", "too_large", "shed", "error"] {
        accordion_telemetry::registry::global().rolling_histogram(
            "served.http.request_latency_us",
            &[("outcome", outcome)],
            &latency_bounds(),
            cfg.latency_window_s,
        );
    }
    let shared = Arc::new(Shared {
        cfg,
        jobs: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        completions: Mutex::new(Vec::new()),
        waker: waker.handle(),
        stop: AtomicBool::new(false),
        next_id: AtomicU64::new(0),
        in_flight: AtomicU64::new(0),
        handled: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        started: Instant::now(),
        log,
        raw_memo: Mutex::new(RawMemo::default()),
        tsdb: Arc::new(Tsdb::new()),
        alerts: Mutex::new(AlertSet::new(rules)),
    });

    let reactor = {
        let shared = shared.clone();
        thread::Builder::new()
            .name("served-reactor".into())
            .spawn(move || reactor_loop(&shared, listener, &waker))?
    };
    let mut workers = Vec::with_capacity(shared.cfg.handler_threads);
    for i in 0..shared.cfg.handler_threads.max(1) {
        let shared = shared.clone();
        workers.push(
            thread::Builder::new()
                .name(format!("served-worker-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    if shared.cfg.self_scrape {
        let shared = shared.clone();
        workers.push(
            thread::Builder::new()
                .name("served-scrape".into())
                .spawn(move || scrape_loop(&shared))?,
        );
    }
    Ok(ServerHandle {
        addr,
        shared,
        reactor: Some(reactor),
        workers,
    })
}

// ---------------------------------------------------------------------------
// Reactor side: connection state machines.
// ---------------------------------------------------------------------------

/// One connection's state, owned exclusively by the reactor thread.
struct Conn {
    /// Key in the reactor's connection table (job routing address).
    key: u64,
    stream: TcpStream,
    parser: RequestParser,
    /// Bytes being written, in response order; `out_pos` marks the
    /// written prefix (a partial write parks here until the peer
    /// drains its receive window).
    out: Vec<u8>,
    out_pos: usize,
    /// Completed responses that cannot enter `out` yet because an
    /// earlier pipelined response is still outstanding.
    ready: BTreeMap<u64, Vec<u8>>,
    /// Sequence assigned to the next parsed request.
    next_seq: u64,
    /// Sequence whose response bytes enter `out` next.
    next_write: u64,
    /// After writing response `seq`, close the connection
    /// (`Connection: close`, errors, shed, eviction).
    close_at: Option<u64>,
    /// Peer sent EOF; no further requests can arrive.
    read_closed: bool,
    /// Socket error observed; drop as soon as noticed.
    dead: bool,
    /// Last byte received (idle/deadline accounting).
    last_read: Instant,
    /// Last write progress (write-stall accounting).
    last_progress: Instant,
}

impl Conn {
    fn new(key: u64, stream: TcpStream, max_body: usize, now: Instant) -> Self {
        Self {
            key,
            stream,
            parser: RequestParser::new(max_body),
            out: Vec::new(),
            out_pos: 0,
            ready: BTreeMap::new(),
            next_seq: 0,
            next_write: 0,
            close_at: None,
            read_closed: false,
            dead: false,
            last_read: now,
            last_progress: now,
        }
    }

    /// Requests admitted but not yet fully promoted to `out`
    /// (pipelining window; bounds per-connection memory).
    fn window(&self) -> usize {
        (self.next_seq - self.next_write) as usize
    }

    /// Requests dispatched to workers whose completions have not come
    /// back yet.
    fn outstanding(&self) -> usize {
        self.window() - self.ready.len()
    }

    /// Nothing is buffered for (or on its way to) this socket.
    fn drained(&self) -> bool {
        self.out_pos == self.out.len() && self.ready.is_empty()
    }
}

fn reactor_loop(shared: &Arc<Shared>, listener: TcpListener, waker: &Waker) {
    let mut listener = Some(listener);
    let mut conns: BTreeMap<u64, Conn> = BTreeMap::new();
    let mut next_conn: u64 = 1;
    let mut set = PollSet::new();
    loop {
        let stopping = shared.stop.load(Ordering::SeqCst);
        if stopping {
            // Closing the listener refuses new connections at the
            // kernel; everything already admitted drains below.
            listener = None;
        }

        // Ingest completed responses from the workers.
        {
            let mut done = shared.completions.lock().expect("completion list poisoned");
            for c in done.drain(..) {
                if let Some(conn) = conns.get_mut(&c.conn) {
                    conn.ready.insert(c.seq, c.bytes);
                }
            }
        }

        // Promote, flush, and apply the timeout table per connection.
        let now = Instant::now();
        conns.retain(|_, conn| service_conn(shared, conn, now, stopping));

        if stopping && conns.is_empty() {
            break;
        }

        // Build this tick's poll set from live interest.
        set.clear();
        let _waker_slot = set.push(waker.fd(), true, false);
        let listener_slot = listener
            .as_ref()
            .map(|l| set.push(l.as_raw_fd(), true, false));
        let mut conn_slots: Vec<(usize, u64)> = Vec::with_capacity(conns.len());
        for (key, conn) in &conns {
            let read = !conn.read_closed
                && !conn.dead
                && conn.close_at.is_none()
                && conn.window() < shared.cfg.max_pipeline;
            let write = conn.out_pos < conn.out.len();
            if read || write {
                conn_slots.push((set.push(conn.stream.as_raw_fd(), read, write), *key));
            }
        }
        if set.wait(TICK).is_err() {
            // poll(2) failing outright (EBADF would be a reactor bug)
            // has no recovery story; park briefly and retry.
            thread::sleep(TICK);
            continue;
        }
        waker.drain();

        // Accept everything pending.
        if let (Some(l), Some(slot)) = (&listener, listener_slot) {
            if set.readiness(slot).readable {
                let now = Instant::now();
                while let Ok((stream, _)) = l.accept() {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    counter!("served.http.connections").inc();
                    let key = next_conn;
                    next_conn += 1;
                    conns.insert(key, Conn::new(key, stream, shared.cfg.max_body_bytes, now));
                }
            }
        }

        // Feed readable sockets to their parsers; dispatch requests.
        let now = Instant::now();
        for (slot, key) in conn_slots {
            let r = set.readiness(slot);
            if !r.any() {
                continue;
            }
            let Some(conn) = conns.get_mut(&key) else {
                continue;
            };
            if r.readable {
                read_conn(shared, conn, now);
            } else if r.error {
                // Error with nothing to read: the peer is gone. (A
                // hangup that still has buffered data reports
                // readable too and is handled above — the read path
                // sees the EOF after consuming the data.)
                conn.dead = true;
            }
        }
        // Writes happen in the service pass at the top of the loop.
    }
}

/// One service pass: promote completed responses into the write
/// buffer, flush what the socket accepts, then walk the timeout /
/// close table. Returns `false` when the connection is finished.
fn service_conn(shared: &Shared, conn: &mut Conn, now: Instant, stopping: bool) -> bool {
    if conn.dead {
        counter!("served.http.disconnects").inc();
        return false;
    }
    // Promote in strict sequence order: pipelined responses leave in
    // the order the requests arrived, however the workers finished.
    while let Some(bytes) = conn.ready.remove(&conn.next_write) {
        conn.out.extend_from_slice(&bytes);
        conn.next_write += 1;
    }
    // Flush until the socket pushes back.
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.out_pos += n;
                conn.last_progress = now;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.dead {
        counter!("served.http.disconnects").inc();
        return false;
    }
    if conn.out_pos > 0 && conn.out_pos == conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
    }
    let drained = conn.drained();
    // Close-after-response: the marked response has been fully
    // written; nothing later was admitted.
    if let Some(seq) = conn.close_at {
        if conn.next_write > seq && drained {
            return false;
        }
    }
    // Peer EOF and nothing left to answer.
    if conn.read_closed && conn.outstanding() == 0 && drained {
        return false;
    }
    // Draining: anything not waiting on an already-queued job closes
    // now; new work was already being refused with 503.
    if stopping && conn.outstanding() == 0 && drained {
        return false;
    }
    // Write stall: the peer accepted nothing for a whole deadline.
    if conn.out_pos < conn.out.len() && now.duration_since(conn.last_progress) > shared.cfg.deadline
    {
        counter!("served.http.disconnects").inc();
        return false;
    }
    // Slow client: mid-request with nothing received for a whole
    // deadline → 408, then close (after earlier pipelined responses).
    if conn.close_at.is_none()
        && conn.parser.mid_request()
        && now.duration_since(conn.last_read) > shared.cfg.deadline
    {
        let seq = conn.next_seq;
        conn.next_seq += 1;
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        answer_reactor_side(
            shared,
            conn,
            seq,
            id,
            Response::error(408, "request timed out"),
            0,
        );
        conn.close_at = Some(seq);
        conn.read_closed = true;
    }
    // Idle keep-alive connection between requests: reap silently.
    if conn.close_at.is_none()
        && !conn.parser.mid_request()
        && conn.outstanding() == 0
        && drained
        && now.duration_since(conn.last_read) > shared.cfg.idle_timeout
    {
        return false;
    }
    true
}

/// Drains the socket into the parser and dispatches every complete
/// request. Bounded per tick so one firehose connection cannot starve
/// the rest.
fn read_conn(shared: &Shared, conn: &mut Conn, now: Instant) {
    let mut buf = [0u8; 16 * 1024];
    for _ in 0..4 {
        if conn.read_closed
            || conn.dead
            || conn.close_at.is_some()
            || conn.window() >= shared.cfg.max_pipeline
        {
            break;
        }
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.last_read = now;
                conn.parser.push(&buf[..n]);
                parse_pending(shared, conn, now);
                if n < buf.len() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
}

/// Pulls every complete request out of the parser: assign the arrival
/// id and response sequence, then hand it to the workers (or shed /
/// answer the framing error in place).
fn parse_pending(shared: &Shared, conn: &mut Conn, now: Instant) {
    while conn.close_at.is_none() && !conn.dead && conn.window() < shared.cfg.max_pipeline {
        let parse_started = Instant::now();
        match conn.parser.next_request() {
            Ok(None) => break,
            Ok(Some(parsed)) => {
                let parse_us = parse_started.elapsed().as_micros() as u64;
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let id = shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;
                let keep_alive = shared.cfg.keep_alive && !parsed.close;
                if !keep_alive {
                    // Pipelined bytes after an announced close are
                    // ignored, per RFC 9112 §9.6.
                    conn.close_at = Some(seq);
                }
                dispatch(
                    shared,
                    conn,
                    seq,
                    id,
                    parsed.request,
                    keep_alive,
                    now,
                    parse_us,
                );
            }
            Err(e) => {
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let id = shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;
                answer_reactor_side(
                    shared,
                    conn,
                    seq,
                    id,
                    Response::error(e.status(), &e.message()),
                    0,
                );
                conn.close_at = Some(seq);
                conn.read_closed = true;
                break;
            }
        }
    }
}

/// Queues one job, or sheds it with `503` when the queue is full or
/// the server is draining. The shed decision and the workers'
/// exit-on-empty decision run under the same lock, so a job can never
/// be enqueued after the last worker has left.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    shared: &Shared,
    conn: &mut Conn,
    seq: u64,
    id: u64,
    request: Request,
    keep_alive: bool,
    now: Instant,
    parse_us: u64,
) {
    {
        let mut jobs = shared.jobs.lock().expect("job queue poisoned");
        let full = jobs.len() >= shared.cfg.queue_capacity;
        let draining = shared.stop.load(Ordering::SeqCst);
        if !full && !draining {
            jobs.push_back(Job {
                conn: conn.key,
                seq,
                id,
                request,
                keep_alive,
                queued: now,
                parse_us,
            });
            drop(jobs);
            shared.available.notify_one();
            return;
        }
    }
    // Shed inline from the reactor: a one-line 503 is cheap and tells
    // a well-behaved client when to retry; it never waits on a worker.
    counter!("served.http.rejected_queue_full").inc();
    shared.shed.fetch_add(1, Ordering::Relaxed);
    let resp = Response::error(503, "server saturated; retry shortly")
        .with_header("Retry-After", "1".to_string());
    let us = now.elapsed().as_micros() as f64;
    request_hist("shed").record_with_exemplar(us, &exemplar_labels(id));
    outcome_counter("shed").inc();
    if let Some(log) = &shared.log {
        log.write(&AccessRecord {
            id,
            method: "-".into(),
            path: "-".into(),
            status: 503,
            outcome: "shed",
            handler: "-",
            cache: "-",
            bytes: resp.body.len() as u64,
            queue_us: 0,
            latency_us: us as u64,
        });
    }
    conn.ready.insert(seq, resp.encode(false));
    conn.close_at = Some(seq);
}

/// Answers a request the reactor resolves itself (framing errors,
/// `408` evictions): full accounting — counters, outcome histogram,
/// flight span, access log — so these are first-class requests, not
/// holes in the telemetry.
fn answer_reactor_side(
    shared: &Shared,
    conn: &mut Conn,
    seq: u64,
    id: u64,
    resp: Response,
    parse_us: u64,
) {
    counter!("served.http.requests").inc();
    let _track = flight_track!("req{:08}", id);
    accordion_telemetry::event::advance_sim(parse_us);
    flight!(SimEvent::ServeStage {
        stage: "serve.parse",
        us: parse_us,
    });
    let status = resp.status;
    let bytes = resp.body.len() as u64;
    let outcome = obs::outcome_of(status);
    count_response(status);
    request_hist(outcome).record_with_exemplar(parse_us as f64, &exemplar_labels(id));
    outcome_counter(outcome).inc();
    flight!(SimEvent::RequestRetire {
        status: u64::from(status),
        bytes,
        us: parse_us,
    });
    if let Some(log) = &shared.log {
        log.write(&AccessRecord {
            id,
            method: "-".into(),
            path: "-".into(),
            status,
            outcome,
            handler: "-",
            cache: "-",
            bytes,
            queue_us: 0,
            latency_us: parse_us,
        });
    }
    shared.handled.fetch_add(1, Ordering::Relaxed);
    conn.ready.insert(seq, resp.encode(false));
}

// ---------------------------------------------------------------------------
// Worker side: route, handle, encode.
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut jobs = shared.jobs.lock().expect("job queue poisoned");
            loop {
                if let Some(job) = jobs.pop_front() {
                    break Some(job);
                }
                // Even after stop, the queue is drained before this
                // returns None — requests already admitted are
                // answered, not dropped.
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _) = shared
                    .available
                    .wait_timeout(jobs, Duration::from_millis(100))
                    .expect("job queue poisoned");
                jobs = q;
            }
        };
        let Some(job) = job else { return };
        let conn = job.conn;
        let seq = job.seq;
        let bytes = handle_job(shared, job);
        let was_empty = {
            let mut done = shared.completions.lock().expect("completion list poisoned");
            done.push(Completion { conn, seq, bytes });
            done.len() == 1
        };
        // One pending wake is enough: if completions was already
        // non-empty the reactor has an unconsumed wake byte (or is
        // already mid-ingest and will see this entry under the lock).
        if was_empty {
            shared.waker.wake();
        }
    }
}

/// Runs one request end to end on a worker: telemetry context, route
/// (panic-isolated), encode. Returns the wire bytes for the reactor.
fn handle_job(shared: &Shared, job: Job) -> Vec<u8> {
    let queue_us = job.queued.elapsed().as_micros() as u64;
    let started = Instant::now();
    counter!("served.http.requests").inc();
    shared.in_flight.fetch_add(1, Ordering::Relaxed);
    // Request id → thread-local context, pool task tag, and flight
    // track: every downstream layer can name this request without a
    // context argument (see `crate::obs`).
    obs::begin_request(job.id);
    accordion_pool::set_task_tag(job.id);
    let _track = flight_track!("req{:08}", job.id);
    histogram!(
        "served.http.queue_wait_us",
        exponential_bounds(1.0, 2.0, 24)
    )
    .record(queue_us as f64);
    accordion_telemetry::event::advance_sim(job.parse_us);
    flight!(SimEvent::ServeStage {
        stage: "serve.parse",
        us: job.parse_us,
    });

    let req = &job.request;
    obs::note_handler(handler_name(&req.method, &req.path));
    let handle_started = Instant::now();
    // A route handler panicking (a bug) must answer 500 and leave the
    // worker alive for the next request.
    let routed = match catch_unwind(AssertUnwindSafe(|| route(shared, req))) {
        Ok(resp) => resp,
        Err(_) => {
            counter!("served.http.panics").inc();
            Routed::Plain(Response::error(500, "internal error (handler panicked)"))
        }
    };
    let handle_us = handle_started.elapsed().as_micros() as u64;
    accordion_telemetry::event::advance_sim(handle_us);
    flight!(SimEvent::ServeStage {
        stage: "serve.handle",
        us: handle_us,
    });

    let encode_started = Instant::now();
    let (status, body_bytes, wire) = match routed {
        Routed::Plain(resp) => {
            count_response(resp.status);
            let wire = resp.encode(job.keep_alive);
            (resp.status, resp.body.len() as u64, wire)
        }
        Routed::Artifact { id, chips, source } => {
            render_artifact(&id, chips, source, job.keep_alive)
        }
    };
    let encode_us = encode_started.elapsed().as_micros() as u64;
    accordion_telemetry::event::advance_sim(encode_us);
    flight!(SimEvent::ServeStage {
        stage: "serve.serialize",
        us: encode_us,
    });

    let us = job.parse_us + started.elapsed().as_micros() as u64;
    let outcome = obs::outcome_of(status);
    histogram!("served.http.latency_us", exponential_bounds(1.0, 2.0, 24)).record(us as f64);
    request_hist(outcome).record_with_exemplar(us as f64, &exemplar_labels(job.id));
    outcome_counter(outcome).inc();
    flight!(SimEvent::RequestRetire {
        status: u64::from(status),
        bytes: body_bytes,
        us,
    });
    accordion_pool::set_task_tag(0);
    let ctx = obs::end_request().unwrap_or_default();
    if let Some(log) = &shared.log {
        log.write(&AccessRecord {
            id: job.id,
            method: req.method.clone(),
            path: req.path.clone(),
            status,
            outcome,
            handler: ctx.handler,
            cache: match ctx.cache_hit {
                Some(true) => "hit",
                Some(false) => "miss",
                None => "-",
            },
            bytes: body_bytes,
            queue_us,
            latency_us: us,
        });
    }
    shared.handled.fetch_add(1, Ordering::Relaxed);
    shared.in_flight.fetch_sub(1, Ordering::Relaxed);
    wire
}

/// Generates and chunk-encodes one artifact (panic-isolated).
fn render_artifact(
    id: &str,
    chips: usize,
    source: ArtifactSource,
    keep_alive: bool,
) -> (u16, u64, Vec<u8>) {
    counter!("served.artifacts.requests").inc();
    match catch_unwind(AssertUnwindSafe(|| (source.generate)(id, chips))) {
        Ok(Some(text)) => {
            counter!("served.http.responses.2xx").inc();
            let mut enc = http::ChunkedEncoder::new("text/plain; charset=utf-8", keep_alive);
            enc.chunk(text.as_bytes());
            (200, text.len() as u64, enc.finish())
        }
        Ok(None) => {
            // Validated before routing here; a miss now means the
            // registry changed under us.
            counter!("served.http.responses.5xx").inc();
            let resp = Response::error(500, "artifact registry changed underfoot");
            let bytes = resp.body.len() as u64;
            (500, bytes, resp.encode(keep_alive))
        }
        Err(_) => {
            counter!("served.http.panics").inc();
            counter!("served.http.responses.5xx").inc();
            let resp = Response::error(500, "artifact generation panicked");
            let bytes = resp.body.len() as u64;
            (500, bytes, resp.encode(keep_alive))
        }
    }
}

// ---------------------------------------------------------------------------
// Self-scrape loop: registry → TSDB → alert evaluation.
// ---------------------------------------------------------------------------

/// One self-scrape tick: refresh the point-in-time gauges, fold the
/// whole registry into the TSDB, then advance the alert state
/// machines. Transitions land in the access log (as `type:"alert"`
/// lines) and the `served.alerts.*` metrics.
fn scrape_tick(shared: &Shared) {
    let scrape_started = Instant::now();
    refresh_gauges(shared);
    shared.tsdb.scrape(accordion_telemetry::registry::global());
    let now_ms = shared.tsdb.now_ms();
    let transitions = {
        let mut alerts = shared.alerts.lock().expect("alert set poisoned");
        let t = alerts.evaluate_at_ms(&shared.tsdb, now_ms);
        accordion_telemetry::registry::global()
            .gauge("served.alerts.firing")
            .set(alerts.firing() as f64);
        t
    };
    for t in &transitions {
        counter!("served.alerts.transitions").inc();
        if let Some(log) = &shared.log {
            log.write_alert(&t.name, t.from.as_str(), t.to.as_str(), t.at_ms);
        }
    }
    histogram!("served.scrape.us", exponential_bounds(1.0, 2.0, 20))
        .record(scrape_started.elapsed().as_micros() as f64);
}

/// The self-scrape thread body: one [`scrape_tick`] per
/// `scrape_interval`, sleeping in short steps so shutdown is never
/// held up by a long interval.
fn scrape_loop(shared: &Arc<Shared>) {
    const STEP: Duration = Duration::from_millis(25);
    while !shared.stop.load(Ordering::SeqCst) {
        let started = Instant::now();
        scrape_tick(shared);
        while started.elapsed() < shared.cfg.scrape_interval {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            let left = shared.cfg.scrape_interval.saturating_sub(started.elapsed());
            if left.is_zero() {
                break;
            }
            thread::sleep(STEP.min(left));
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics plumbing.
// ---------------------------------------------------------------------------

/// Latency bucket edges: 1 µs .. ~8.4 s, powers of two.
fn latency_bounds() -> Vec<f64> {
    exponential_bounds(1.0, 2.0, 24)
}

/// Exemplar label body for one request: the arrival id plus its
/// flight-recorder track name (`req00000042`), so a bucket exemplar on
/// `/metrics` cross-references straight into a Chrome trace.
fn exemplar_labels(id: u64) -> String {
    format!("request_id=\"{id}\",track=\"req{id:08}\"")
}

/// The rolling request-latency histogram for one outcome class
/// (60-second SLO window; `/metrics` renders all outcomes as one
/// labeled histogram family).
fn request_hist(outcome: &'static str) -> &'static RollingHistogram {
    accordion_telemetry::registry::global().rolling_histogram(
        "served.http.request_latency_us",
        &[("outcome", outcome)],
        &latency_bounds(),
        60.0,
    )
}

/// Lifetime request counter per outcome class.
fn outcome_counter(outcome: &'static str) -> &'static accordion_telemetry::registry::Counter {
    accordion_telemetry::registry::global()
        .labeled_counter("served.http.requests_by_outcome", &[("outcome", outcome)])
}

/// Registers `# HELP` texts and the constant build-info sample.
/// Idempotent; called from [`start`].
fn describe_metrics() {
    let reg = accordion_telemetry::registry::global();
    reg.describe(
        "served.http.request_latency_us",
        "request latency by outcome, microseconds",
    );
    reg.describe(
        "served.http.requests_by_outcome",
        "requests answered, by outcome class",
    );
    reg.describe("served.http.requests", "requests handled");
    reg.describe("served.http.connections", "TCP connections accepted");
    reg.describe(
        "served.http.latency_us",
        "lifetime request latency, microseconds",
    );
    reg.describe("served.queue.depth", "requests waiting for a worker");
    reg.describe(
        "served.http.in_flight",
        "requests currently inside a worker",
    );
    reg.describe("served.http.shed", "requests shed with 503 at the queue");
    reg.describe(
        "served.coalesced",
        "simulate requests answered by coalescing onto an identical in-flight or memoized evaluation",
    );
    reg.describe("served.uptime.seconds", "seconds since the server started");
    reg.describe(
        "served.popcache.hit_ratio",
        "population cache lifetime hit ratio",
    );
    reg.describe(
        "served.alerts.firing",
        "alert rules currently in the firing state",
    );
    reg.describe(
        "served.alerts.transitions",
        "alert state-machine transitions observed",
    );
    reg.describe(
        "served.scrape.us",
        "self-scrape tick duration (registry gather + TSDB fold + alert eval), microseconds",
    );
    reg.describe(
        "opt.evals",
        "operating points evaluated by the optimizer (memo misses)",
    );
    reg.describe(
        "opt.eval_cache.hits",
        "optimizer evaluations answered from the candidate memo",
    );
    reg.describe(
        "opt.ctx_cache.hits",
        "optimizer per-supply timing-context cache hits",
    );
    reg.describe(
        "opt.ctx_cache.misses",
        "optimizer per-supply timing-context cache misses",
    );
    reg.describe("opt.generations", "NSGA-II generations completed");
    reg.describe(
        "opt.front_size",
        "rank-0 archive front size after the latest generation",
    );
    reg.describe(
        "opt.cache_hit_ratio",
        "optimizer memo hit ratio over the process lifetime",
    );
    reg.describe(
        "served.engine.optimizations",
        "optimize requests that ran the search engine",
    );
    reg.describe(
        "varius.sampler_cache.hits",
        "variation sampler cache hits (see accordion-varius vmap)",
    );
    reg.describe(
        "varius.sampler_cache.misses",
        "variation sampler cache misses",
    );
    reg.describe(
        "varius.sampler_cache.evictions",
        "variation samplers evicted from the LRU cache",
    );
    reg.describe(
        "varius.sampler_cache.entries",
        "variation samplers currently cached",
    );
    // Eager registration: these appear on `/metrics` (and therefore in
    // the TSDB) from the first scrape, not from first traffic.
    reg.counter("varius.sampler_cache.hits");
    reg.counter("varius.sampler_cache.misses");
    reg.counter("varius.sampler_cache.evictions");
    reg.gauge("varius.sampler_cache.entries");
    reg.gauge("served.alerts.firing");
    reg.describe("served.build.info", "build metadata; value is always 1");
    reg.labeled_gauge(
        "served.build.info",
        &[
            ("version", env!("CARGO_PKG_VERSION")),
            (
                "profile",
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                },
            ),
        ],
    )
    .set(1.0);
}

// Not `counter!`: that macro caches the handle per call site, which
// would pin whichever class fired first. Resolve by name each time.
fn count_response(status: u16) {
    let name = match status {
        200..=299 => "served.http.responses.2xx",
        400..=499 => "served.http.responses.4xx",
        _ => "served.http.responses.5xx",
    };
    accordion_telemetry::registry::global().counter(name).inc();
}

// ---------------------------------------------------------------------------
// Routing.
// ---------------------------------------------------------------------------

/// Logical handler name for the access log (bounded vocabulary, never
/// the raw path).
fn handler_name(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("GET", "/healthz") => "healthz",
        ("GET", "/metrics") => "metrics",
        ("GET", "/v1/timeseries") => "timeseries",
        ("GET", "/v1/alerts") => "alerts",
        ("GET", "/v1/artifacts") => "artifacts_list",
        ("POST", "/v1/simulate") => "simulate",
        ("POST", "/v1/sweep") => "sweep",
        ("POST", "/v1/optimize") => "optimize",
        ("POST", "/v1/shutdown") => "shutdown",
        ("POST", "/v1/debug/sleep") => "debug_sleep",
        ("GET", p) if p.starts_with("/v1/artifacts/") => "artifact",
        _ => "other",
    }
}

/// Route outcome: either a fully-formed response, or an artifact to
/// generate and stream chunked.
enum Routed {
    Plain(Response),
    Artifact {
        id: String,
        chips: usize,
        source: ArtifactSource,
    },
}

fn route(shared: &Shared, req: &Request) -> Routed {
    let plain = |r: Response| Routed::Plain(r);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => plain(healthz(shared)),
        ("GET", "/metrics") => plain(metrics(shared)),
        ("GET", "/v1/timeseries") => plain(timeseries(shared, req)),
        ("GET", "/v1/alerts") => plain(alerts_status(shared)),
        ("GET", "/v1/artifacts") => plain(list_artifacts(shared)),
        ("POST", "/v1/simulate") => plain(simulate(shared, req)),
        ("POST", "/v1/sweep") => plain(sweep(shared, req)),
        ("POST", "/v1/optimize") => plain(optimize(shared, req)),
        ("POST", "/v1/shutdown") => {
            shared.request_stop();
            plain(Response::json(
                200,
                json::Json::obj(vec![("status", json::Json::str("stopping"))]).render(),
            ))
        }
        ("POST", "/v1/debug/sleep") if shared.cfg.debug_endpoints => plain(debug_sleep(req)),
        ("GET", path) if path.starts_with("/v1/artifacts/") => {
            let id = path["/v1/artifacts/".len()..].to_string();
            let Some(source) = shared.cfg.artifacts else {
                return plain(Response::error(
                    404,
                    "artifact generation is not wired into this server",
                ));
            };
            if !source.ids.contains(&id.as_str()) {
                return plain(Response::error(404, &format!("unknown artifact {id:?}")));
            }
            let chips = match req.query_value("chips").map(str::parse::<usize>) {
                None => 8,
                Some(Ok(n)) if (1..=100).contains(&n) => n,
                Some(_) => {
                    return plain(Response::error(400, "chips must be an integer in [1, 100]"))
                }
            };
            Routed::Artifact { id, chips, source }
        }
        (_, "/healthz" | "/metrics" | "/v1/artifacts" | "/v1/timeseries" | "/v1/alerts")
        | ("GET" | "PUT" | "DELETE", "/v1/simulate" | "/v1/sweep" | "/v1/optimize") => {
            plain(Response::error(405, "method not allowed"))
        }
        _ => plain(Response::error(404, "no such endpoint")),
    }
}

/// Refreshes the point-in-time serving gauges (queue depth, in-flight,
/// shed, uptime, cache occupancy). Shared by `/metrics` and the
/// self-scrape loop so the exposition and the TSDB history agree.
fn refresh_gauges(shared: &Shared) {
    let reg = accordion_telemetry::registry::global();
    let depth = shared.jobs.lock().expect("job queue poisoned").len();
    reg.gauge("served.queue.depth").set(depth as f64);
    reg.gauge("served.http.in_flight")
        .set(shared.in_flight.load(Ordering::Relaxed) as f64);
    reg.gauge("served.http.shed")
        .set(shared.shed.load(Ordering::Relaxed) as f64);
    reg.gauge("served.uptime.seconds")
        .set(shared.started.elapsed().as_secs_f64());
    let (hits, misses) = popcache::stats();
    let total = hits + misses;
    reg.gauge("served.popcache.hit_ratio").set(if total > 0 {
        hits as f64 / total as f64
    } else {
        0.0
    });
    reg.gauge("varius.sampler_cache.entries")
        .set(accordion_varius::vmap::sampler_cache_len() as f64);
}

/// Renders `/metrics`: refreshes the point-in-time serving gauges,
/// then emits the whole registry in Prometheus exposition format.
fn metrics(shared: &Shared) -> Response {
    refresh_gauges(shared);
    Response::text(200, prom::render(accordion_telemetry::registry::global()))
        .with_header("X-Content-Type-Options", "nosniff".to_string())
}

/// Decodes `%XX` escapes (and `+` as space) in a query-string value.
/// Series ids contain `{`, `"` and `=`, which well-behaved clients
/// percent-encode; malformed escapes pass through literally.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// `GET /v1/timeseries?metric=<id>&range=<secs>`: one series' history
/// from the self-scrape TSDB. Without `metric`, lists the known series
/// ids (the discovery call `repro dash` makes first).
fn timeseries(shared: &Shared, req: &Request) -> Response {
    let Some(raw_metric) = req.query_value("metric") else {
        let mut ids = shared.tsdb.series_ids();
        ids.sort();
        let doc = json::Json::obj(vec![
            ("count", json::Json::Num(ids.len() as f64)),
            ("scrapes", json::Json::Num(shared.tsdb.scrapes() as f64)),
            (
                "series",
                json::Json::Arr(ids.iter().map(json::Json::str).collect()),
            ),
        ]);
        return Response::json(200, doc.render());
    };
    let metric = percent_decode(raw_metric);
    let range_secs = match req.query_value("range").map(str::parse::<u64>) {
        None => 300,
        Some(Ok(n)) if n >= 1 => n,
        Some(_) => return Response::error(400, "range must be a positive integer (seconds)"),
    };
    let r = shared.tsdb.query(&metric, range_secs);
    let points: Vec<json::Json> = r
        .points
        .iter()
        .map(|p| {
            json::Json::obj(vec![
                ("t_ms", json::Json::Num(p.t_ms as f64)),
                ("value", json::Json::Num(p.value)),
            ])
        })
        .collect();
    let doc = json::Json::obj(vec![
        ("metric", json::Json::str(&r.metric)),
        ("range_secs", json::Json::Num(range_secs as f64)),
        ("tier_secs", json::Json::Num(r.tier_secs as f64)),
        ("points", json::Json::Arr(points)),
    ]);
    Response::json(200, doc.render())
}

/// `GET /v1/alerts`: point-in-time view of every rule's state machine.
fn alerts_status(shared: &Shared) -> Response {
    let alerts = shared.alerts.lock().expect("alert set poisoned");
    let statuses = alerts.statuses();
    let rows: Vec<json::Json> = statuses
        .iter()
        .map(|s| {
            let num_or_null = |v: Option<f64>| match v {
                Some(x) if x.is_finite() => json::Json::Num(x),
                _ => json::Json::Null,
            };
            json::Json::obj(vec![
                ("name", json::Json::str(&s.name)),
                ("state", json::Json::str(s.state.as_str())),
                ("since_ms", json::Json::Num(s.since_ms as f64)),
                ("fast_value", num_or_null(s.fast_value)),
                ("slow_value", num_or_null(s.slow_value)),
            ])
        })
        .collect();
    let doc = json::Json::obj(vec![
        ("count", json::Json::Num(statuses.len() as f64)),
        ("firing", json::Json::Num(alerts.firing() as f64)),
        ("alerts", json::Json::Arr(rows)),
    ]);
    Response::json(200, doc.render())
}

fn healthz(shared: &Shared) -> Response {
    let doc = json::Json::obj(vec![
        ("status", json::Json::str("ok")),
        (
            "queue_capacity",
            json::Json::Num(shared.cfg.queue_capacity as f64),
        ),
        (
            "queue_depth",
            json::Json::Num(shared.jobs.lock().expect("job queue poisoned").len() as f64),
        ),
        (
            "handler_threads",
            json::Json::Num(shared.cfg.handler_threads as f64),
        ),
        (
            "in_flight",
            json::Json::Num(shared.in_flight.load(Ordering::Relaxed) as f64),
        ),
        (
            "handled",
            json::Json::Num(shared.handled.load(Ordering::Relaxed) as f64),
        ),
        (
            "shed",
            json::Json::Num(shared.shed.load(Ordering::Relaxed) as f64),
        ),
        (
            "uptime_seconds",
            json::Json::Num(shared.started.elapsed().as_secs() as f64),
        ),
        (
            "caches",
            json::Json::obj(vec![
                ("populations", json::Json::Num(popcache::len() as f64)),
                (
                    "variation_samplers",
                    json::Json::Num(accordion_varius::vmap::sampler_cache_len() as f64),
                ),
            ]),
        ),
    ]);
    Response::json(200, doc.render())
}

fn list_artifacts(shared: &Shared) -> Response {
    let ids: Vec<json::Json> = shared
        .cfg
        .artifacts
        .map(|s| s.ids.iter().map(|id| json::Json::str(*id)).collect())
        .unwrap_or_default();
    let doc = json::Json::obj(vec![
        ("count", json::Json::Num(ids.len() as f64)),
        ("artifacts", json::Json::Arr(ids)),
    ]);
    Response::json(200, doc.render())
}

fn parse_body(req: &Request) -> Result<json::Json, Response> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| Response::error(400, "body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Ok(json::Json::Obj(Vec::new()));
    }
    json::parse(text).map_err(|e| Response::error(400, &format!("body is not JSON: {e}")))
}

/// Replays an already-answered body for `route` straight from the
/// raw-body memo, accounting it as a coalesced answer. `None` means
/// the request must go through parse + engine.
fn raw_replay(shared: &Shared, route: &'static str, req: &Request) -> Option<Response> {
    let started = Instant::now();
    let hit = shared
        .raw_memo
        .lock()
        .expect("raw memo poisoned")
        .get(route, &req.body)?;
    engine::note_coalesced(started.elapsed().as_micros() as u64);
    Some(Response::json(200, hit.as_ref().to_owned()))
}

fn raw_store(shared: &Shared, route: &'static str, req: &Request, rendered: Arc<str>) {
    shared
        .raw_memo
        .lock()
        .expect("raw memo poisoned")
        .put(route, &req.body, rendered);
}

fn simulate(shared: &Shared, req: &Request) -> Response {
    if let Some(resp) = raw_replay(shared, "simulate", req) {
        return resp;
    }
    let doc = match parse_body(req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    let query = match SimQuery::from_json(&doc) {
        Ok(q) => q,
        Err(msg) => return Response::error(400, &msg),
    };
    // The rendered-and-coalesced path: identical concurrent queries
    // collapse onto one evaluation (see `engine::simulate_rendered`).
    match engine::simulate_rendered(&query) {
        Ok(body) => {
            raw_store(shared, "simulate", req, body.clone());
            Response::json(200, body.as_ref().to_owned())
        }
        Err(e) => engine_error(&e),
    }
}

fn sweep(shared: &Shared, req: &Request) -> Response {
    if let Some(resp) = raw_replay(shared, "sweep", req) {
        return resp;
    }
    let doc = match parse_body(req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    // Sweeps coalesce exactly like single simulates: the grid is a
    // pure function of the request document, so identical concurrent
    // sweeps collapse onto one fan-out and repeats replay the memo.
    match engine::sweep_rendered(&doc, shared.cfg.request_jobs) {
        Ok(body) => {
            raw_store(shared, "sweep", req, body.clone());
            Response::json(200, body.as_ref().to_owned())
        }
        Err(e) => engine_error(&e),
    }
}

fn optimize(shared: &Shared, req: &Request) -> Response {
    if let Some(resp) = raw_replay(shared, "optimize", req) {
        return resp;
    }
    let doc = match parse_body(req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    // The optimizer report is a pure function of the request document
    // (the accordion-opt determinism contract), so optimize requests
    // coalesce exactly like simulates and sweeps: concurrent identical
    // searches collapse onto one NSGA-II run, repeats replay the memo.
    match engine::optimize_rendered(&doc, shared.cfg.request_jobs) {
        Ok(body) => {
            raw_store(shared, "optimize", req, body.clone());
            Response::json(200, body.as_ref().to_owned())
        }
        Err(e) => engine_error(&e),
    }
}

fn engine_error(e: &EngineError) -> Response {
    match e {
        EngineError::Bad(msg) => Response::error(400, msg),
        EngineError::Internal(msg) => {
            counter!("served.engine.internal_errors").inc();
            Response::error(500, msg)
        }
    }
}

fn debug_sleep(req: &Request) -> Response {
    let ms = parse_body(req)
        .ok()
        .and_then(|d| d.get("ms").and_then(json::Json::as_f64))
        .unwrap_or(50.0)
        .clamp(0.0, 5000.0);
    thread::sleep(Duration::from_millis(ms as u64));
    Response::json(
        200,
        json::Json::obj(vec![("slept_ms", json::Json::Num(ms))]).render(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(raw.as_bytes()).expect("send");
        let mut out = String::new();
        let _ = conn.read_to_string(&mut out);
        out
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        request(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
        )
    }

    #[test]
    fn healthz_and_routing_basics() {
        let handle = start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            handler_threads: 2,
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = handle.addr();
        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let wrong_method = get(addr, "/v1/simulate");
        assert!(wrong_method.starts_with("HTTP/1.1 405"), "{wrong_method}");
        let metrics = get(addr, "/metrics");
        assert!(metrics.contains("served_http_requests"), "{metrics}");
        handle.shutdown();
    }

    #[test]
    fn optimize_route_validates_and_shares_error_parity() {
        let handle = start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            handler_threads: 2,
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = handle.addr();
        // Wrong method answers 405 like the other engine routes.
        let wrong_method = get(addr, "/v1/optimize");
        assert!(wrong_method.starts_with("HTTP/1.1 405"), "{wrong_method}");
        // Validation failures surface the engine's message as a 400.
        let body = r#"{"app": "nope"}"#;
        let bad = request(
            addr,
            &format!(
                "POST /v1/optimize HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                body.len(),
                body
            ),
        );
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        assert!(bad.contains("unknown app"), "{bad}");
        handle.shutdown();
    }

    #[test]
    fn percent_decode_handles_escapes_and_passthrough() {
        assert_eq!(percent_decode("plain_name"), "plain_name");
        assert_eq!(
            percent_decode("a%7Boutcome%3D%22ok%22%7D%3Arate"),
            "a{outcome=\"ok\"}:rate"
        );
        assert_eq!(percent_decode("a+b"), "a b");
        // Malformed escapes pass through literally.
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn ops_plane_endpoints_serve_history_and_alert_state() {
        let dir = std::env::temp_dir().join("accordion-opsplane-route-test");
        std::fs::create_dir_all(&dir).unwrap();
        let rules = dir.join("rules.toml");
        std::fs::write(
            &rules,
            "[[alert]]\nname = \"queue_deep\"\nmetric = \"served_queue_depth\"\n\
             threshold = 1000000000\nfast_window_s = 5\nslow_window_s = 30\n",
        )
        .unwrap();
        let handle = start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            handler_threads: 2,
            scrape_interval: Duration::from_millis(20),
            alert_rules: Some(rules.to_str().unwrap().to_string()),
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = handle.addr();
        // Let the self-scrape loop take a few samples.
        thread::sleep(Duration::from_millis(120));

        let listing = get(addr, "/v1/timeseries");
        assert!(listing.starts_with("HTTP/1.1 200"), "{listing}");
        assert!(listing.contains("served_queue_depth"), "{listing}");

        let series = get(addr, "/v1/timeseries?metric=served_queue_depth&range=60");
        assert!(series.starts_with("HTTP/1.1 200"), "{series}");
        assert!(series.contains("\"tier_secs\":1"), "{series}");
        assert!(series.contains("\"points\":["), "{series}");

        let bad = get(addr, "/v1/timeseries?metric=x&range=zero");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");

        let alerts = get(addr, "/v1/alerts");
        assert!(alerts.starts_with("HTTP/1.1 200"), "{alerts}");
        assert!(alerts.contains("\"name\":\"queue_deep\""), "{alerts}");
        assert!(alerts.contains("\"state\":\"inactive\""), "{alerts}");

        let wrong_method = request(
            addr,
            "POST /v1/alerts HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert!(wrong_method.starts_with("HTTP/1.1 405"), "{wrong_method}");
        handle.shutdown();
        let _ = std::fs::remove_file(&rules);
    }

    #[test]
    fn bad_alert_rules_fail_start() {
        let dir = std::env::temp_dir().join("accordion-opsplane-badrules-test");
        std::fs::create_dir_all(&dir).unwrap();
        let rules = dir.join("bad.toml");
        std::fs::write(&rules, "[[alert]]\nname = \"x\"\n").unwrap();
        match start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            alert_rules: Some(rules.to_str().unwrap().to_string()),
            ..ServeConfig::default()
        }) {
            Ok(handle) => {
                handle.shutdown();
                panic!("rules without a kind must be rejected");
            }
            Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidData),
        }
        let _ = std::fs::remove_file(&rules);
    }

    #[test]
    fn malformed_requests_answer_4xx_without_killing_workers() {
        let handle = start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            handler_threads: 1,
            max_body_bytes: 64,
            deadline: Duration::from_millis(300),
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = handle.addr();
        let bad = [
            "garbage\r\n\r\n",
            "GET\r\n\r\n",
            "get /healthz HTTP/1.1\r\n\r\n",
            "GET /healthz SPDY/9\r\n\r\n",
            "POST /v1/simulate HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "POST /v1/simulate HTTP/1.1\r\nContent-Length: 999\r\n\r\n{}",
            "GET nopath HTTP/1.1\r\n\r\n",
        ];
        for raw in bad {
            let reply = request(addr, raw);
            assert!(
                reply.starts_with("HTTP/1.1 4"),
                "expected 4xx for {raw:?}, got {reply:?}"
            );
        }
        // The single worker must still be alive.
        assert!(get(addr, "/healthz").starts_with("HTTP/1.1 200"));
        handle.shutdown();
    }

    #[test]
    fn oversized_body_is_413() {
        let handle = start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            handler_threads: 1,
            max_body_bytes: 16,
            ..ServeConfig::default()
        })
        .expect("bind");
        let big = "x".repeat(64);
        let reply = request(
            handle.addr(),
            &format!(
                "POST /v1/simulate HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                big.len(),
                big
            ),
        );
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
        handle.shutdown();
    }

    #[test]
    fn oversized_headers_are_431() {
        let handle = start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            handler_threads: 1,
            ..ServeConfig::default()
        })
        .expect("bind");
        let reply = request(
            handle.addr(),
            &format!(
                "GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
                "a".repeat(http::MAX_HEAD_BYTES + 1)
            ),
        );
        assert!(reply.starts_with("HTTP/1.1 431"), "{reply}");
        handle.shutdown();
    }
}
