//! The HTTP server: bounded accept queue, fixed handler pool, routes.
//!
//! The shape is deliberately boring — `std::net::TcpListener`, a
//! `Mutex<VecDeque>` + `Condvar` connection queue, and a fixed number
//! of handler threads — because boring is what survives a fuzzer. The
//! interesting properties are the bounds: the queue has a hard
//! capacity (overflow answers `503` + `Retry-After` immediately, the
//! paper-approved way to shed load without stalling the accept loop),
//! every socket carries a read/write deadline, request bodies have a
//! byte cap, and handler panics are caught and answered as `500`
//! without taking the thread down.
//!
//! Shutdown is cooperative: [`ShutdownTrigger::request`] (also wired
//! to `POST /v1/shutdown`) flips the stop flag; the accept loop closes
//! the listener, handlers drain every connection already queued, and
//! [`ServerHandle::shutdown`] joins all threads and flushes telemetry.

use crate::engine::{self, EngineError, SimQuery};
use crate::http::{self, Request, RequestError, Response};
use crate::obs::{self, AccessLog, AccessRecord};
use accordion_chip::popcache;
use accordion_telemetry::event::SimEvent;
use accordion_telemetry::registry::exponential_bounds;
use accordion_telemetry::rolling::RollingHistogram;
use accordion_telemetry::{counter, flight, flight_track, histogram, json, prom, sink};
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Artifact generation injected by the binary crate (`repro`). The
/// service crate cannot depend on `accordion-bench` (which depends on
/// everything, including — via the CLI — this crate), so the registry
/// arrives as data: the artifact id list and a generator function.
#[derive(Clone, Copy)]
pub struct ArtifactSource {
    /// Registered artifact ids, e.g. `fig5a`, `tab3`.
    pub ids: &'static [&'static str],
    /// Generates one artifact at a population size; `None` for an
    /// unknown id.
    pub generate: fn(&str, usize) -> Option<String>,
}

/// Server configuration. `Default` matches the CLI defaults.
#[derive(Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080`. Port `0` picks an
    /// ephemeral port (tests use this).
    pub addr: String,
    /// Handler threads — the number of requests in service at once.
    pub handler_threads: usize,
    /// Pool workers available to a single request (sweep fan-out).
    pub request_jobs: usize,
    /// Accepted-but-unhandled connection cap; beyond it, `503`.
    pub queue_capacity: usize,
    /// Request body cap in bytes (`413` beyond it).
    pub max_body_bytes: usize,
    /// Socket read/write deadline per request.
    pub deadline: Duration,
    /// Artifact generation hook, if the host binary provides one.
    pub artifacts: Option<ArtifactSource>,
    /// Enables `POST /v1/debug/sleep` (tests only — lets a test pin
    /// every handler thread deterministically).
    pub debug_endpoints: bool,
    /// JSONL access-log path (`repro serve --access-log`); `None`
    /// disables access logging.
    pub access_log: Option<String>,
    /// Include wall-clock fields (`queue_us`, `latency_us`) in access
    /// log lines. The determinism test turns this off to pin the file
    /// byte-identical at any `request_jobs`.
    pub log_timing: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_string(),
            handler_threads: 4,
            request_jobs: 2,
            queue_capacity: 128,
            max_body_bytes: 1 << 20,
            deadline: Duration::from_secs(30),
            artifacts: None,
            debug_endpoints: false,
            access_log: None,
            log_timing: true,
        }
    }
}

/// One accepted connection waiting for a handler: the socket, its
/// accept-order request id, and when it was accepted (queue-wait
/// accounting).
struct QueuedConn {
    stream: TcpStream,
    id: u64,
    accepted: Instant,
}

struct Shared {
    cfg: ServeConfig,
    /// Bound address; shutdown connects to it to unpark `accept(2)`.
    addr: SocketAddr,
    queue: Mutex<VecDeque<QueuedConn>>,
    available: Condvar,
    stop: AtomicBool,
    /// Accept-order request id source (first request gets id 1).
    next_id: AtomicU64,
    /// Requests currently inside a handler.
    in_flight: AtomicU64,
    /// Requests fully answered (including error responses).
    handled: AtomicU64,
    /// Connections shed with `503` at the queue.
    shed: AtomicU64,
    /// Server start, for `/healthz` uptime and the uptime gauge.
    started: Instant,
    /// JSONL access log, when configured.
    log: Option<AccessLog>,
}

impl Shared {
    /// Flips the stop flag, wakes the handlers, and unparks the accept
    /// loop (blocked in `accept(2)`) with a throwaway self-connection.
    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.available.notify_all();
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }
}

/// Requests a running server to stop; clonable and usable from any
/// thread (the CLI hands one to its stdin watcher, the router wires
/// one to `POST /v1/shutdown`).
#[derive(Clone)]
pub struct ShutdownTrigger {
    shared: Arc<Shared>,
}

impl ShutdownTrigger {
    /// Flips the stop flag and wakes every handler. Idempotent.
    pub fn request(&self) {
        self.shared.request_stop();
    }

    /// Whether shutdown has been requested.
    pub fn is_requested(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }
}

/// A running server: the bound address plus the threads serving it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actual bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A trigger that can stop this server from another thread.
    pub fn trigger(&self) -> ShutdownTrigger {
        ShutdownTrigger {
            shared: self.shared.clone(),
        }
    }

    /// Blocks until the server has stopped (externally triggered or
    /// via `POST /v1/shutdown`), then joins threads and flushes
    /// telemetry. Queued connections are drained, not dropped.
    pub fn join(mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.handlers.drain(..) {
            let _ = t.join();
        }
        sink::flush();
    }

    /// Requests shutdown and then [`join`](Self::join)s.
    pub fn shutdown(self) {
        self.trigger().request();
        self.join();
    }
}

/// Binds and starts the server; returns once the listener is live.
///
/// # Errors
///
/// Propagates the bind failure (address in use, permission).
pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let log = match &cfg.access_log {
        Some(path) => Some(AccessLog::create(path, cfg.log_timing)?),
        None => None,
    };
    describe_metrics();
    let shared = Arc::new(Shared {
        cfg,
        addr,
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        stop: AtomicBool::new(false),
        next_id: AtomicU64::new(0),
        in_flight: AtomicU64::new(0),
        handled: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        started: Instant::now(),
        log,
    });

    let accept = {
        let shared = shared.clone();
        thread::Builder::new()
            .name("served-accept".into())
            .spawn(move || accept_loop(&listener, &shared))?
    };
    let mut handlers = Vec::with_capacity(shared.cfg.handler_threads);
    for i in 0..shared.cfg.handler_threads.max(1) {
        let shared = shared.clone();
        handlers.push(
            thread::Builder::new()
                .name(format!("served-worker-{i}"))
                .spawn(move || handler_loop(&shared))?,
        );
    }
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        handlers,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    // Blocking accept: no poll interval to add to request latency.
    // `request_stop` unparks it with a self-connection.
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stop.load(Ordering::SeqCst) {
                    // The wake-up connection (or a client racing the
                    // shutdown); either way, stop accepting.
                    drop(stream);
                    break;
                }
                enqueue(shared, stream);
            }
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                thread::sleep(Duration::from_millis(5));
            }
        }
    }
    // Wake handlers so they observe the stop flag even with an empty
    // queue.
    shared.available.notify_all();
}

fn enqueue(shared: &Shared, mut stream: TcpStream) {
    let accepted = Instant::now();
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;
    let mut queue = shared.queue.lock().expect("connection queue poisoned");
    if queue.len() >= shared.cfg.queue_capacity {
        drop(queue);
        counter!("served.http.rejected_queue_full").inc();
        shared.shed.fetch_add(1, Ordering::Relaxed);
        // Shed load inline: a one-line 503 is cheap enough for the
        // accept thread and tells a well-behaved client when to retry.
        let resp = Response::error(503, "server saturated; retry shortly")
            .with_header("Retry-After", "1".to_string());
        let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
        resp.write_to(&mut stream);
        // Satellite 1: sheds are first-class outcomes — they land in
        // the latency histogram (the shed path's latency is the 503
        // turnaround) and in the access log, not just a counter.
        let us = accepted.elapsed().as_micros() as f64;
        request_hist("shed").record(us);
        outcome_counter("shed").inc();
        if let Some(log) = &shared.log {
            log.write(&AccessRecord {
                id,
                method: "-".into(),
                path: "-".into(),
                status: 503,
                outcome: "shed",
                handler: "-",
                cache: "-",
                bytes: resp.body.len() as u64,
                queue_us: 0,
                latency_us: us as u64,
            });
        }
        return;
    }
    queue.push_back(QueuedConn {
        stream,
        id,
        accepted,
    });
    drop(queue);
    shared.available.notify_one();
}

fn handler_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut queue = shared.queue.lock().expect("connection queue poisoned");
            loop {
                if let Some(conn) = queue.pop_front() {
                    break Some(conn);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _) = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("connection queue poisoned");
                queue = q;
            }
        };
        // Even after stop, the queue is drained before the loop above
        // returns None — connections the accept loop already admitted
        // are served, not dropped.
        match conn {
            Some(conn) => handle_conn(shared, conn),
            None => return,
        }
    }
}

/// Latency bucket edges: 1 µs .. ~8.4 s, powers of two.
fn latency_bounds() -> Vec<f64> {
    exponential_bounds(1.0, 2.0, 24)
}

/// The rolling request-latency histogram for one outcome class
/// (60-second SLO window; `/metrics` renders all outcomes as one
/// labeled histogram family).
fn request_hist(outcome: &'static str) -> &'static RollingHistogram {
    accordion_telemetry::registry::global().rolling_histogram(
        "served.http.request_latency_us",
        &[("outcome", outcome)],
        &latency_bounds(),
        60.0,
    )
}

/// Lifetime request counter per outcome class.
fn outcome_counter(outcome: &'static str) -> &'static accordion_telemetry::registry::Counter {
    accordion_telemetry::registry::global()
        .labeled_counter("served.http.requests_by_outcome", &[("outcome", outcome)])
}

/// Registers `# HELP` texts and the constant build-info sample.
/// Idempotent; called from [`start`].
fn describe_metrics() {
    let reg = accordion_telemetry::registry::global();
    reg.describe(
        "served.http.request_latency_us",
        "request latency by outcome, microseconds",
    );
    reg.describe(
        "served.http.requests_by_outcome",
        "requests answered, by outcome class",
    );
    reg.describe("served.http.requests", "connections handled");
    reg.describe(
        "served.http.latency_us",
        "lifetime request latency, microseconds",
    );
    reg.describe("served.queue.depth", "connections waiting for a handler");
    reg.describe(
        "served.http.in_flight",
        "requests currently inside a handler",
    );
    reg.describe("served.http.shed", "connections shed with 503 at the queue");
    reg.describe("served.uptime.seconds", "seconds since the server started");
    reg.describe(
        "served.popcache.hit_ratio",
        "population cache lifetime hit ratio",
    );
    reg.describe("served.build.info", "build metadata; value is always 1");
    reg.labeled_gauge(
        "served.build.info",
        &[
            ("version", env!("CARGO_PKG_VERSION")),
            (
                "profile",
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                },
            ),
        ],
    )
    .set(1.0);
}

/// Logical handler name for the access log (bounded vocabulary, never
/// the raw path).
fn handler_name(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("GET", "/healthz") => "healthz",
        ("GET", "/metrics") => "metrics",
        ("GET", "/v1/artifacts") => "artifacts_list",
        ("POST", "/v1/simulate") => "simulate",
        ("POST", "/v1/sweep") => "sweep",
        ("POST", "/v1/shutdown") => "shutdown",
        ("POST", "/v1/debug/sleep") => "debug_sleep",
        ("GET", p) if p.starts_with("/v1/artifacts/") => "artifact",
        _ => "other",
    }
}

fn handle_conn(shared: &Shared, conn: QueuedConn) {
    let QueuedConn {
        mut stream,
        id,
        accepted,
    } = conn;
    let queue_us = accepted.elapsed().as_micros() as u64;
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(shared.cfg.deadline));
    let _ = stream.set_write_timeout(Some(shared.cfg.deadline));
    counter!("served.http.requests").inc();
    shared.in_flight.fetch_add(1, Ordering::Relaxed);
    // Request id → thread-local context, pool task tag, and flight
    // track: every downstream layer can name this request without a
    // context argument (see `crate::obs`).
    obs::begin_request(id);
    accordion_pool::set_task_tag(id);
    let _track = flight_track!("req{:08}", id);
    histogram!(
        "served.http.queue_wait_us",
        exponential_bounds(1.0, 2.0, 24)
    )
    .record(queue_us as f64);

    let parse_started = Instant::now();
    let parsed = http::read_request(&mut stream, shared.cfg.max_body_bytes);
    let parse_us = parse_started.elapsed().as_micros() as u64;
    accordion_telemetry::event::advance_sim(parse_us);
    flight!(SimEvent::ServeStage {
        stage: "serve.parse",
        us: parse_us,
    });

    let mut method = "-".to_string();
    let mut path = "-".to_string();
    let response = match parsed {
        Ok(req) => {
            method.clone_from(&req.method);
            path.clone_from(&req.path);
            obs::note_handler(handler_name(&req.method, &req.path));
            let handle_started = Instant::now();
            // A route handler panicking (a bug) must answer 500 and
            // leave the worker alive for the next request.
            let routed = match catch_unwind(AssertUnwindSafe(|| route(shared, &req))) {
                Ok(resp) => resp,
                Err(_) => {
                    counter!("served.http.panics").inc();
                    Routed::Plain(Response::error(500, "internal error (handler panicked)"))
                }
            };
            let handle_us = handle_started.elapsed().as_micros() as u64;
            accordion_telemetry::event::advance_sim(handle_us);
            flight!(SimEvent::ServeStage {
                stage: "serve.handle",
                us: handle_us,
            });
            routed
        }
        Err(RequestError::Bad(msg)) => Routed::Plain(Response::error(400, &msg)),
        Err(RequestError::TooLarge) => {
            Routed::Plain(Response::error(413, "request exceeds size limits"))
        }
        Err(RequestError::Timeout) => Routed::Plain(Response::error(408, "request timed out")),
        Err(RequestError::Disconnected) => {
            counter!("served.http.disconnects").inc();
            accordion_pool::set_task_tag(0);
            let _ = obs::end_request();
            shared.in_flight.fetch_sub(1, Ordering::Relaxed);
            return;
        }
    };
    let write_started = Instant::now();
    let (status, bytes) = match response {
        Routed::Plain(resp) => {
            count_response(resp.status);
            resp.write_to(&mut stream);
            (resp.status, resp.body.len() as u64)
        }
        Routed::Artifact { id, chips, source } => stream_artifact(&mut stream, &id, chips, source),
    };
    let write_us = write_started.elapsed().as_micros() as u64;
    accordion_telemetry::event::advance_sim(write_us);
    flight!(SimEvent::ServeStage {
        stage: "serve.serialize",
        us: write_us,
    });

    let us = started.elapsed().as_micros();
    let outcome = obs::outcome_of(status);
    histogram!("served.http.latency_us", exponential_bounds(1.0, 2.0, 24)).record(us as f64);
    request_hist(outcome).record(us as f64);
    outcome_counter(outcome).inc();
    flight!(SimEvent::RequestRetire {
        status: u64::from(status),
        bytes,
        us: us as u64,
    });
    accordion_pool::set_task_tag(0);
    let ctx = obs::end_request().unwrap_or_default();
    if let Some(log) = &shared.log {
        log.write(&AccessRecord {
            id,
            method,
            path,
            status,
            outcome,
            handler: ctx.handler,
            cache: match ctx.cache_hit {
                Some(true) => "hit",
                Some(false) => "miss",
                None => "-",
            },
            bytes,
            queue_us,
            latency_us: us as u64,
        });
    }
    shared.handled.fetch_add(1, Ordering::Relaxed);
    shared.in_flight.fetch_sub(1, Ordering::Relaxed);
}

// Not `counter!`: that macro caches the handle per call site, which
// would pin whichever class fired first. Resolve by name each time.
fn count_response(status: u16) {
    let name = match status {
        200..=299 => "served.http.responses.2xx",
        400..=499 => "served.http.responses.4xx",
        _ => "served.http.responses.5xx",
    };
    accordion_telemetry::registry::global().counter(name).inc();
}

/// Route outcome: either a fully-formed response, or an artifact to
/// stream chunked (its length is unknown until generated).
enum Routed {
    Plain(Response),
    Artifact {
        id: String,
        chips: usize,
        source: ArtifactSource,
    },
}

fn route(shared: &Shared, req: &Request) -> Routed {
    let plain = |r: Response| Routed::Plain(r);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => plain(healthz(shared)),
        ("GET", "/metrics") => plain(metrics(shared)),
        ("GET", "/v1/artifacts") => plain(list_artifacts(shared)),
        ("POST", "/v1/simulate") => plain(simulate(req)),
        ("POST", "/v1/sweep") => plain(sweep(shared, req)),
        ("POST", "/v1/shutdown") => {
            shared.request_stop();
            plain(Response::json(
                200,
                json::Json::obj(vec![("status", json::Json::str("stopping"))]).render(),
            ))
        }
        ("POST", "/v1/debug/sleep") if shared.cfg.debug_endpoints => plain(debug_sleep(req)),
        ("GET", path) if path.starts_with("/v1/artifacts/") => {
            let id = path["/v1/artifacts/".len()..].to_string();
            let Some(source) = shared.cfg.artifacts else {
                return plain(Response::error(
                    404,
                    "artifact generation is not wired into this server",
                ));
            };
            if !source.ids.contains(&id.as_str()) {
                return plain(Response::error(404, &format!("unknown artifact {id:?}")));
            }
            let chips = match req.query_value("chips").map(str::parse::<usize>) {
                None => 8,
                Some(Ok(n)) if (1..=100).contains(&n) => n,
                Some(_) => {
                    return plain(Response::error(400, "chips must be an integer in [1, 100]"))
                }
            };
            Routed::Artifact { id, chips, source }
        }
        (_, "/healthz" | "/metrics" | "/v1/artifacts")
        | ("GET" | "PUT" | "DELETE", "/v1/simulate" | "/v1/sweep") => {
            plain(Response::error(405, "method not allowed"))
        }
        _ => plain(Response::error(404, "no such endpoint")),
    }
}

/// Renders `/metrics`: refreshes the point-in-time serving gauges,
/// then emits the whole registry in Prometheus exposition format.
fn metrics(shared: &Shared) -> Response {
    let reg = accordion_telemetry::registry::global();
    let depth = shared
        .queue
        .lock()
        .expect("connection queue poisoned")
        .len();
    reg.gauge("served.queue.depth").set(depth as f64);
    reg.gauge("served.http.in_flight")
        .set(shared.in_flight.load(Ordering::Relaxed) as f64);
    reg.gauge("served.http.shed")
        .set(shared.shed.load(Ordering::Relaxed) as f64);
    reg.gauge("served.uptime.seconds")
        .set(shared.started.elapsed().as_secs_f64());
    let (hits, misses) = popcache::stats();
    let total = hits + misses;
    reg.gauge("served.popcache.hit_ratio").set(if total > 0 {
        hits as f64 / total as f64
    } else {
        0.0
    });
    Response::text(200, prom::render(accordion_telemetry::registry::global()))
        .with_header("X-Content-Type-Options", "nosniff".to_string())
}

fn healthz(shared: &Shared) -> Response {
    let doc = json::Json::obj(vec![
        ("status", json::Json::str("ok")),
        (
            "queue_capacity",
            json::Json::Num(shared.cfg.queue_capacity as f64),
        ),
        (
            "queue_depth",
            json::Json::Num(
                shared
                    .queue
                    .lock()
                    .expect("connection queue poisoned")
                    .len() as f64,
            ),
        ),
        (
            "handler_threads",
            json::Json::Num(shared.cfg.handler_threads as f64),
        ),
        (
            "in_flight",
            json::Json::Num(shared.in_flight.load(Ordering::Relaxed) as f64),
        ),
        (
            "handled",
            json::Json::Num(shared.handled.load(Ordering::Relaxed) as f64),
        ),
        (
            "shed",
            json::Json::Num(shared.shed.load(Ordering::Relaxed) as f64),
        ),
        (
            "uptime_seconds",
            json::Json::Num(shared.started.elapsed().as_secs() as f64),
        ),
        (
            "caches",
            json::Json::obj(vec![
                ("populations", json::Json::Num(popcache::len() as f64)),
                (
                    "variation_samplers",
                    json::Json::Num(accordion_varius::vmap::sampler_cache_len() as f64),
                ),
            ]),
        ),
    ]);
    Response::json(200, doc.render())
}

fn list_artifacts(shared: &Shared) -> Response {
    let ids: Vec<json::Json> = shared
        .cfg
        .artifacts
        .map(|s| s.ids.iter().map(|id| json::Json::str(*id)).collect())
        .unwrap_or_default();
    let doc = json::Json::obj(vec![
        ("count", json::Json::Num(ids.len() as f64)),
        ("artifacts", json::Json::Arr(ids)),
    ]);
    Response::json(200, doc.render())
}

fn parse_body(req: &Request) -> Result<json::Json, Response> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| Response::error(400, "body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Ok(json::Json::Obj(Vec::new()));
    }
    json::parse(text).map_err(|e| Response::error(400, &format!("body is not JSON: {e}")))
}

fn simulate(req: &Request) -> Response {
    let doc = match parse_body(req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    let query = match SimQuery::from_json(&doc) {
        Ok(q) => q,
        Err(msg) => return Response::error(400, &msg),
    };
    match engine::simulate(&query) {
        Ok(body) => Response::json(200, body.render()),
        Err(e) => engine_error(&e),
    }
}

fn sweep(shared: &Shared, req: &Request) -> Response {
    let doc = match parse_body(req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    match engine::sweep(&doc, shared.cfg.request_jobs) {
        Ok(body) => Response::json(200, body.render()),
        Err(e) => engine_error(&e),
    }
}

fn engine_error(e: &EngineError) -> Response {
    match e {
        EngineError::Bad(msg) => Response::error(400, msg),
        EngineError::Internal(msg) => {
            counter!("served.engine.internal_errors").inc();
            Response::error(500, msg)
        }
    }
}

fn debug_sleep(req: &Request) -> Response {
    let ms = parse_body(req)
        .ok()
        .and_then(|d| d.get("ms").and_then(json::Json::as_f64))
        .unwrap_or(50.0)
        .clamp(0.0, 5000.0);
    thread::sleep(Duration::from_millis(ms as u64));
    Response::json(
        200,
        json::Json::obj(vec![("slept_ms", json::Json::Num(ms))]).render(),
    )
}

/// Streams one artifact chunked; returns `(status, body bytes)` for
/// the access log and outcome accounting.
fn stream_artifact(
    stream: &mut TcpStream,
    id: &str,
    chips: usize,
    source: ArtifactSource,
) -> (u16, u64) {
    counter!("served.artifacts.requests").inc();
    // Headers go out before generation so the client learns the
    // request was accepted; the body follows as one chunk when ready
    // (generation can take seconds for the protocol-heavy figures).
    let Ok(mut writer) = http::begin_chunked(stream, "text/plain; charset=utf-8") else {
        return (200, 0);
    };
    let (status, bytes) = match catch_unwind(AssertUnwindSafe(|| (source.generate)(id, chips))) {
        Ok(Some(text)) => {
            let _ = writer.chunk(text.as_bytes());
            let _ = writer.finish();
            counter!("served.http.responses.2xx").inc();
            (200, text.len() as u64)
        }
        Ok(None) => {
            // Validated before routing here; a miss now means the
            // registry changed under us. Mark the stream as failed by
            // dropping it without the terminal chunk.
            counter!("served.http.responses.5xx").inc();
            (500, 0)
        }
        Err(_) => {
            counter!("served.http.panics").inc();
            let _ = writer.chunk(b"\n# ERROR: artifact generation panicked\n");
            let _ = writer.finish();
            counter!("served.http.responses.5xx").inc();
            (500, 0)
        }
    };
    let _ = stream.flush();
    (status, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(raw.as_bytes()).expect("send");
        let mut out = String::new();
        let _ = conn.read_to_string(&mut out);
        out
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        request(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
        )
    }

    #[test]
    fn healthz_and_routing_basics() {
        let handle = start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            handler_threads: 2,
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = handle.addr();
        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let wrong_method = get(addr, "/v1/simulate");
        assert!(wrong_method.starts_with("HTTP/1.1 405"), "{wrong_method}");
        let metrics = get(addr, "/metrics");
        assert!(metrics.contains("served_http_requests"), "{metrics}");
        handle.shutdown();
    }

    #[test]
    fn malformed_requests_answer_4xx_without_killing_workers() {
        let handle = start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            handler_threads: 1,
            max_body_bytes: 64,
            deadline: Duration::from_millis(300),
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = handle.addr();
        let bad = [
            "garbage\r\n\r\n",
            "GET\r\n\r\n",
            "get /healthz HTTP/1.1\r\n\r\n",
            "GET /healthz SPDY/9\r\n\r\n",
            "POST /v1/simulate HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "POST /v1/simulate HTTP/1.1\r\nContent-Length: 999\r\n\r\n{}",
            "GET nopath HTTP/1.1\r\n\r\n",
        ];
        for raw in bad {
            let reply = request(addr, raw);
            assert!(
                reply.starts_with("HTTP/1.1 4"),
                "expected 4xx for {raw:?}, got {reply:?}"
            );
        }
        // The single worker must still be alive.
        assert!(get(addr, "/healthz").starts_with("HTTP/1.1 200"));
        handle.shutdown();
    }

    #[test]
    fn oversized_body_is_413() {
        let handle = start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            handler_threads: 1,
            max_body_bytes: 16,
            ..ServeConfig::default()
        })
        .expect("bind");
        let big = "x".repeat(64);
        let reply = request(
            handle.addr(),
            &format!(
                "POST /v1/simulate HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                big.len(),
                big
            ),
        );
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
        handle.shutdown();
    }
}
