//! Serving-path observability: per-request context and the structured
//! JSONL access log.
//!
//! # Request context
//!
//! Each accepted connection gets a **request id** from a per-server
//! accept-order counter. The handler thread installs a [`RequestCtx`]
//! (thread-local) for the duration of the request; layers below the
//! router — today the engine's population-cache lookup — annotate it
//! via [`note_cache`] / [`note_handler`] without threading a context
//! argument through every signature. The id also becomes the pool
//! task tag and the flight-recorder track name (`req00000001`), so a
//! Chrome trace groups a request's parse/cache/fanout/serialize
//! stages under one deterministic track.
//!
//! # Access log determinism
//!
//! One JSON object per line, fields in fixed order, rendered by the
//! deterministic [`accordion_telemetry::json`] renderer. The logical
//! fields (id, method, path, status, outcome, handler, cache, bytes)
//! depend only on the request stream, not on scheduling, so with
//! timing disabled (`log_timing: false` in the server config) the file
//! is **byte-identical at any `--jobs`** for a serial client — pinned
//! by `tests/observability.rs`. With timing enabled (the default) each
//! line additionally carries `queue_us` / `latency_us` wall-clock
//! fields.

use accordion_telemetry::json::Json;
use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::Mutex;

/// Mutable per-request annotations, set by layers below the router.
#[derive(Debug, Clone, Default)]
pub struct RequestCtx {
    /// Accept-order request id (1-based; 0 = no request active).
    pub id: u64,
    /// Population-cache outcome: `Some(true)` hit, `Some(false)` miss,
    /// `None` when the request never touched the cache.
    pub cache_hit: Option<bool>,
    /// Logical handler name (`simulate`, `sweep`, `metrics`, ...).
    pub handler: &'static str,
}

thread_local! {
    static CTX: RefCell<Option<RequestCtx>> = const { RefCell::new(None) };
}

/// Installs a fresh request context on this thread. Called by the
/// server's handler loop; pairs with [`end_request`].
pub fn begin_request(id: u64) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(RequestCtx {
            id,
            cache_hit: None,
            handler: "-",
        });
    });
}

/// Removes and returns the thread's request context (if any).
pub fn end_request() -> Option<RequestCtx> {
    CTX.with(|c| c.borrow_mut().take())
}

/// Records the population-cache outcome of the current request. The
/// first annotation wins (a sweep touches the cache once per warmup,
/// then per point; the warmup is the interesting one). No-op outside a
/// request.
pub fn note_cache(hit: bool) {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            if ctx.cache_hit.is_none() {
                ctx.cache_hit = Some(hit);
            }
        }
    });
}

/// Names the logical handler serving the current request. No-op
/// outside a request.
pub fn note_handler(name: &'static str) {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            ctx.handler = name;
        }
    });
}

/// The current request's id (0 outside a request).
pub fn current_id() -> u64 {
    CTX.with(|c| c.borrow().as_ref().map_or(0, |ctx| ctx.id))
}

/// Everything one access-log line reports. Timing fields are skipped
/// when the log was opened with `log_timing: false`.
#[derive(Debug, Clone)]
pub struct AccessRecord {
    /// Accept-order request id.
    pub id: u64,
    /// Request method, `"-"` when the request was never parsed (shed).
    pub method: String,
    /// Request path, `"-"` when never parsed.
    pub path: String,
    /// HTTP status answered.
    pub status: u16,
    /// Outcome class: `ok|shed|timeout|too_large|error`.
    pub outcome: &'static str,
    /// Logical handler name, `"-"` when no route ran.
    pub handler: &'static str,
    /// Population-cache outcome: `hit`, `miss`, or `-`.
    pub cache: &'static str,
    /// Response body bytes.
    pub bytes: u64,
    /// Queue wait (accept → handler pickup), microseconds.
    pub queue_us: u64,
    /// Total handler latency, microseconds.
    pub latency_us: u64,
}

/// Maps an HTTP status to its `outcome` label (satellite 1's contract:
/// sheds, timeouts and early rejects are first-class outcomes, not
/// holes in the latency histogram).
pub fn outcome_of(status: u16) -> &'static str {
    match status {
        200..=299 => "ok",
        408 => "timeout",
        413 => "too_large",
        503 => "shed",
        _ => "error",
    }
}

/// A shared JSONL access-log writer. Lines are serialized under a
/// mutex (handler threads and the accept thread both write), flushed
/// per line so a crashed or killed server loses at most the line in
/// flight.
pub struct AccessLog {
    out: Mutex<BufWriter<File>>,
    timing: bool,
}

impl AccessLog {
    /// Creates (truncates) the log file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation failure.
    pub fn create(path: &str, timing: bool) -> std::io::Result<Self> {
        Ok(Self {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
            timing,
        })
    }

    /// Appends one alert state transition as a single JSON line. Alert
    /// lines are distinguished from request lines by the leading
    /// `"type":"alert"` field (request lines lead with `"id"`), so a
    /// log consumer can split the two streams with one key probe.
    pub fn write_alert(&self, name: &str, from: &str, to: &str, at_ms: u64) {
        let line = Json::obj(vec![
            ("type", Json::str("alert")),
            ("alert", Json::str(name)),
            ("from", Json::str(from)),
            ("to", Json::str(to)),
            ("at_ms", Json::Num(at_ms as f64)),
        ])
        .render();
        let mut out = self.out.lock().expect("access log lock");
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
        let _ = out.flush();
    }

    /// Appends one record as a single JSON line.
    pub fn write(&self, rec: &AccessRecord) {
        let mut fields = vec![
            ("id", Json::Num(rec.id as f64)),
            ("method", Json::str(&rec.method)),
            ("path", Json::str(&rec.path)),
            ("status", Json::Num(f64::from(rec.status))),
            ("outcome", Json::str(rec.outcome)),
            ("handler", Json::str(rec.handler)),
            ("cache", Json::str(rec.cache)),
            ("bytes", Json::Num(rec.bytes as f64)),
        ];
        if self.timing {
            fields.push(("queue_us", Json::Num(rec.queue_us as f64)));
            fields.push(("latency_us", Json::Num(rec.latency_us as f64)));
        }
        let line = Json::obj(fields).render();
        let mut out = self.out.lock().expect("access log lock");
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_annotations_round_trip() {
        begin_request(3);
        assert_eq!(current_id(), 3);
        note_cache(true);
        note_cache(false); // first annotation wins
        note_handler("simulate");
        let ctx = end_request().expect("ctx installed");
        assert_eq!(ctx.id, 3);
        assert_eq!(ctx.cache_hit, Some(true));
        assert_eq!(ctx.handler, "simulate");
        assert!(end_request().is_none());
        assert_eq!(current_id(), 0);
    }

    #[test]
    fn annotations_outside_a_request_are_noops() {
        note_cache(true);
        note_handler("x");
        assert!(end_request().is_none());
    }

    #[test]
    fn outcome_classes() {
        assert_eq!(outcome_of(200), "ok");
        assert_eq!(outcome_of(204), "ok");
        assert_eq!(outcome_of(408), "timeout");
        assert_eq!(outcome_of(413), "too_large");
        assert_eq!(outcome_of(503), "shed");
        for s in [400, 404, 405, 500] {
            assert_eq!(outcome_of(s), "error");
        }
    }

    #[test]
    fn access_log_lines_are_stable_json() {
        let dir = std::env::temp_dir().join("accordion-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.jsonl");
        let log = AccessLog::create(path.to_str().unwrap(), false).unwrap();
        log.write(&AccessRecord {
            id: 1,
            method: "POST".into(),
            path: "/v1/simulate".into(),
            status: 200,
            outcome: "ok",
            handler: "simulate",
            cache: "hit",
            bytes: 42,
            queue_us: 5,
            latency_us: 100,
        });
        let text = std::fs::read_to_string(&path).unwrap();
        // Timing disabled: no wall-clock fields in the line.
        assert_eq!(
            text,
            "{\"id\":1,\"method\":\"POST\",\"path\":\"/v1/simulate\",\
             \"status\":200,\"outcome\":\"ok\",\"handler\":\"simulate\",\
             \"cache\":\"hit\",\"bytes\":42}\n"
        );
        let _ = std::fs::remove_file(&path);
    }
}
