//! Property-based tests for the RMS kernels' shared contract.

use accordion_apps::app::all_apps;
use accordion_apps::config::{thread_range, RunConfig};
use proptest::prelude::*;

proptest! {
    #[test]
    fn thread_ranges_partition_and_balance(items in 0usize..10_000, threads in 1usize..300) {
        let mut total = 0;
        let mut min_len = usize::MAX;
        let mut max_len = 0;
        let mut prev_end = 0;
        for t in 0..threads {
            let (s, e) = thread_range(items, threads, t);
            prop_assert_eq!(s, prev_end, "ranges must be contiguous");
            prev_end = e;
            total += e - s;
            min_len = min_len.min(e - s);
            max_len = max_len.max(e - s);
        }
        prop_assert_eq!(total, items);
        prop_assert!(max_len - min_len <= 1, "block partition must balance");
    }

    #[test]
    fn drop_config_live_count(threads in 1usize..256, quarters in 0u8..5) {
        let fraction = quarters as f64 / 4.0;
        let cfg = RunConfig::with_drop(threads, fraction);
        let live = cfg.live_threads();
        let expected = threads - (threads as f64 * fraction).floor() as usize;
        prop_assert!(live.abs_diff(expected) <= 1);
    }
}

// Kernel-level properties run on reduced instances: keep case counts
// small because each case executes a real kernel.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn all_kernels_deterministic_under_seed(seed in 0u64..1000) {
        for app in all_apps() {
            let mut cfg = RunConfig::default_run(8);
            cfg.seed = seed;
            let knob = app.default_knob();
            prop_assert_eq!(app.run(knob, &cfg), app.run(knob, &cfg), "{}", app.name());
        }
    }

    #[test]
    fn outputs_always_finite(seed in 0u64..1000, quarters in 0u8..3) {
        let fraction = quarters as f64 / 4.0;
        for app in all_apps() {
            let mut cfg = RunConfig::with_drop(8, fraction);
            cfg.seed = seed;
            let out = app.run(app.default_knob(), &cfg);
            prop_assert!(!out.is_empty(), "{}", app.name());
            prop_assert!(out.iter().all(|v| v.is_finite()), "{}", app.name());
        }
    }

    #[test]
    fn self_quality_is_maximal(seed in 0u64..1000) {
        for app in all_apps() {
            let mut cfg = RunConfig::default_run(8);
            cfg.seed = seed;
            let out = app.run(app.default_knob(), &cfg);
            let q_self = app.quality(&out, &out);
            // A mildly perturbed output must not beat the identity.
            let perturbed: Vec<f64> = out.iter().map(|v| v + 0.05 * v.abs() + 0.01).collect();
            let q_pert = app.quality(&perturbed, &out);
            prop_assert!(q_self >= q_pert - 1e-9, "{}", app.name());
        }
    }

    #[test]
    fn problem_size_positive_over_sweep(_x in 0u8..1) {
        for app in all_apps() {
            for knob in app.knob_sweep() {
                prop_assert!(app.problem_size(knob) > 0.0, "{}", app.name());
                let w = app.workload(knob);
                prop_assert!(w.work_units > 0.0 && w.instructions_per_unit > 0.0);
                let full = app.full_scale_workload(knob);
                prop_assert!(full.work_units > w.work_units);
            }
        }
    }
}
