//! Table 3 characterization: how problem size and quality depend on
//! the Accordion input.
//!
//! The paper classifies each dependence as *linear* or *complex*.
//! We recover the classification empirically: problem size is judged
//! by its power-law exponent against the knob (|slope| ≈ 1 → linear);
//! quality, which saturates rather than following a power law, is
//! judged by how well a straight line in (knob, quality) explains the
//! sweep.

use crate::app::RmsApp;
use crate::config::RunConfig;
use accordion_stats::fit::{line_fit, power_fit};

/// Dependence type of a quantity on the Accordion input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dependence {
    /// Power-law exponent ≈ 1.
    Linear,
    /// Anything else (super-/sub-linear, non-monotone-in-knob, …).
    Complex,
}

impl std::fmt::Display for Dependence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dependence::Linear => write!(f, "linear"),
            Dependence::Complex => write!(f, "complex"),
        }
    }
}

/// One row of the Table 3 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationRow {
    /// Benchmark name.
    pub app: String,
    /// Accordion input name.
    pub knob: String,
    /// Fitted log-log slope of problem size vs knob.
    pub size_exponent: f64,
    /// Classified size dependence.
    pub size_dependence: Dependence,
    /// R-squared of the straight-line fit of quality vs knob.
    pub quality_r2: f64,
    /// Classified quality dependence.
    pub quality_dependence: Dependence,
}

/// Problem-size classification: power-law exponent of size vs knob;
/// |exponent| ≈ 1 is linear.
fn classify_size(exponent: f64) -> Dependence {
    if (exponent.abs() - 1.0).abs() <= 0.25 {
        Dependence::Linear
    } else {
        Dependence::Complex
    }
}

/// Quality classification: quality saturates rather than following a
/// power law, so "linear" means a straight line in (knob, quality)
/// explains the sweep well; anything the line misses badly — flat,
/// wiggly or strongly convex responses — is complex.
fn classify_quality(r2: f64) -> Dependence {
    if r2 >= 0.75 {
        Dependence::Linear
    } else {
        Dependence::Complex
    }
}

/// Characterizes one benchmark over its knob sweep.
pub fn characterize(app: &dyn RmsApp) -> CharacterizationRow {
    let threads = app.profile_threads();
    let reference = app.run(app.hyper_knob(), &RunConfig::default_run(threads));
    let cfg = RunConfig::default_run(threads);

    let knobs = app.knob_sweep();
    let sizes: Vec<f64> = knobs.iter().map(|&k| app.problem_size(k)).collect();
    let quality: Vec<f64> = knobs
        .iter()
        .map(|&k| app.quality(&app.run(k, &cfg), &reference))
        .collect();

    let size_exponent = power_fit(&knobs, &sizes).slope;
    let quality_r2 = line_fit(&knobs, &quality).r_squared;
    CharacterizationRow {
        app: app.name().to_string(),
        knob: app.knob_name().to_string(),
        size_exponent,
        size_dependence: classify_size(size_exponent),
        quality_r2,
        quality_dependence: classify_quality(quality_r2),
    }
}

/// Characterizes every registered benchmark (the Table 3
/// reproduction).
pub fn characterize_all() -> Vec<CharacterizationRow> {
    crate::all_apps()
        .iter()
        .map(|a| characterize(a.as_ref()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canneal::Canneal;
    use crate::hotspot::Hotspot;
    use crate::x264::X264;

    #[test]
    fn canneal_size_is_linear_in_swaps() {
        let row = characterize(&Canneal::paper_default());
        assert_eq!(row.size_dependence, Dependence::Linear, "{row:?}");
    }

    #[test]
    fn hotspot_size_is_linear_in_iterations() {
        let row = characterize(&Hotspot::paper_default());
        assert_eq!(row.size_dependence, Dependence::Linear, "{row:?}");
    }

    #[test]
    fn x264_size_is_complex_in_qp() {
        // Table 3 marks x264's problem-size dependence complex.
        let row = characterize(&X264::paper_default());
        assert_eq!(row.size_dependence, Dependence::Complex, "{row:?}");
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(classify_size(1.0), Dependence::Linear);
        assert_eq!(classify_size(-1.1), Dependence::Linear);
        assert_eq!(classify_size(2.0), Dependence::Complex);
        assert_eq!(classify_size(0.2), Dependence::Complex);
        assert_eq!(classify_quality(0.95), Dependence::Linear);
        assert_eq!(classify_quality(0.4), Dependence::Complex);
    }
}
