//! Run configuration shared by all kernels.

use accordion_sim::fault::{uniform_drop_mask, CorruptionMode};
use accordion_stats::rng::{SeedStream, StreamRng};

/// How a kernel run is executed across logical threads and which
/// error semantics apply.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Number of logical threads the data-parallel phases partition
    /// over.
    pub threads: usize,
    /// Threads whose data-intensive contribution is dropped (paper
    /// Section 6.2 Drop). Length must equal `threads`.
    pub drop_mask: Vec<bool>,
    /// Optional end-result corruption: the mode and the infected
    /// threads it applies to.
    pub corruption: Option<(CorruptionMode, Vec<bool>)>,
    /// Seed for the kernel's synthetic input and internal randomness.
    pub seed: u64,
}

impl RunConfig {
    /// An error-free run on `threads` threads.
    pub fn default_run(threads: usize) -> Self {
        Self {
            threads,
            drop_mask: vec![false; threads],
            corruption: None,
            seed: 7,
        }
    }

    /// The paper's Drop scenario: a uniform `fraction` of threads
    /// dropped.
    pub fn with_drop(threads: usize, fraction: f64) -> Self {
        Self {
            drop_mask: uniform_drop_mask(threads, fraction),
            ..Self::default_run(threads)
        }
    }

    /// A corruption scenario: a uniform `fraction` of threads infected
    /// and their end results corrupted under `mode`.
    pub fn with_corruption(threads: usize, fraction: f64, mode: CorruptionMode) -> Self {
        Self {
            corruption: Some((mode, uniform_drop_mask(threads, fraction))),
            ..Self::default_run(threads)
        }
    }

    /// Whether thread `t`'s data-intensive work is dropped.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn is_dropped(&self, t: usize) -> bool {
        self.drop_mask[t]
    }

    /// Number of live (non-dropped) threads.
    pub fn live_threads(&self) -> usize {
        self.drop_mask.iter().filter(|&&d| !d).count()
    }

    /// Applies the configured corruption to thread `t`'s end-result
    /// values in place. Returns `false` if the thread's results should
    /// instead be discarded entirely (Drop-style corruption mode).
    pub fn corrupt_thread_results(
        &self,
        t: usize,
        values: &mut [f64],
        rng: &mut StreamRng,
    ) -> bool {
        match &self.corruption {
            Some((mode, infected)) if infected[t] => {
                for v in values.iter_mut() {
                    match mode.corrupt_f64(*v, rng) {
                        Some(c) => *v = c,
                        None => return false,
                    }
                }
                true
            }
            _ => true,
        }
    }

    /// The root seed stream for a kernel run.
    pub fn seed_stream(&self) -> SeedStream {
        SeedStream::new(self.seed)
    }
}

/// Splits `items` indices across `threads` threads in contiguous
/// blocks, returning the `(start, end)` range of thread `t`.
pub fn thread_range(items: usize, threads: usize, t: usize) -> (usize, usize) {
    assert!(threads > 0, "need at least one thread");
    assert!(t < threads, "thread index out of range");
    let base = items / threads;
    let extra = items % threads;
    let start = t * base + t.min(extra);
    let len = base + usize::from(t < extra);
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_run_has_no_errors() {
        let c = RunConfig::default_run(8);
        assert_eq!(c.live_threads(), 8);
        assert!(c.corruption.is_none());
    }

    #[test]
    fn drop_scenario_counts() {
        let c = RunConfig::with_drop(64, 0.25);
        assert_eq!(c.live_threads(), 48);
    }

    #[test]
    fn thread_ranges_partition_exactly() {
        for items in [0, 1, 7, 64, 100] {
            for threads in [1, 3, 8, 64] {
                let mut covered = 0;
                let mut prev_end = 0;
                for t in 0..threads {
                    let (s, e) = thread_range(items, threads, t);
                    assert_eq!(s, prev_end);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, items);
            }
        }
    }

    #[test]
    fn corruption_applies_only_to_infected() {
        use accordion_sim::fault::CorruptionMode;
        let c = RunConfig::with_corruption(4, 0.5, CorruptionMode::Invert);
        let mut rng = c.seed_stream().stream("t", 0);
        let infected = c.corruption.as_ref().unwrap().1.clone();
        for (t, &was_infected) in infected.iter().enumerate() {
            let mut vals = [1.0, 2.0];
            let keep = c.corrupt_thread_results(t, &mut vals, &mut rng);
            assert!(keep);
            if was_infected {
                assert_ne!(vals, [1.0, 2.0]);
            } else {
                assert_eq!(vals, [1.0, 2.0]);
            }
        }
    }

    #[test]
    fn drop_corruption_mode_discards() {
        use accordion_sim::fault::CorruptionMode;
        let c = RunConfig::with_corruption(2, 1.0, CorruptionMode::Drop);
        let mut rng = c.seed_stream().stream("t", 0);
        let mut vals = [1.0];
        assert!(!c.corrupt_thread_results(0, &mut vals, &mut rng));
    }
}
