//! `srad` — Speckle-Reducing Anisotropic Diffusion (Rodinia; paper
//! Section 5.2).
//!
//! Removes correlated multiplicative (speckle) noise from an image by
//! iterating a PDE: directional derivatives → instantaneous
//! coefficient of variation (ICOV) → diffusion coefficients →
//! divergence update. The Accordion input is the iteration count;
//! quality is PSNR-based against the clean image reconstruction of a
//! hyper-accurate run. The Drop hook prevents "calculation of
//! directional derivatives, ICOV, diffusion coefficients, along with
//! divergence and image update" for dropped threads' rows.

use crate::app::RmsApp;
use crate::config::{thread_range, RunConfig};
use accordion_sim::workload::Workload;
use accordion_stats::rng::StreamRng;
use rand::Rng;

/// The srad kernel configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Srad {
    /// Image side length.
    pub side: usize,
    /// Diffusion time step λ.
    pub lambda: f64,
    /// Speckle noise strength (multiplicative).
    pub noise: f64,
}

impl Srad {
    /// Paper-like defaults on a fast 64×64 image.
    pub fn paper_default() -> Self {
        Self {
            side: 64,
            lambda: 0.12,
            noise: 0.25,
        }
    }

    /// The clean synthetic phantom: smooth intensity regions with
    /// sharp boundaries (what SRAD is designed to preserve).
    fn clean_image(&self) -> Vec<f64> {
        let n = self.side;
        let mut img = vec![0.0; n * n];
        for y in 0..n {
            for x in 0..n {
                let fx = x as f64 / n as f64;
                let fy = y as f64 / n as f64;
                let mut v = 80.0;
                // Bright disc.
                if (fx - 0.35).powi(2) + (fy - 0.4).powi(2) < 0.05 {
                    v = 200.0;
                }
                // Dark rectangle.
                if (0.55..0.9).contains(&fx) && (0.55..0.8).contains(&fy) {
                    v = 30.0;
                }
                img[y * n + x] = v;
            }
        }
        img
    }

    /// Applies multiplicative speckle noise.
    fn speckled(&self, clean: &[f64], rng: &mut StreamRng) -> Vec<f64> {
        clean
            .iter()
            .map(|&v| {
                let u: f64 = rng.random::<f64>() - 0.5;
                (v * (1.0 + self.noise * 2.0 * u)).max(1.0)
            })
            .collect()
    }

    fn idx(&self, x: usize, y: usize) -> usize {
        y * self.side + x
    }
}

impl RmsApp for Srad {
    fn name(&self) -> &'static str {
        "srad"
    }

    fn knob_name(&self) -> &'static str {
        "number of iterations"
    }

    fn default_knob(&self) -> f64 {
        32.0
    }

    fn knob_sweep(&self) -> Vec<f64> {
        vec![4.0, 8.0, 16.0, 24.0, 32.0, 48.0, 64.0, 96.0]
    }

    fn hyper_knob(&self) -> f64 {
        256.0
    }

    fn profile_threads(&self) -> usize {
        32 // the paper profiles srad under 32 threads
    }

    fn problem_size(&self, knob: f64) -> f64 {
        knob * (self.side * self.side) as f64
    }

    fn run(&self, knob: f64, cfg: &RunConfig) -> Vec<f64> {
        let n = self.side;
        let seed = cfg.seed_stream();
        let clean = self.clean_image();
        let mut img = self.speckled(&clean, &mut seed.stream("srad-noise", 0));
        let iters = knob.max(0.0).round() as usize;
        let mut corrupt_rng = seed.stream("srad-corrupt", 0);

        let mut coeff = vec![0.0; n * n];
        let mut dn = vec![0.0; n * n];
        let mut ds = vec![0.0; n * n];
        let mut de = vec![0.0; n * n];
        let mut dw = vec![0.0; n * n];

        for _it in 0..iters {
            // Global ICOV scale from the image statistics (the
            // homogeneous-region estimate q0 of the SRAD formulation).
            let mean: f64 = img.iter().sum::<f64>() / img.len() as f64;
            let var: f64 =
                img.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / img.len() as f64;
            let q0_sq = (var / (mean * mean)).max(1e-9);

            // Pass 1: derivatives, ICOV, diffusion coefficient.
            for t in 0..cfg.threads {
                let (r0, r1) = thread_range(n, cfg.threads, t);
                if cfg.is_dropped(t) {
                    continue; // derivative/ICOV/coefficient work prevented
                }
                for y in r0..r1 {
                    for x in 0..n {
                        let c = img[self.idx(x, y)];
                        let north = if y > 0 { img[self.idx(x, y - 1)] } else { c };
                        let south = if y + 1 < n {
                            img[self.idx(x, y + 1)]
                        } else {
                            c
                        };
                        let west = if x > 0 { img[self.idx(x - 1, y)] } else { c };
                        let east = if x + 1 < n {
                            img[self.idx(x + 1, y)]
                        } else {
                            c
                        };
                        let i = self.idx(x, y);
                        dn[i] = north - c;
                        ds[i] = south - c;
                        de[i] = east - c;
                        dw[i] = west - c;
                        let g2 = (dn[i] * dn[i] + ds[i] * ds[i] + de[i] * de[i] + dw[i] * dw[i])
                            / (c * c).max(1e-12);
                        let l = (dn[i] + ds[i] + de[i] + dw[i]) / c.max(1e-6);
                        let num = 0.5 * g2 - 0.0625 * l * l;
                        let den = (1.0 + 0.25 * l).powi(2).max(1e-12);
                        let q_sq = (num / den).max(0.0);
                        // Diffusion coefficient: 1 in homogeneous
                        // regions (q ≈ q0), → 0 at edges (q ≫ q0).
                        coeff[i] = 1.0 / (1.0 + (q_sq - q0_sq) / (q0_sq * (1.0 + q0_sq)));
                        coeff[i] = coeff[i].clamp(0.0, 1.0);
                    }
                }
            }

            // Pass 2: divergence and image update.
            for t in 0..cfg.threads {
                let (r0, r1) = thread_range(n, cfg.threads, t);
                if cfg.is_dropped(t) {
                    continue; // divergence and image update prevented
                }
                for y in r0..r1 {
                    for x in 0..n {
                        let i = self.idx(x, y);
                        let c_s = if y + 1 < n {
                            coeff[self.idx(x, y + 1)]
                        } else {
                            coeff[i]
                        };
                        let c_e = if x + 1 < n {
                            coeff[self.idx(x + 1, y)]
                        } else {
                            coeff[i]
                        };
                        let div = coeff[i] * dn[i] + c_s * ds[i] + coeff[i] * dw[i] + c_e * de[i];
                        img[i] += 0.25 * self.lambda * div;
                    }
                }
            }
        }

        if cfg.corruption.is_some() {
            for t in 0..cfg.threads {
                let (r0, r1) = thread_range(n, cfg.threads, t);
                let mut rows: Vec<f64> = img[r0 * n..r1 * n].to_vec();
                if cfg.corrupt_thread_results(t, &mut rows, &mut corrupt_rng) {
                    img[r0 * n..r1 * n].copy_from_slice(&rows);
                } else {
                    for v in img[r0 * n..r1 * n].iter_mut() {
                        *v = 0.0;
                    }
                }
            }
        }

        img
    }

    fn quality(&self, output: &[f64], reference: &[f64]) -> f64 {
        // PSNR-based quality (Table 3), in dB against the reference
        // reconstruction; capped to keep identical outputs finite.
        accordion_stats::metrics::psnr(output, reference, 255.0).min(99.0)
    }

    fn workload(&self, knob: f64) -> Workload {
        Workload {
            work_units: self.problem_size(knob),
            // Two stencil passes with divisions and a clamp.
            instructions_per_unit: 35.0,
            mem_accesses_per_instr: 0.02,
            private_hit_rate: 0.92,
            cluster_hit_rate: 0.88,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> Srad {
        Srad::paper_default()
    }

    #[test]
    fn diffusion_reduces_noise() {
        let a = app();
        let cfg = RunConfig::default_run(8);
        let clean = a.clean_image();
        let noisy = a.run(0.0, &cfg); // zero iterations = speckled input
        let denoised = a.run(48.0, &cfg);
        let mse_before = accordion_stats::metrics::mse(&noisy, &clean);
        let mse_after = accordion_stats::metrics::mse(&denoised, &clean);
        assert!(
            mse_after < mse_before,
            "SRAD must denoise: {mse_after} vs {mse_before}"
        );
    }

    #[test]
    fn quality_improves_with_iterations() {
        let a = app();
        let cfg = RunConfig::default_run(8);
        let hyper = a.run(a.hyper_knob(), &cfg);
        let q8 = a.quality(&a.run(8.0, &cfg), &hyper);
        let q64 = a.quality(&a.run(64.0, &cfg), &hyper);
        assert!(q64 > q8, "{q64} vs {q8}");
    }

    #[test]
    fn dropped_rows_degrade_quality() {
        let a = app();
        let hyper = a.run(a.hyper_knob(), &RunConfig::default_run(8));
        let q_full = a.quality(&a.run(32.0, &RunConfig::default_run(8)), &hyper);
        let q_half = a.quality(&a.run(32.0, &RunConfig::with_drop(8, 0.5)), &hyper);
        assert!(q_half < q_full);
    }

    #[test]
    fn output_stays_finite_and_positive() {
        let a = app();
        let out = a.run(96.0, &RunConfig::default_run(32));
        assert!(out.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn deterministic_runs() {
        let a = app();
        let cfg = RunConfig::default_run(32);
        assert_eq!(a.run(16.0, &cfg), a.run(16.0, &cfg));
    }
}
