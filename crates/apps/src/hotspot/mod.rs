//! `hotspot` — iterative thermal simulation (Rodinia; paper
//! Section 5.2).
//!
//! Solves the heat-transfer differential equation on a grid
//! superimposed on a floorplan with an explicit finite-difference
//! stencil. The Accordion input is the iteration count; the output is
//! the temperature at each grid point; quality is SSD-based
//! (1 − normalized sum of squared temperature differences). The Drop
//! hook prevents "solution of the temperature equation and update of
//! the corresponding cell temperature" for the rows owned by dropped
//! threads.

use crate::app::RmsApp;
use crate::config::{thread_range, RunConfig};
use accordion_sim::workload::Workload;
use accordion_stats::rng::StreamRng;
use rand::Rng;

/// The hotspot kernel configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Hotspot {
    /// Grid side length (grid is `side × side`).
    pub side: usize,
    /// Number of heat sources in the synthetic power map.
    pub sources: usize,
    /// Ambient temperature the grid starts at and leaks toward.
    pub ambient: f64,
    /// Stencil diffusion coefficient (stability requires < 0.25).
    pub alpha: f64,
    /// Coupling of the power map into the temperature update.
    pub power_gain: f64,
}

impl Hotspot {
    /// Paper-like defaults on a fast 64×64 grid.
    pub fn paper_default() -> Self {
        Self {
            side: 64,
            sources: 12,
            ambient: 45.0,
            alpha: 0.2,
            power_gain: 1.5,
        }
    }

    /// Builds the synthetic floorplan power map: a few Gaussian blobs
    /// of dissipation over the die.
    fn power_map(&self, rng: &mut StreamRng) -> Vec<f64> {
        let n = self.side;
        let mut p = vec![0.0; n * n];
        for _ in 0..self.sources {
            let cx = rng.random_range(0..n) as f64;
            let cy = rng.random_range(0..n) as f64;
            let strength = 2.0 + 6.0 * rng.random::<f64>();
            let radius = 2.0 + 6.0 * rng.random::<f64>();
            for y in 0..n {
                for x in 0..n {
                    let d2 = (x as f64 - cx).powi(2) + (y as f64 - cy).powi(2);
                    p[y * n + x] += strength * (-d2 / (2.0 * radius * radius)).exp();
                }
            }
        }
        p
    }

    fn idx(&self, x: usize, y: usize) -> usize {
        y * self.side + x
    }

    /// Number of sequential warm-up sweeps building the initial
    /// temperature map. Rodinia's hotspot starts from a provided
    /// initial-temperature file that is already near the operating
    /// point; mirroring that keeps dropped rows (which freeze at their
    /// initial values) from being catastrophically wrong, exactly as
    /// the paper observes.
    const WARMUP_ITERS: usize = 80;

    /// One full-grid stencil sweep of `temp` into `next` over rows
    /// `[r0, r1)`.
    fn sweep_rows(&self, power: &[f64], temp: &[f64], next: &mut [f64], r0: usize, r1: usize) {
        let n = self.side;
        for y in r0..r1 {
            for x in 0..n {
                let c = temp[self.idx(x, y)];
                let up = if y > 0 { temp[self.idx(x, y - 1)] } else { c };
                let down = if y + 1 < n {
                    temp[self.idx(x, y + 1)]
                } else {
                    c
                };
                let left = if x > 0 { temp[self.idx(x - 1, y)] } else { c };
                let right = if x + 1 < n {
                    temp[self.idx(x + 1, y)]
                } else {
                    c
                };
                let lap = up + down + left + right - 4.0 * c;
                let leak = 0.01 * (self.ambient - c);
                next[self.idx(x, y)] =
                    c + self.alpha * lap + self.power_gain * power[self.idx(x, y)] * 0.01 + leak;
            }
        }
    }

    /// The initial temperature map (the "input file" of the Rodinia
    /// benchmark): the ambient grid relaxed by a fixed number of
    /// sequential sweeps.
    fn initial_temperatures(&self, power: &[f64]) -> Vec<f64> {
        let n = self.side;
        let mut temp = vec![self.ambient; n * n];
        let mut next = temp.clone();
        for _ in 0..Self::WARMUP_ITERS {
            self.sweep_rows(power, &temp, &mut next, 0, n);
            std::mem::swap(&mut temp, &mut next);
        }
        temp
    }
}

impl RmsApp for Hotspot {
    fn name(&self) -> &'static str {
        "hotspot"
    }

    fn knob_name(&self) -> &'static str {
        "number of iterations"
    }

    fn default_knob(&self) -> f64 {
        48.0
    }

    fn knob_sweep(&self) -> Vec<f64> {
        vec![8.0, 16.0, 24.0, 32.0, 48.0, 64.0, 96.0, 128.0]
    }

    fn hyper_knob(&self) -> f64 {
        512.0
    }

    fn problem_size(&self, knob: f64) -> f64 {
        // Work is linear in the iteration count (Table 3).
        knob * (self.side * self.side) as f64
    }

    fn run(&self, knob: f64, cfg: &RunConfig) -> Vec<f64> {
        let n = self.side;
        let seed = cfg.seed_stream();
        let power = self.power_map(&mut seed.stream("hotspot-power", 0));
        let mut temp = self.initial_temperatures(&power);
        let mut next = temp.clone();
        let iters = knob.max(0.0).round() as usize;
        let mut corrupt_rng = seed.stream("hotspot-corrupt", 0);

        for _it in 0..iters {
            for t in 0..cfg.threads {
                let (r0, r1) = thread_range(n, cfg.threads, t);
                if cfg.is_dropped(t) {
                    // Temperature-equation solve and cell update
                    // prevented: rows keep their previous values.
                    for y in r0..r1 {
                        for x in 0..n {
                            next[self.idx(x, y)] = temp[self.idx(x, y)];
                        }
                    }
                    continue;
                }
                self.sweep_rows(&power, &temp, &mut next, r0, r1);
            }
            std::mem::swap(&mut temp, &mut next);
        }

        // End-result corruption (generic Section 6.2 modes): infected
        // threads corrupt the rows they own.
        if cfg.corruption.is_some() {
            for t in 0..cfg.threads {
                let (r0, r1) = thread_range(n, cfg.threads, t);
                let mut rows: Vec<f64> = temp[r0 * n..r1 * n].to_vec();
                if cfg.corrupt_thread_results(t, &mut rows, &mut corrupt_rng) {
                    temp[r0 * n..r1 * n].copy_from_slice(&rows);
                } else {
                    // Drop-style: the thread's output is ignored; the
                    // merge keeps ambient placeholders.
                    for v in temp[r0 * n..r1 * n].iter_mut() {
                        *v = self.ambient;
                    }
                }
            }
        }

        temp
    }

    fn quality(&self, output: &[f64], reference: &[f64]) -> f64 {
        // SSD-based quality, normalized by the reference signal energy
        // above ambient so it is scale-free.
        let ssd = accordion_stats::metrics::ssd(output, reference);
        let energy: f64 = reference
            .iter()
            .map(|r| (r - self.ambient) * (r - self.ambient))
            .sum::<f64>()
            .max(1e-12);
        (1.0 - ssd / energy).max(0.0)
    }

    fn workload(&self, knob: f64) -> Workload {
        Workload {
            work_units: self.problem_size(knob),
            // One cell update: 5-point stencil + power + leak.
            instructions_per_unit: 15.0,
            mem_accesses_per_instr: 0.02,
            private_hit_rate: 0.93,
            cluster_hit_rate: 0.90,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> Hotspot {
        Hotspot::paper_default()
    }

    #[test]
    fn temperatures_rise_above_ambient() {
        let a = app();
        let out = a.run(64.0, &RunConfig::default_run(8));
        let max = out.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > a.ambient + 1.0, "hotspots must heat up, max={max}");
        assert!(out.iter().all(|t| t.is_finite()));
    }

    #[test]
    fn more_iterations_approach_steady_state() {
        let a = app();
        let cfg = RunConfig::default_run(8);
        let hyper = a.run(a.hyper_knob(), &cfg);
        let q32 = a.quality(&a.run(32.0, &cfg), &hyper);
        let q128 = a.quality(&a.run(128.0, &cfg), &hyper);
        assert!(q128 > q32, "quality: 128 iters {q128} vs 32 iters {q32}");
    }

    #[test]
    fn dropped_threads_leave_cold_stripes() {
        let a = app();
        let hyper = a.run(a.hyper_knob(), &RunConfig::default_run(8));
        let q_full = a.quality(&a.run(64.0, &RunConfig::default_run(8)), &hyper);
        let q_half = a.quality(&a.run(64.0, &RunConfig::with_drop(8, 0.5)), &hyper);
        assert!(q_half < q_full);
        assert!(q_half > 0.0, "Drop 1/2 must not zero out quality");
    }

    #[test]
    fn quality_of_reference_is_one() {
        let a = app();
        let cfg = RunConfig::default_run(8);
        let hyper = a.run(a.hyper_knob(), &cfg);
        assert!((a.quality(&hyper, &hyper) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_runs() {
        let a = app();
        let cfg = RunConfig::default_run(16);
        assert_eq!(a.run(16.0, &cfg), a.run(16.0, &cfg));
    }

    #[test]
    fn corruption_degrades_quality() {
        use accordion_sim::fault::CorruptionMode;
        let a = app();
        let hyper = a.run(a.hyper_knob(), &RunConfig::default_run(8));
        let clean = a.quality(&a.run(64.0, &RunConfig::default_run(8)), &hyper);
        let corrupted = a.quality(
            &a.run(
                64.0,
                &RunConfig::with_corruption(8, 0.25, CorruptionMode::StuckAt1All),
            ),
            &hyper,
        );
        assert!(corrupted < clean);
    }
}
