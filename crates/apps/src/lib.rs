//! RMS benchmark kernels for the Accordion evaluation.
//!
//! Native Rust implementations of the six benchmarks of the paper's
//! Table 3, each exposing the same contract:
//!
//! * an **Accordion input** (a scalar knob) that governs both the
//!   problem size and the achievable output quality,
//! * a deterministic, seeded synthetic input,
//! * a data-parallel structure partitioned across logical threads,
//!   with the paper's Section 6.2 **Drop** hook (a dropped thread's
//!   contribution is skipped at exactly the operation the paper
//!   names) and end-result **corruption** hooks,
//! * an application-specific quality metric (Table 3).
//!
//! | Kernel | Domain | Accordion input | Quality metric |
//! |---|---|---|---|
//! | [`canneal`] | optimization | swaps per temperature step | relative routing cost |
//! | [`ferret`] | similarity search | size factor | common top-n images |
//! | [`bodytrack`] | computer vision | annealing layers | SSD-based |
//! | [`x264`] | multimedia | quantizer (QP) | SSIM-based |
//! | [`hotspot`] | physics simulation | iterations | SSD-based |
//! | [`srad`] | image processing | iterations | PSNR-based |
//!
//! A seventh, strictly weak-scaling kernel ([`hashsearch`]) implements
//! the paper's Section 7 extension direction and is exposed through
//! [`extension_apps`] (it is not part of the paper's evaluation set).
//!
//! The [`harness`] module sweeps knobs under the Default / Drop 1/4 /
//! Drop 1/2 scenarios to produce the quality-versus-problem-size
//! fronts of Figures 2 and 4; [`characterize`] recovers the Table 3
//! dependency types from those sweeps.

pub mod app;
pub mod bodytrack;
pub mod canneal;
pub mod characterize;
pub mod config;
pub mod ferret;
pub mod harness;
pub mod hashsearch;
pub mod hotspot;
pub mod srad;
pub mod x264;

pub use app::{all_apps, extension_apps, RmsApp};
pub use config::RunConfig;
pub use harness::{QualityFront, Scenario};
