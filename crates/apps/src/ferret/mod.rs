//! `ferret` — content-based similarity search (PARSEC; paper
//! Section 5.2).
//!
//! Searches an image database for the images most similar to each
//! query. Images are partitioned into regions and compared by a
//! region-set distance; the number of regions — controlled by the
//! *size factor* (minimum region size = pixels × size_factor) — sets
//! both the work per comparison and the fidelity of the estimate. The
//! output is the top-`n` result set per query; per-query relative
//! error is `1 − common_image_count / n` against the reference
//! outcome. The Drop hook degrades dropped threads' share of the
//! database scan to coarse single-region signatures. The [`pipeline`]
//! module runs the same search through PARSEC ferret's explicit
//! load/segment/extract/index/rank/out stages with per-stage work
//! accounting.

pub mod pipeline;

use crate::app::RmsApp;
use crate::config::{thread_range, RunConfig};
use accordion_sim::workload::Workload;
use accordion_stats::rng::{sample_std_normal, SeedStream, StreamRng};

/// The ferret kernel configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Ferret {
    /// Database size in images.
    pub database: usize,
    /// Number of queries per run.
    pub queries: usize,
    /// Result-set size `n` per query.
    pub top_n: usize,
    /// Feature dimensionality per region.
    pub dims: usize,
    /// Region count of an image at size factor 1.0.
    pub base_regions: usize,
    /// Number of latent clusters the image corpus is drawn from.
    pub clusters: usize,
}

impl Ferret {
    /// Paper-like defaults on a fast instance.
    pub fn paper_default() -> Self {
        Self {
            database: 192,
            queries: 12,
            top_n: 10,
            dims: 8,
            base_regions: 8,
            clusters: 12,
        }
    }

    /// Regions per image at a size factor: larger factors mean larger
    /// minimum region sizes, hence fewer regions.
    pub fn regions_at(&self, size_factor: f64) -> usize {
        assert!(size_factor > 0.0, "size factor must be positive");
        ((self.base_regions as f64 / size_factor).round() as usize).max(1)
    }

    /// The latent "true" feature vector of image `i` (queries use
    /// indices ≥ `database`). Images cluster so that similarity
    /// structure exists to recover.
    fn image_signature(&self, seed: &SeedStream, i: usize) -> Vec<f64> {
        let cluster = i % self.clusters;
        let mut c_rng = seed.stream("ferret-cluster", cluster as u64);
        let center: Vec<f64> = (0..self.dims)
            .map(|_| 3.0 * sample_std_normal(&mut c_rng))
            .collect();
        let mut i_rng = seed.stream("ferret-image", i as u64);
        center
            .iter()
            .map(|c| c + 0.8 * sample_std_normal(&mut i_rng))
            .collect()
    }

    /// Segments image `i` into `regions` noisy region features; finer
    /// segmentation (more regions) estimates the signature better.
    pub(crate) fn segment(&self, seed: &SeedStream, i: usize, regions: usize) -> Vec<Vec<f64>> {
        let sig = self.image_signature(seed, i);
        let mut rng: StreamRng = seed.stream("ferret-regions", i as u64);
        (0..regions)
            .map(|_| {
                sig.iter()
                    .map(|s| s + 2.2 * sample_std_normal(&mut rng))
                    .collect()
            })
            .collect()
    }

    /// Public alias of [`Self::segment`] for the pipeline module.
    pub(crate) fn segment_public(
        &self,
        seed: &SeedStream,
        i: usize,
        regions: usize,
    ) -> Vec<Vec<f64>> {
        self.segment(seed, i, regions)
    }

    /// Public alias of [`Self::set_distance`] for the pipeline module.
    pub(crate) fn set_distance_public(query: &[Vec<f64>], cand: &[Vec<f64>]) -> f64 {
        Self::set_distance(query, cand)
    }

    /// Region-set distance: for each query region, the distance to the
    /// closest candidate region, averaged (a one-directional simplified
    /// Earth Mover's Distance).
    fn set_distance(query: &[Vec<f64>], cand: &[Vec<f64>]) -> f64 {
        let mut total = 0.0;
        for q in query {
            let mut best = f64::INFINITY;
            for c in cand {
                let d2: f64 = q.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
                best = best.min(d2);
            }
            total += best.sqrt();
        }
        total / query.len() as f64
    }
}

impl RmsApp for Ferret {
    fn name(&self) -> &'static str {
        "ferret"
    }

    fn knob_name(&self) -> &'static str {
        "size factor"
    }

    fn default_knob(&self) -> f64 {
        1.0
    }

    fn knob_sweep(&self) -> Vec<f64> {
        // Decreasing size factor ⇒ more regions ⇒ larger problem.
        vec![2.7, 2.0, 1.6, 1.25, 1.0, 0.8, 0.65, 0.5]
    }

    fn hyper_knob(&self) -> f64 {
        0.25
    }

    fn problem_size(&self, knob: f64) -> f64 {
        // The database is pre-indexed at a fixed granularity; the size
        // factor controls how finely each *query* image is segmented,
        // so work per query-candidate pair — and thus the problem size
        // — is linear in the query's region count (Table 3: linear).
        let r = self.regions_at(knob) as f64;
        (self.queries * self.database) as f64 * r * self.base_regions as f64
    }

    fn run(&self, knob: f64, cfg: &RunConfig) -> Vec<f64> {
        let regions = self.regions_at(knob);
        let seed = cfg.seed_stream();
        let mut corrupt_rng = seed.stream("ferret-corrupt", 0);

        // The database index is built once at the fixed base
        // granularity; queries are segmented at the knob's granularity.
        let db: Vec<Vec<Vec<f64>>> = (0..self.database)
            .map(|i| self.segment(&seed, i, self.base_regions))
            .collect();
        let queries: Vec<Vec<Vec<f64>>> = (0..self.queries)
            .map(|q| self.segment(&seed, self.database + q, regions))
            .collect();

        let mut out = Vec::with_capacity(self.queries * self.top_n);
        for query in queries.iter() {
            // Threads partition the database scan. A dropped thread's
            // fine-grained region processing never happens; its
            // candidates are ranked by the coarse single-region
            // signature that the extraction stage always produces --
            // they stay in the running, just scored poorly.
            let mut scored: Vec<(f64, usize)> = Vec::with_capacity(self.database);
            for t in 0..cfg.threads {
                let (c0, c1) = thread_range(self.database, cfg.threads, t);
                let dropped = cfg.is_dropped(t);
                for (c, cand) in db.iter().enumerate().take(c1).skip(c0) {
                    let d = if dropped {
                        Self::set_distance(query, &cand[..1])
                    } else {
                        Self::set_distance(query, cand)
                    };
                    scored.push((d, c));
                }
            }
            scored.sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
            let mut ids: Vec<f64> = scored
                .iter()
                .take(self.top_n)
                .map(|&(_, c)| c as f64)
                .collect();
            ids.resize(self.top_n, -1.0); // pad if the scan lost candidates
            out.extend(ids);
        }

        // End-result corruption: infected threads mangle the result-id
        // entries their share of the scan produced.
        if cfg.corruption.is_some() {
            let len = out.len();
            for t in 0..cfg.threads {
                let (e0, e1) = thread_range(len, cfg.threads, t);
                let mut vals = out[e0..e1].to_vec();
                if cfg.corrupt_thread_results(t, &mut vals, &mut corrupt_rng) {
                    out[e0..e1].copy_from_slice(&vals);
                } else {
                    for v in out[e0..e1].iter_mut() {
                        *v = -1.0;
                    }
                }
            }
        }

        out
    }

    fn quality(&self, output: &[f64], reference: &[f64]) -> f64 {
        // Average over queries of common_image_count / n (Table 3:
        // relative error per query = 1 − common/n).
        assert_eq!(output.len(), reference.len(), "result sets must align");
        let n = self.top_n;
        let mut total = 0.0;
        let mut queries = 0;
        for (out_set, ref_set) in output.chunks(n).zip(reference.chunks(n)) {
            let common = out_set
                .iter()
                .filter(|id| **id >= 0.0 && ref_set.contains(id))
                .count();
            total += common as f64 / n as f64;
            queries += 1;
        }
        total / queries.max(1) as f64
    }

    fn workload(&self, knob: f64) -> Workload {
        Workload {
            work_units: self.problem_size(knob),
            // One region-pair distance: D mul-adds + sqrt amortized.
            instructions_per_unit: 3.0 * self.dims as f64,
            mem_accesses_per_instr: 0.04,
            private_hit_rate: 0.80,
            cluster_hit_rate: 0.85,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> Ferret {
        Ferret::paper_default()
    }

    #[test]
    fn finds_cluster_mates() {
        // The top results for a query should over-represent the
        // query's own latent cluster.
        let a = app();
        let out = a.run(0.5, &RunConfig::default_run(8));
        // Query 0 lives in cluster (database + 0) % clusters.
        let qc = a.database % a.clusters;
        let top: Vec<usize> = out[..a.top_n].iter().map(|v| *v as usize).collect();
        let mates = top.iter().filter(|&&c| c % a.clusters == qc).count();
        assert!(
            mates >= a.top_n / 2,
            "top-{} should be dominated by cluster mates, got {mates}",
            a.top_n
        );
    }

    #[test]
    fn finer_segmentation_improves_quality() {
        let a = app();
        let cfg = RunConfig::default_run(8);
        let hyper = a.run(a.hyper_knob(), &cfg);
        let q_coarse = a.quality(&a.run(4.0, &cfg), &hyper);
        let q_fine = a.quality(&a.run(0.5, &cfg), &hyper);
        assert!(q_fine > q_coarse, "fine {q_fine} vs coarse {q_coarse}");
    }

    #[test]
    fn dropping_threads_loses_candidates() {
        let a = app();
        let cfg_full = RunConfig::default_run(8);
        let hyper = a.run(a.hyper_knob(), &cfg_full);
        let q_full = a.quality(&a.run(1.0, &cfg_full), &hyper);
        let q_half = a.quality(&a.run(1.0, &RunConfig::with_drop(8, 0.5)), &hyper);
        assert!(q_half < q_full);
        assert!(q_half > 0.0, "half the database still finds some mates");
    }

    #[test]
    fn regions_scale_inversely_with_size_factor() {
        let a = app();
        assert!(a.regions_at(0.5) > a.regions_at(1.0));
        assert!(a.regions_at(4.0) >= 1);
    }

    #[test]
    fn self_quality_is_one() {
        let a = app();
        let out = a.run(1.0, &RunConfig::default_run(8));
        assert_eq!(a.quality(&out, &out), 1.0);
    }

    #[test]
    fn deterministic_runs() {
        let a = app();
        let cfg = RunConfig::default_run(8);
        assert_eq!(a.run(1.0, &cfg), a.run(1.0, &cfg));
    }
}
