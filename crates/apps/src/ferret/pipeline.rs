//! The ferret processing pipeline.
//!
//! PARSEC ferret is the canonical pipeline benchmark: a query flows
//! through *load → segment → extract → index → rank → output* stages.
//! This module runs the similarity search through those explicit
//! stages with per-stage work accounting, producing output identical
//! to the monolithic `Ferret::run` path's (a golden test holds the two
//! together) while exposing where the work actually goes — the basis
//! for pipeline-level scheduling studies.

use crate::config::{thread_range, RunConfig};
use crate::ferret::Ferret;

/// Work accounting for one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage name (the PARSEC stage it mirrors).
    pub name: &'static str,
    /// Items processed (images, regions or candidate pairs).
    pub items: usize,
    /// Abstract work units spent (feature-dimension operations).
    pub work_units: f64,
}

/// The result of an instrumented pipeline execution.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineRun {
    /// Per-stage accounting, in flow order.
    pub stages: Vec<StageStats>,
    /// The search output (same encoding as `Ferret::run`).
    pub output: Vec<f64>,
}

impl PipelineRun {
    /// Total work units across stages.
    pub fn total_work(&self) -> f64 {
        self.stages.iter().map(|s| s.work_units).sum()
    }

    /// The stage carrying the most work (the pipeline bottleneck).
    pub fn bottleneck(&self) -> &StageStats {
        self.stages
            .iter()
            .max_by(|a, b| {
                a.work_units
                    .partial_cmp(&b.work_units)
                    .expect("work is finite")
            })
            .expect("pipeline has stages")
    }
}

/// Runs the similarity search through explicit pipeline stages.
pub fn run_pipeline(app: &Ferret, knob: f64, cfg: &RunConfig) -> PipelineRun {
    let regions = app.regions_at(knob);
    let seed = cfg.seed_stream();
    let mut corrupt_rng = seed.stream("ferret-corrupt", 0);
    let dims = app.dims as f64;
    let mut stages = Vec::with_capacity(5);

    // Stage: load — the image identifiers entering the pipeline.
    stages.push(StageStats {
        name: "load",
        items: app.database + app.queries,
        work_units: (app.database + app.queries) as f64,
    });

    // Stage: segment+extract for the database at the fixed index
    // granularity (an offline index in real ferret, charged here for
    // transparency).
    let db: Vec<Vec<Vec<f64>>> = (0..app.database)
        .map(|i| app.segment_public(&seed, i, app.base_regions))
        .collect();
    stages.push(StageStats {
        name: "index (db segment+extract)",
        items: app.database * app.base_regions,
        work_units: (app.database * app.base_regions) as f64 * dims,
    });

    // Stage: segment+extract for the queries at the knob granularity.
    let queries: Vec<Vec<Vec<f64>>> = (0..app.queries)
        .map(|q| app.segment_public(&seed, app.database + q, regions))
        .collect();
    stages.push(StageStats {
        name: "segment+extract (queries)",
        items: app.queries * regions,
        work_units: (app.queries * regions) as f64 * dims,
    });

    // Stage: rank — the data-parallel scan the threads partition.
    let mut rank_work = 0.0;
    let mut out = Vec::with_capacity(app.queries * app.top_n);
    for query in queries.iter() {
        let mut scored: Vec<(f64, usize)> = Vec::with_capacity(app.database);
        for t in 0..cfg.threads {
            let (c0, c1) = thread_range(app.database, cfg.threads, t);
            let dropped = cfg.is_dropped(t);
            for (c, cand) in db.iter().enumerate().take(c1).skip(c0) {
                let d = if dropped {
                    rank_work += query.len() as f64 * dims;
                    Ferret::set_distance_public(query, &cand[..1])
                } else {
                    rank_work += (query.len() * cand.len()) as f64 * dims;
                    Ferret::set_distance_public(query, cand)
                };
                scored.push((d, c));
            }
        }
        scored.sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
        let mut ids: Vec<f64> = scored
            .iter()
            .take(app.top_n)
            .map(|&(_, c)| c as f64)
            .collect();
        ids.resize(app.top_n, -1.0);
        out.extend(ids);
    }
    stages.push(StageStats {
        name: "rank",
        items: app.queries * app.database,
        work_units: rank_work,
    });

    // Stage: output — apply end-result corruption and emit.
    if cfg.corruption.is_some() {
        let len = out.len();
        for t in 0..cfg.threads {
            let (e0, e1) = thread_range(len, cfg.threads, t);
            let mut vals = out[e0..e1].to_vec();
            if cfg.corrupt_thread_results(t, &mut vals, &mut corrupt_rng) {
                out[e0..e1].copy_from_slice(&vals);
            } else {
                for v in out[e0..e1].iter_mut() {
                    *v = -1.0;
                }
            }
        }
    }
    stages.push(StageStats {
        name: "out",
        items: out.len(),
        work_units: out.len() as f64,
    });

    PipelineRun {
        stages,
        output: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::RmsApp;

    fn app() -> Ferret {
        Ferret::paper_default()
    }

    #[test]
    fn pipeline_output_matches_monolithic_run() {
        let a = app();
        for cfg in [RunConfig::default_run(8), RunConfig::with_drop(8, 0.5)] {
            let mono = a.run(1.0, &cfg);
            let pipe = run_pipeline(&a, 1.0, &cfg);
            assert_eq!(mono, pipe.output);
        }
    }

    #[test]
    fn rank_dominates_the_pipeline() {
        // The data-parallel rank stage carries almost all the work —
        // which is exactly why the paper's Drop hook lives there.
        let a = app();
        let run = run_pipeline(&a, 1.0, &RunConfig::default_run(8));
        assert_eq!(run.bottleneck().name, "rank");
        assert!(run.bottleneck().work_units > 0.5 * run.total_work());
    }

    #[test]
    fn finer_queries_grow_only_query_stages() {
        let a = app();
        let coarse = run_pipeline(&a, 2.0, &RunConfig::default_run(8));
        let fine = run_pipeline(&a, 0.5, &RunConfig::default_run(8));
        let stage = |r: &PipelineRun, name: &str| {
            r.stages
                .iter()
                .find(|s| s.name == name)
                .expect("stage exists")
                .work_units
        };
        assert!(
            stage(&fine, "segment+extract (queries)") > stage(&coarse, "segment+extract (queries)")
        );
        assert!(stage(&fine, "rank") > stage(&coarse, "rank"));
        // The offline database index does not depend on the knob.
        assert_eq!(
            stage(&fine, "index (db segment+extract)"),
            stage(&coarse, "index (db segment+extract)")
        );
    }

    #[test]
    fn dropped_threads_shrink_rank_work() {
        let a = app();
        let full = run_pipeline(&a, 1.0, &RunConfig::default_run(8));
        let half = run_pipeline(&a, 1.0, &RunConfig::with_drop(8, 0.5));
        let rank = |r: &PipelineRun| {
            r.stages
                .iter()
                .find(|s| s.name == "rank")
                .unwrap()
                .work_units
        };
        assert!(rank(&half) < rank(&full));
    }
}
