//! `canneal` — simulated-annealing chip-placement optimization
//! (PARSEC; paper Sections 3.1 and 5.2).
//!
//! Each thread, `swaps_per_temp` times per temperature step, attempts
//! to swap two randomly picked elements and accepts the swap by the
//! Metropolis rule. The Accordion input is `swaps_per_temp` (the
//! number of temperature steps is the second knob; both enter the
//! problem size as their product). Quality is based on relative
//! routing cost. The Drop hook prevents `swap()` — exactly where the
//! paper injects it — and the decision-inversion corruption experiment
//! of Section 6.2 flips the Metropolis accept decision.

pub mod netlist;

use crate::app::RmsApp;
use crate::config::RunConfig;
use accordion_sim::workload::Workload;
use accordion_stats::rng::StreamRng;
use netlist::Netlist;
use rand::Rng;

/// The canneal kernel configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Canneal {
    /// Grid width (elements = width × height).
    pub width: usize,
    /// Grid height.
    pub height: usize,
    /// Average net degree per element.
    pub avg_degree: usize,
    /// Number of temperature steps (the second Accordion input; held
    /// at its default while `swaps_per_temp` sweeps).
    pub temp_steps: usize,
    /// Initial annealing temperature.
    pub t_initial: f64,
    /// Geometric cooling factor per temperature step.
    pub cooling: f64,
}

/// How infected threads misbehave (Section 6.2 validation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CannealErrorMode {
    /// Thread performs no swaps (the Drop hook).
    DropSwaps,
    /// The Metropolis accept decision is inverted: swaps are accepted
    /// exactly when they should be rejected, and vice versa.
    InvertDecision,
}

impl Canneal {
    /// Paper-scale defaults shrunk to a fast deterministic instance.
    pub fn paper_default() -> Self {
        Self {
            width: 24,
            height: 24,
            avg_degree: 4,
            temp_steps: 24,
            t_initial: 4.0,
            cooling: 0.8,
        }
    }

    fn build_netlist(&self, cfg: &RunConfig) -> Netlist {
        let mut rng = cfg.seed_stream().stream("canneal-netlist", 0);
        Netlist::generate(self.width, self.height, self.avg_degree, &mut rng)
    }

    /// Runs the annealer with an explicit per-thread error mode mask:
    /// `infected[t]` threads misbehave per `mode`. This is the entry
    /// point of the Section 6.2 decision-inversion experiment; the
    /// `RmsApp::run` path uses it with [`CannealErrorMode::DropSwaps`].
    pub fn run_with_error_mode(
        &self,
        swaps_per_temp: f64,
        cfg: &RunConfig,
        mode: CannealErrorMode,
        infected: &[bool],
    ) -> Vec<f64> {
        assert_eq!(infected.len(), cfg.threads, "infection mask length");
        let netlist = self.build_netlist(cfg);
        let mut placement = netlist.initial_placement();
        let n = netlist.len();
        let swaps = swaps_per_temp.max(0.0).round() as usize;
        let seed = cfg.seed_stream();
        let mut thread_rngs: Vec<StreamRng> = (0..cfg.threads)
            .map(|t| seed.stream("canneal-thread", t as u64))
            .collect();

        let mut temperature = self.t_initial;
        for _step in 0..self.temp_steps {
            // Threads interleave swap attempts round-robin on the
            // shared placement; a deterministic serialization of the
            // lock-based parallel algorithm.
            for s in 0..swaps {
                for t in 0..cfg.threads {
                    let rng = &mut thread_rngs[t];
                    // Draw the candidate pair regardless of drop so the
                    // random streams stay aligned across scenarios.
                    let a = rng.random_range(0..n);
                    let b = rng.random_range(0..n);
                    let u: f64 = rng.random();
                    let _ = s;
                    if a == b {
                        continue;
                    }
                    let misbehaves = infected[t];
                    if misbehaves && mode == CannealErrorMode::DropSwaps {
                        continue; // swap() prevented
                    }
                    let before =
                        netlist.element_cost(&placement, a) + netlist.element_cost(&placement, b);
                    placement.swap(a, b);
                    let after =
                        netlist.element_cost(&placement, a) + netlist.element_cost(&placement, b);
                    let delta = after - before;
                    let mut accept = delta < 0.0 || u < (-delta / temperature.max(1e-12)).exp();
                    if misbehaves && mode == CannealErrorMode::InvertDecision {
                        accept = !accept;
                    }
                    if !accept {
                        placement.swap(a, b); // undo
                    }
                }
            }
            temperature *= self.cooling;
        }

        // Output: final cost (the quality carrier) plus the placement
        // for completeness.
        let cost = netlist.routing_cost(&placement);
        let mut out = Vec::with_capacity(1 + n);
        out.push(cost);
        out.extend((0..n).map(|e| placement.location_of(e) as f64));
        out
    }

    /// Routing cost of the untouched initial placement (for relative
    /// cost metrics).
    pub fn initial_cost(&self, cfg: &RunConfig) -> f64 {
        let netlist = self.build_netlist(cfg);
        netlist.routing_cost(&netlist.initial_placement())
    }
}

impl RmsApp for Canneal {
    fn name(&self) -> &'static str {
        "canneal"
    }

    fn knob_name(&self) -> &'static str {
        "swaps per temperature step"
    }

    fn default_knob(&self) -> f64 {
        24.0
    }

    fn knob_sweep(&self) -> Vec<f64> {
        vec![4.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0]
    }

    fn hyper_knob(&self) -> f64 {
        128.0
    }

    fn problem_size(&self, knob: f64) -> f64 {
        // Product of the two Accordion inputs (Section 3.1): linear in
        // swaps_per_temp at fixed temperature steps.
        knob * self.temp_steps as f64
    }

    fn run(&self, knob: f64, cfg: &RunConfig) -> Vec<f64> {
        // The generic corruption path is per-thread end results; the
        // canneal-specific decision corruption lives in
        // `run_with_error_mode`.
        self.run_with_error_mode(knob, cfg, CannealErrorMode::DropSwaps, &cfg.drop_mask)
    }

    fn quality(&self, output: &[f64], reference: &[f64]) -> f64 {
        // Relative routing cost: how much of the reference run's cost
        // reduction this run achieved. The initial cost is identical
        // across runs of the same seed, so using the cost values alone
        // is well defined.
        let (cost, ref_cost) = (output[0], reference[0]);
        assert!(cost > 0.0 && ref_cost > 0.0, "costs must be positive");
        ref_cost / cost
    }

    fn workload(&self, knob: f64) -> Workload {
        Workload {
            work_units: self.problem_size(knob),
            // One swap attempt: two element-cost evaluations (≈ net
            // degree distance computations each) plus bookkeeping.
            instructions_per_unit: 40.0 * self.avg_degree as f64,
            mem_accesses_per_instr: 0.03,
            private_hit_rate: 0.85,
            cluster_hit_rate: 0.80,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> Canneal {
        Canneal::paper_default()
    }

    #[test]
    fn annealing_reduces_cost() {
        let a = app();
        let cfg = RunConfig::default_run(16);
        let out = a.run(16.0, &cfg);
        assert!(out[0] < a.initial_cost(&cfg), "annealing must reduce cost");
    }

    #[test]
    fn more_swaps_reach_lower_cost() {
        let a = app();
        let cfg = RunConfig::default_run(16);
        let lo = a.run(4.0, &cfg)[0];
        let hi = a.run(64.0, &cfg)[0];
        assert!(hi < lo, "64 swaps/step ({hi}) must beat 4 ({lo})");
    }

    #[test]
    fn dropping_half_still_improves_over_initial() {
        let a = app();
        let cfg = RunConfig::with_drop(16, 0.5);
        let out = a.run(16.0, &cfg);
        assert!(out[0] < a.initial_cost(&RunConfig::default_run(16)));
    }

    #[test]
    fn drop_degrades_less_than_decision_inversion() {
        // The Section 6.2 validation: inverting accept decisions hurts
        // far more than dropping the same threads.
        let a = app();
        let cfg = RunConfig::default_run(16);
        let infected = accordion_sim::fault::uniform_drop_mask(16, 0.5);
        let dropped = a.run_with_error_mode(24.0, &cfg, CannealErrorMode::DropSwaps, &infected)[0];
        let inverted =
            a.run_with_error_mode(24.0, &cfg, CannealErrorMode::InvertDecision, &infected)[0];
        assert!(
            inverted > dropped,
            "inversion ({inverted}) must cost more than drop ({dropped})"
        );
    }

    #[test]
    fn quality_relative_to_hyper_run() {
        let a = app();
        let cfg = RunConfig::default_run(16);
        let hyper = a.run(a.hyper_knob(), &cfg);
        let small = a.run(4.0, &cfg);
        let big = a.run(64.0, &cfg);
        let q_small = a.quality(&small, &hyper);
        let q_big = a.quality(&big, &hyper);
        assert!(q_big > q_small, "quality grows with problem size");
        assert!(q_big <= 1.02, "cannot meaningfully beat the hyper run");
    }

    #[test]
    fn deterministic_runs() {
        let a = app();
        let cfg = RunConfig::default_run(8);
        assert_eq!(a.run(8.0, &cfg), a.run(8.0, &cfg));
    }
}
