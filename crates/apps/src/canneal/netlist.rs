//! Synthetic netlist and placement for the canneal kernel.
//!
//! Mirrors PARSEC canneal's cost structure: elements connect through
//! *multi-terminal nets*, and a net's routing cost is its
//! half-perimeter wirelength (HPWL) — the semi-perimeter of the
//! bounding box of its terminals' locations, the standard placement
//! cost model.

use accordion_stats::rng::StreamRng;
use rand::Rng;

/// A netlist of elements connected by multi-terminal nets, placed on a
/// rectangular grid of locations.
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    /// Grid width in locations.
    pub width: usize,
    /// Grid height in locations.
    pub height: usize,
    /// Each net lists its member elements (2–6 terminals).
    pub nets: Vec<Vec<usize>>,
    /// `nets_of[e]` lists the nets element `e` belongs to.
    pub nets_of: Vec<Vec<usize>>,
}

/// A placement: `location_of[e]` is the grid slot of element `e`.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    location_of: Vec<usize>,
    width: usize,
}

impl Netlist {
    /// Generates a random netlist with `width × height` elements and
    /// ≈`avg_degree` net memberships per element. Most nets are local
    /// (members close in element-index space, which the initial
    /// placement maps to nearby slots); a minority are global —
    /// mimicking real chip netlists so annealing has structure to
    /// exploit.
    pub fn generate(width: usize, height: usize, avg_degree: usize, rng: &mut StreamRng) -> Self {
        assert!(width >= 2 && height >= 2, "grid must be at least 2x2");
        let n = width * height;
        // Terminals average ≈3 per net, so net count ≈ n·degree/3.
        let num_nets = (n * avg_degree).div_ceil(3);
        let mut nets = Vec::with_capacity(num_nets);
        for _ in 0..num_nets {
            let terminals = 2 + rng.random_range(0..5usize); // 2..=6
            let mut members = Vec::with_capacity(terminals);
            let anchor = rng.random_range(0..n);
            members.push(anchor);
            let local = rng.random::<f64>() < 0.75;
            while members.len() < terminals {
                let candidate = if local {
                    let lo = anchor.saturating_sub(8);
                    let hi = (anchor + 8).min(n - 1);
                    rng.random_range(lo..=hi)
                } else {
                    rng.random_range(0..n)
                };
                if !members.contains(&candidate) {
                    members.push(candidate);
                }
            }
            nets.push(members);
        }
        let mut nets_of = vec![Vec::new(); n];
        for (i, net) in nets.iter().enumerate() {
            for &e in net {
                nets_of[e].push(i);
            }
        }
        Self {
            width,
            height,
            nets,
            nets_of,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.nets_of.len()
    }

    /// Whether the netlist has no elements.
    pub fn is_empty(&self) -> bool {
        self.nets_of.is_empty()
    }

    /// The identity placement (element `e` at slot `e`).
    pub fn initial_placement(&self) -> Placement {
        Placement {
            location_of: (0..self.len()).collect(),
            width: self.width,
        }
    }

    /// Half-perimeter wirelength of net `i` under placement `p`.
    pub fn net_hpwl(&self, p: &Placement, i: usize) -> f64 {
        let mut min_x = usize::MAX;
        let mut max_x = 0;
        let mut min_y = usize::MAX;
        let mut max_y = 0;
        for &e in &self.nets[i] {
            let (x, y) = p.xy_of(e);
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        ((max_x - min_x) + (max_y - min_y)) as f64
    }

    /// Total routing cost of a placement: the sum of HPWL over nets.
    pub fn routing_cost(&self, p: &Placement) -> f64 {
        (0..self.nets.len()).map(|i| self.net_hpwl(p, i)).sum()
    }

    /// Cost contribution of element `e`: the HPWL of every net it
    /// belongs to (the quantity a swap of `e` can change).
    pub fn element_cost(&self, p: &Placement, e: usize) -> f64 {
        self.nets_of[e].iter().map(|&i| self.net_hpwl(p, i)).sum()
    }
}

impl Placement {
    /// Grid coordinates of element `e`'s slot.
    pub fn xy_of(&self, e: usize) -> (usize, usize) {
        let slot = self.location_of[e];
        (slot % self.width, slot / self.width)
    }

    /// Manhattan distance between the slots of elements `a` and `b`.
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        let (ax, ay) = self.xy_of(a);
        let (bx, by) = self.xy_of(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as f64
    }

    /// Swaps the locations of elements `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.location_of.swap(a, b);
    }

    /// Location slot of element `e`.
    pub fn location_of(&self, e: usize) -> usize {
        self.location_of[e]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_stats::rng::SeedStream;

    fn netlist() -> Netlist {
        let mut rng = SeedStream::new(1).stream("netlist", 0);
        Netlist::generate(10, 10, 4, &mut rng)
    }

    #[test]
    fn membership_is_consistent() {
        let n = netlist();
        for (i, net) in n.nets.iter().enumerate() {
            assert!(net.len() >= 2 && net.len() <= 6);
            for &e in net {
                assert!(n.nets_of[e].contains(&i), "element {e} missing net {i}");
            }
        }
        for (e, nets) in n.nets_of.iter().enumerate() {
            for &i in nets {
                assert!(n.nets[i].contains(&e));
            }
        }
    }

    #[test]
    fn no_duplicate_terminals() {
        let n = netlist();
        for net in &n.nets {
            let mut m = net.clone();
            m.sort_unstable();
            m.dedup();
            assert_eq!(m.len(), net.len());
        }
    }

    #[test]
    fn hpwl_of_two_terminal_net_is_manhattan() {
        let n = netlist();
        let p = n.initial_placement();
        for (i, net) in n.nets.iter().enumerate() {
            if net.len() == 2 {
                assert_eq!(n.net_hpwl(&p, i), p.distance(net[0], net[1]));
            }
        }
    }

    #[test]
    fn cost_is_positive_and_swap_changes_it() {
        let n = netlist();
        let mut p = n.initial_placement();
        let c0 = n.routing_cost(&p);
        assert!(c0 > 0.0);
        p.swap(0, 99);
        assert_ne!(n.routing_cost(&p), c0);
    }

    #[test]
    fn swap_is_involutive() {
        let n = netlist();
        let mut p = n.initial_placement();
        let c0 = n.routing_cost(&p);
        p.swap(3, 42);
        p.swap(3, 42);
        assert_eq!(n.routing_cost(&p), c0);
    }

    #[test]
    fn hpwl_bounded_by_grid_perimeter() {
        let n = netlist();
        let p = n.initial_placement();
        for i in 0..n.nets.len() {
            assert!(n.net_hpwl(&p, i) <= (n.width + n.height) as f64);
        }
    }

    #[test]
    fn element_cost_covers_only_member_nets() {
        let n = netlist();
        let p = n.initial_placement();
        let e = 5;
        let direct: f64 = n.nets_of[e].iter().map(|&i| n.net_hpwl(&p, i)).sum();
        assert_eq!(n.element_cost(&p, e), direct);
    }
}
