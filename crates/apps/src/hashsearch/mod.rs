//! `hashsearch` — a strictly weak-scaling extension benchmark.
//!
//! Paper Section 7: "for the select RMS benchmarks we deployed, per
//! thread work tends to increase with problem size. We are extending
//! our study to strict weak scaling, considering novel application
//! domains such as bitcoin mining." This kernel is that extension: a
//! proof-of-work-style search where each thread scans a fixed-size
//! slice of nonce space for *golden nonces* (hashes below a target),
//! so the problem size grows exactly with the thread count — per
//! thread work is constant, Gustafson-Barsis in the strict sense.
//!
//! Not part of the paper's six-benchmark registry; exposed through
//! [`crate::extension_apps`].

use crate::app::RmsApp;
use crate::config::{thread_range, RunConfig};
use accordion_sim::workload::Workload;

/// The hashsearch kernel configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HashSearch {
    /// Size of the full nonce universe.
    pub universe: u64,
    /// A nonce is golden when `mix(nonce ^ seed) < threshold`.
    pub threshold: u64,
}

impl HashSearch {
    /// Defaults sized so the universe holds ≈256 golden nonces.
    pub fn paper_default() -> Self {
        let universe = 1u64 << 20;
        Self {
            universe,
            // P(golden) = 2^-12 ⇒ E[golden] = 2^20 / 2^12 = 256.
            threshold: u64::MAX >> 12,
        }
    }

    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Nonces scanned at a knob value (the searched prefix).
    pub fn prefix_at(&self, knob: f64) -> u64 {
        ((self.universe as f64 * knob.clamp(0.0, 1.0)).round() as u64).min(self.universe)
    }

    /// All golden nonces in the full universe for a seed (the
    /// hyper-accurate reference output).
    fn golden_in(&self, seed: u64, lo: u64, hi: u64) -> Vec<u64> {
        (lo..hi)
            .filter(|&n| Self::mix(n ^ seed) < self.threshold)
            .collect()
    }
}

impl RmsApp for HashSearch {
    fn name(&self) -> &'static str {
        "hashsearch"
    }

    fn knob_name(&self) -> &'static str {
        "searched fraction of nonce space"
    }

    fn default_knob(&self) -> f64 {
        0.5
    }

    fn knob_sweep(&self) -> Vec<f64> {
        vec![0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0]
    }

    fn hyper_knob(&self) -> f64 {
        1.0
    }

    fn problem_size(&self, knob: f64) -> f64 {
        self.prefix_at(knob) as f64
    }

    fn run(&self, knob: f64, cfg: &RunConfig) -> Vec<f64> {
        let prefix = self.prefix_at(knob);
        let seed = cfg.seed;
        let mut found = Vec::new();
        for t in 0..cfg.threads {
            if cfg.is_dropped(t) {
                continue; // the slice is never searched
            }
            let (lo, hi) = thread_range(prefix as usize, cfg.threads, t);
            found.extend(self.golden_in(seed, lo as u64, hi as u64));
        }
        found.sort_unstable();
        found.into_iter().map(|n| n as f64).collect()
    }

    fn quality(&self, output: &[f64], reference: &[f64]) -> f64 {
        // Fraction of the reference's golden nonces recovered. Both
        // vectors are sorted nonce lists.
        if reference.is_empty() {
            return 1.0;
        }
        let hits = output.iter().filter(|n| reference.contains(n)).count();
        hits as f64 / reference.len() as f64
    }

    fn workload(&self, knob: f64) -> Workload {
        Workload {
            work_units: self.problem_size(knob),
            // One mix + compare per nonce.
            instructions_per_unit: 8.0,
            mem_accesses_per_instr: 0.0, // pure compute: the ideal NTC guest
            private_hit_rate: 1.0,
            cluster_hit_rate: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> HashSearch {
        HashSearch::paper_default()
    }

    #[test]
    fn golden_density_matches_threshold() {
        let a = app();
        let golden = a.golden_in(7, 0, a.universe);
        // E = 256, σ = 16; allow ±5σ.
        assert!(
            (176..=336).contains(&golden.len()),
            "golden count {}",
            golden.len()
        );
    }

    #[test]
    fn quality_scales_with_searched_fraction() {
        let a = app();
        let cfg = RunConfig::default_run(16);
        let reference = a.run(1.0, &cfg);
        let q_quarter = a.quality(&a.run(0.25, &cfg), &reference);
        let q_full = a.quality(&a.run(1.0, &cfg), &reference);
        assert!((q_full - 1.0).abs() < 1e-12);
        assert!(
            (q_quarter - 0.25).abs() < 0.12,
            "quarter of the space finds ≈ quarter of the gold, got {q_quarter}"
        );
    }

    #[test]
    fn strict_weak_scaling_per_thread_work_constant() {
        // Double the threads at double the problem size: per-thread
        // slice length unchanged.
        let a = app();
        let half = a.prefix_at(0.5) / 16;
        let full = a.prefix_at(1.0) / 32;
        assert_eq!(half, full);
    }

    #[test]
    fn drop_loses_proportional_gold() {
        let a = app();
        let reference = a.run(1.0, &RunConfig::default_run(16));
        let q = a.quality(&a.run(1.0, &RunConfig::with_drop(16, 0.5)), &reference);
        assert!(
            (q - 0.5).abs() < 0.12,
            "Drop 1/2 keeps ≈ half the gold, got {q}"
        );
    }

    #[test]
    fn deterministic_and_sorted() {
        let a = app();
        let cfg = RunConfig::default_run(8);
        let x = a.run(0.5, &cfg);
        assert_eq!(x, a.run(0.5, &cfg));
        assert!(x.windows(2).all(|w| w[0] < w[1]));
    }
}
