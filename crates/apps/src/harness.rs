//! Quality-versus-problem-size measurement harness (Figures 2 and 4).
//!
//! For each benchmark the harness sweeps the Accordion input under
//! three scenarios — `Default`, `Drop 1/4`, `Drop 1/2` (Section 6.2) —
//! computing quality against a hyper-accurate reference execution and
//! normalizing both axes to the default Accordion input, exactly as
//! the paper's figures do.

use crate::app::RmsApp;
use crate::config::RunConfig;
use accordion_stats::interp::PiecewiseLinear;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Execution scenario of a front.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// All parallel tasks contribute.
    Default,
    /// A uniform fraction of threads is dropped.
    Drop(f64),
}

impl Scenario {
    /// The paper's three scenarios.
    pub const PAPER: [Scenario; 3] = [Scenario::Default, Scenario::Drop(0.25), Scenario::Drop(0.5)];

    /// Display label matching the paper's legends.
    pub fn label(&self) -> String {
        match self {
            Scenario::Default => "Default".to_string(),
            Scenario::Drop(f) if (*f - 0.25).abs() < 1e-9 => "Drop 1/4".to_string(),
            Scenario::Drop(f) if (*f - 0.5).abs() < 1e-9 => "Drop 1/2".to_string(),
            Scenario::Drop(f) => format!("Drop {f:.2}"),
        }
    }

    fn config(&self, threads: usize) -> RunConfig {
        match self {
            Scenario::Default => RunConfig::default_run(threads),
            Scenario::Drop(f) => RunConfig::with_drop(threads, *f),
        }
    }
}

/// One measured point of a front.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontPoint {
    /// Accordion input value.
    pub knob: f64,
    /// Problem size normalized to the default input's.
    pub size_norm: f64,
    /// Quality normalized to the default input's error-free quality.
    pub quality_norm: f64,
}

/// A quality-versus-problem-size front for one benchmark/scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityFront {
    /// Benchmark name.
    pub app: String,
    /// Scenario the front was measured under.
    pub scenario: Scenario,
    /// Measured points, ordered by increasing problem size.
    pub points: Vec<FrontPoint>,
}

impl QualityFront {
    /// A piecewise-linear interpolant `size_norm → quality_norm`, used
    /// by the Accordion framework to estimate quality at arbitrary
    /// problem sizes.
    pub fn interpolator(&self) -> PiecewiseLinear {
        PiecewiseLinear::from_samples(
            self.points
                .iter()
                .map(|p| (p.size_norm, p.quality_norm))
                .collect(),
        )
        .expect("fronts have at least one point")
    }
}

/// All three paper scenarios measured against one shared
/// hyper-accurate reference.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontSet {
    /// Benchmark name.
    pub app: String,
    /// One front per scenario, in [`Scenario::PAPER`] order.
    pub fronts: Vec<QualityFront>,
}

impl FrontSet {
    /// Measures the paper's three scenarios for `app`.
    ///
    /// Quality is computed against the hyper-accurate execution
    /// outcome and normalized to the quality at the default Accordion
    /// input under Default execution (Section 6.2); problem size is
    /// normalized to the default input's.
    pub fn measure(app: &dyn RmsApp) -> Self {
        Self::measure_scenarios(app, &Scenario::PAPER)
    }

    /// [`Self::measure`], served from a process-wide cache keyed by
    /// benchmark name. Front measurement runs the real kernels —
    /// seconds of work that dominates multi-artifact runs when
    /// repeated — and is a pure function of the app (the kernels are
    /// internally seeded), so every caller can share one measurement.
    pub fn measured(app: &dyn RmsApp) -> Arc<Self> {
        static CACHE: OnceLock<Mutex<HashMap<String, Arc<FrontSet>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(set) = cache.lock().expect("front cache lock").get(app.name()) {
            return set.clone();
        }
        // Measure outside the lock so distinct benchmarks measure
        // concurrently; a racing duplicate measurement is
        // deterministic, so whichever insertion wins, the set is the
        // same.
        let measured = Arc::new(Self::measure(app));
        cache
            .lock()
            .expect("front cache lock")
            .entry(app.name().to_string())
            .or_insert(measured)
            .clone()
    }

    /// Measures an explicit scenario list.
    pub fn measure_scenarios(app: &dyn RmsApp, scenarios: &[Scenario]) -> Self {
        let threads = app.profile_threads();
        let reference = app.run(app.hyper_knob(), &RunConfig::default_run(threads));
        let default_out = app.run(app.default_knob(), &RunConfig::default_run(threads));
        let q_default = app.quality(&default_out, &reference).max(1e-9);
        let size_default = app.problem_size(app.default_knob());

        let fronts = scenarios
            .iter()
            .map(|&scenario| {
                let cfg = scenario.config(threads);
                let points = app
                    .knob_sweep()
                    .iter()
                    .map(|&knob| {
                        let out = app.run(knob, &cfg);
                        FrontPoint {
                            knob,
                            size_norm: app.problem_size(knob) / size_default,
                            quality_norm: app.quality(&out, &reference) / q_default,
                        }
                    })
                    .collect();
                QualityFront {
                    app: app.name().to_string(),
                    scenario,
                    points,
                }
            })
            .collect();

        Self {
            app: app.name().to_string(),
            fronts,
        }
    }

    /// The front for a given scenario, if measured.
    pub fn front(&self, scenario: Scenario) -> Option<&QualityFront> {
        self.fronts.iter().find(|f| f.scenario == scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotspot::Hotspot;

    fn fronts() -> FrontSet {
        FrontSet::measure(&Hotspot::paper_default())
    }

    #[test]
    fn default_front_passes_through_unity() {
        let set = fronts();
        let f = set.front(Scenario::Default).unwrap();
        // The default knob (size_norm = 1) must have quality_norm = 1.
        let interp = f.interpolator();
        assert!((interp.eval(1.0) - 1.0).abs() < 0.02);
    }

    #[test]
    fn quality_increases_with_problem_size_under_default() {
        let set = fronts();
        let f = set.front(Scenario::Default).unwrap();
        let first = f.points.first().unwrap().quality_norm;
        let last = f.points.last().unwrap().quality_norm;
        assert!(last > first);
    }

    #[test]
    fn drop_fronts_sit_below_default() {
        let set = fronts();
        let d0 = set.front(Scenario::Default).unwrap();
        let d4 = set.front(Scenario::Drop(0.25)).unwrap();
        let d2 = set.front(Scenario::Drop(0.5)).unwrap();
        // Compare at each sweep point.
        let mut below_4 = 0;
        let mut below_2 = 0;
        for ((a, b), c) in d0.points.iter().zip(&d4.points).zip(&d2.points) {
            if b.quality_norm <= a.quality_norm + 1e-9 {
                below_4 += 1;
            }
            if c.quality_norm <= b.quality_norm + 1e-9 {
                below_2 += 1;
            }
        }
        // Allow occasional nondeterministic-looking crossings as the
        // paper itself observes for bodytrack, but the trend must hold.
        assert!(
            below_4 >= d0.points.len() - 1,
            "Drop 1/4 must sit below Default"
        );
        assert!(
            below_2 >= d0.points.len() - 2,
            "Drop 1/2 must sit below Drop 1/4"
        );
    }

    #[test]
    fn scenario_labels() {
        assert_eq!(Scenario::Default.label(), "Default");
        assert_eq!(Scenario::Drop(0.25).label(), "Drop 1/4");
        assert_eq!(Scenario::Drop(0.5).label(), "Drop 1/2");
    }
}
