//! The common benchmark contract (paper Table 3).

use crate::config::RunConfig;
use accordion_sim::workload::Workload;

/// An RMS benchmark with an Accordion input knob.
///
/// Implementations are deterministic under `RunConfig::seed`: the same
/// knob and config always produce the same output vector, which is
/// what makes quality *relative to a reference execution* well
/// defined.
pub trait RmsApp: Send + Sync {
    /// Benchmark name as used in the paper ("canneal", …).
    fn name(&self) -> &'static str;

    /// Name of the Accordion input (Table 3).
    fn knob_name(&self) -> &'static str;

    /// The default knob value (the paper's `simsmall`-equivalent
    /// baseline, the normalization point of Figures 2 and 4).
    fn default_knob(&self) -> f64;

    /// The knob sweep used for the quality-versus-problem-size fronts.
    /// Ordered so problem size increases along the sweep.
    fn knob_sweep(&self) -> Vec<f64>;

    /// The "hyper-accurate" knob setting used as the quality reference
    /// (Section 6.2).
    fn hyper_knob(&self) -> f64;

    /// Thread count the paper profiles this benchmark under (64, or
    /// 32 for srad).
    fn profile_threads(&self) -> usize {
        64
    }

    /// Problem size implied by a knob value, in benchmark-specific
    /// work units (callers normalize to the default knob).
    fn problem_size(&self, knob: f64) -> f64;

    /// Runs the kernel, returning its output vector.
    fn run(&self, knob: f64, cfg: &RunConfig) -> Vec<f64>;

    /// Application-specific quality of `output` against `reference`
    /// (higher is better). Both must come from `run` at compatible
    /// configurations.
    fn quality(&self, output: &[f64], reference: &[f64]) -> f64;

    /// The abstract workload descriptor at a knob value, for the
    /// analytic timing model.
    fn workload(&self, knob: f64) -> Workload {
        Workload::rms_default(self.problem_size(knob))
    }

    /// The workload at full paper-input scale: our kernels run the
    /// paper's problems shrunk by roughly [`FULL_INPUT_WORK_SCALE`]
    /// for test speed; the analytic timing model (baselines,
    /// iso-execution-time fronts, speculative per-thread cycle counts)
    /// restores the real scale so thread lengths — and therefore the
    /// `Perr = 1/e` speculative targets — match paper-sized inputs.
    fn full_scale_workload(&self, knob: f64) -> Workload {
        let mut w = self.workload(knob);
        w.work_units *= FULL_INPUT_WORK_SCALE;
        w
    }
}

/// Ratio between the paper's benchmark input sizes and the shrunken
/// deterministic instances this crate executes.
pub const FULL_INPUT_WORK_SCALE: f64 = 100.0;

/// Extension benchmarks beyond the paper's six (Section 7 directions).
pub fn extension_apps() -> Vec<Box<dyn RmsApp>> {
    vec![Box::new(crate::hashsearch::HashSearch::paper_default())]
}

/// All six paper benchmarks with their default configurations.
///
/// # Example
///
/// ```
/// let apps = accordion_apps::all_apps();
/// assert_eq!(apps.len(), 6);
/// let names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
/// assert!(names.contains(&"canneal") && names.contains(&"srad"));
/// ```
pub fn all_apps() -> Vec<Box<dyn RmsApp>> {
    vec![
        Box::new(crate::canneal::Canneal::paper_default()),
        Box::new(crate::ferret::Ferret::paper_default()),
        Box::new(crate::bodytrack::Bodytrack::paper_default()),
        Box::new(crate::x264::X264::paper_default()),
        Box::new(crate::hotspot::Hotspot::paper_default()),
        Box::new(crate::srad::Srad::paper_default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_the_paper_benchmarks() {
        let apps = all_apps();
        let names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["canneal", "ferret", "bodytrack", "x264", "hotspot", "srad"]
        );
    }

    #[test]
    fn srad_profiles_under_32_threads_others_64() {
        for app in all_apps() {
            let expect = if app.name() == "srad" { 32 } else { 64 };
            assert_eq!(app.profile_threads(), expect, "{}", app.name());
        }
    }

    #[test]
    fn sweeps_are_increasing_in_problem_size() {
        for app in all_apps() {
            let sweep = app.knob_sweep();
            assert!(sweep.len() >= 5, "{} sweep too short", app.name());
            let sizes: Vec<f64> = sweep.iter().map(|&k| app.problem_size(k)).collect();
            for w in sizes.windows(2) {
                assert!(
                    w[1] > w[0],
                    "{}: problem size must increase along the sweep",
                    app.name()
                );
            }
        }
    }

    #[test]
    fn default_knob_is_inside_the_sweep_range() {
        for app in all_apps() {
            let sizes: Vec<f64> = app
                .knob_sweep()
                .iter()
                .map(|&k| app.problem_size(k))
                .collect();
            let d = app.problem_size(app.default_knob());
            let lo = sizes.first().copied().unwrap();
            let hi = sizes.last().copied().unwrap();
            assert!(d >= lo && d <= hi, "{}: default outside sweep", app.name());
        }
    }

    #[test]
    fn hyper_knob_dominates_sweep_in_problem_size() {
        for app in all_apps() {
            let hyper = app.problem_size(app.hyper_knob());
            let max_sweep = app
                .knob_sweep()
                .iter()
                .map(|&k| app.problem_size(k))
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(
                hyper >= max_sweep,
                "{}: hyper-accurate run must be at least as large as the sweep",
                app.name()
            );
        }
    }
}
