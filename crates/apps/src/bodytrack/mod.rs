//! `bodytrack` — annealed-particle-filter tracking (PARSEC; paper
//! Section 5.2).
//!
//! Tracks an articulated pose (a `D`-dimensional state vector) through
//! a scene using an annealed particle filter: per frame, several
//! annealing layers progressively sharpen the particle weights and
//! shrink the diffusion noise, letting the particle cloud settle into
//! the observation likelihood's peak. The Accordion input is the
//! number of annealing layers; quality is SSD-based distortion of the
//! tracked configuration vector. The Drop hook prevents particle
//! weight calculation for dropped threads' particles (the paper's
//! `TrackingModelPthread::Exec` hook).

use crate::app::RmsApp;
use crate::config::{thread_range, RunConfig};
use accordion_sim::workload::Workload;
use accordion_stats::rng::{sample_std_normal, StreamRng};
use rand::Rng;

/// The bodytrack kernel configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Bodytrack {
    /// State dimensionality (joint angles + root position).
    pub dims: usize,
    /// Number of frames in the sequence.
    pub frames: usize,
    /// Particle count.
    pub particles: usize,
    /// Process (motion) noise per frame.
    pub process_noise: f64,
    /// Observation noise.
    pub obs_noise: f64,
}

impl Bodytrack {
    /// Paper-like defaults shrunk to a fast instance.
    pub fn paper_default() -> Self {
        Self {
            dims: 8,
            frames: 12,
            particles: 256,
            process_noise: 0.35,
            obs_noise: 0.12,
        }
    }

    /// Generates the ground-truth pose trajectory and its noisy
    /// observations.
    fn trajectory(&self, rng: &mut StreamRng) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut truth = Vec::with_capacity(self.frames);
        let mut obs = Vec::with_capacity(self.frames);
        let mut pose: Vec<f64> = (0..self.dims).map(|_| sample_std_normal(rng)).collect();
        for _ in 0..self.frames {
            pose = pose
                .iter()
                .map(|p| p + self.process_noise * sample_std_normal(rng))
                .collect();
            let o: Vec<f64> = pose
                .iter()
                .map(|p| p + self.obs_noise * sample_std_normal(rng))
                .collect();
            truth.push(pose.clone());
            obs.push(o);
        }
        (truth, obs)
    }
}

impl RmsApp for Bodytrack {
    fn name(&self) -> &'static str {
        "bodytrack"
    }

    fn knob_name(&self) -> &'static str {
        "number of annealing layers"
    }

    fn default_knob(&self) -> f64 {
        3.0
    }

    fn knob_sweep(&self) -> Vec<f64> {
        vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0]
    }

    fn hyper_knob(&self) -> f64 {
        16.0
    }

    fn problem_size(&self, knob: f64) -> f64 {
        // Each layer weighs + resamples the full particle set per
        // frame.
        knob * (self.particles * self.frames) as f64
    }

    fn run(&self, knob: f64, cfg: &RunConfig) -> Vec<f64> {
        let layers = (knob.max(1.0).round() as usize).max(1);
        let seed = cfg.seed_stream();
        let (_truth, obs) = self.trajectory(&mut seed.stream("bodytrack-scene", 0));
        let mut rng = seed.stream("bodytrack-filter", 0);
        let mut corrupt_rng = seed.stream("bodytrack-corrupt", 0);
        let d = self.dims;
        let p = self.particles;

        // Initialize the particle cloud around the first observation.
        let mut particles: Vec<Vec<f64>> = (0..p)
            .map(|_| {
                obs[0]
                    .iter()
                    .map(|o| o + 0.5 * sample_std_normal(&mut rng))
                    .collect()
            })
            .collect();
        let mut weights = vec![1.0 / p as f64; p];
        let mut estimates = Vec::with_capacity(self.frames * d);

        // Particles owned by dropped threads never get weights and are
        // never replaced by resampling: they go stale, yet still enter
        // the merged estimate — the cloud pollution that makes
        // bodytrack the paper's most Drop-sensitive benchmark.
        let mut live = vec![true; p];
        for t in 0..cfg.threads {
            if cfg.is_dropped(t) {
                let (p0, p1) = thread_range(p, cfg.threads, t);
                for flag in live[p0..p1].iter_mut() {
                    *flag = false;
                }
            }
        }

        for (frame, frame_obs) in obs.iter().enumerate() {
            // The paper's first bodytrack Drop hook: dropped threads
            // skip the row/column image filtering
            // (`ParticleFilterPthread::Exec`), so the observation
            // components their image stripes feed stay unfiltered —
            // heavy noise that biases the likelihood for *every*
            // particle. Observation dims rotate across threads by
            // frame so the pollution spreads.
            let mut frame_obs = frame_obs.clone();
            for (k, o) in frame_obs.iter_mut().enumerate() {
                let owner = (k + frame) % cfg.threads;
                if cfg.is_dropped(owner) {
                    *o += 15.0 * self.obs_noise * sample_std_normal(&mut rng);
                }
            }
            let frame_obs = &frame_obs;

            // Propagate with process noise.
            for part in particles.iter_mut() {
                for v in part.iter_mut() {
                    *v += self.process_noise * sample_std_normal(&mut rng);
                }
            }

            for layer in 0..layers {
                // Annealing schedule: weights sharpen and diffusion
                // shrinks as layers progress.
                let beta =
                    0.5 * 2f64.powi(layer as i32) / (self.obs_noise * self.obs_noise * d as f64);
                let sigma = self.process_noise * 0.5f64.powi(layer as i32 + 1);

                // Weight computation, partitioned across threads.
                for t in 0..cfg.threads {
                    let (p0, p1) = thread_range(p, cfg.threads, t);
                    if cfg.is_dropped(t) {
                        // Particle weight calculation prevented.
                        for w in weights[p0..p1].iter_mut() {
                            *w = 0.0;
                        }
                        continue;
                    }
                    for i in p0..p1 {
                        let dist2: f64 = particles[i]
                            .iter()
                            .zip(frame_obs)
                            .map(|(x, o)| (x - o) * (x - o))
                            .sum();
                        weights[i] = (-beta * dist2).exp();
                    }
                }

                let total: f64 = weights.iter().sum();
                if total <= 0.0 {
                    continue; // degenerate layer: keep the cloud as-is
                }

                // Systematic resampling over the live slots; stale
                // slots keep their (unweighted) particles.
                let live_count = live.iter().filter(|&&l| l).count().max(1);
                let step = total / live_count as f64;
                let mut u = step * rng.random::<f64>();
                let mut cum = weights[0];
                let mut j = 0;
                let mut resampled = particles.clone();
                for (slot, resampled_slot) in resampled.iter_mut().enumerate() {
                    if !live[slot] {
                        continue;
                    }
                    while cum < u && j + 1 < p {
                        j += 1;
                        cum += weights[j];
                    }
                    *resampled_slot = particles[j].clone();
                    u += step;
                }
                particles = resampled;

                // Diffuse with the layer's shrunken noise.
                for part in particles.iter_mut() {
                    for v in part.iter_mut() {
                        *v += sigma * sample_std_normal(&mut rng);
                    }
                }
            }

            // Estimate: mean of the (resampled, hence equally
            // weighted) cloud.
            for k in 0..d {
                let mean = particles.iter().map(|part| part[k]).sum::<f64>() / p as f64;
                estimates.push(mean);
            }
        }

        // End-result corruption: infected threads owned particle
        // ranges; their influence is already merged, so the paper's
        // end-result injection corrupts the per-frame estimate entries
        // attributed to each thread's share.
        if cfg.corruption.is_some() {
            let len = estimates.len();
            for t in 0..cfg.threads {
                let (e0, e1) = thread_range(len, cfg.threads, t);
                let mut vals = estimates[e0..e1].to_vec();
                if cfg.corrupt_thread_results(t, &mut vals, &mut corrupt_rng) {
                    estimates[e0..e1].copy_from_slice(&vals);
                } else {
                    for v in estimates[e0..e1].iter_mut() {
                        *v = 0.0;
                    }
                }
            }
        }

        estimates
    }

    fn quality(&self, output: &[f64], reference: &[f64]) -> f64 {
        // SSD-based distortion of the tracked configuration vector,
        // normalized by the reference trajectory's centered energy.
        let ssd = accordion_stats::metrics::ssd(output, reference);
        let mean: f64 = reference.iter().sum::<f64>() / reference.len() as f64;
        let energy: f64 = reference
            .iter()
            .map(|r| (r - mean) * (r - mean))
            .sum::<f64>()
            .max(1e-12);
        (1.0 - ssd / energy).max(0.0)
    }

    fn workload(&self, knob: f64) -> Workload {
        Workload {
            work_units: self.problem_size(knob),
            // Weight = D-dim distance + exp; plus resampling share.
            instructions_per_unit: 6.0 * self.dims as f64,
            mem_accesses_per_instr: 0.01,
            private_hit_rate: 0.95,
            cluster_hit_rate: 0.90,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> Bodytrack {
        Bodytrack::paper_default()
    }

    #[test]
    fn tracking_follows_observations() {
        let a = app();
        let cfg = RunConfig::default_run(8);
        let est = a.run(4.0, &cfg);
        let (_truth, obs) = a.trajectory(&mut cfg.seed_stream().stream("bodytrack-scene", 0));
        // The estimate should be closer to the observation stream than
        // a zero predictor.
        let obs_flat: Vec<f64> = obs.into_iter().flatten().collect();
        let err = accordion_stats::metrics::mse(&est, &obs_flat);
        let zero = vec![0.0; est.len()];
        let zero_err = accordion_stats::metrics::mse(&zero, &obs_flat);
        assert!(err < 0.5 * zero_err, "tracker mse {err} vs zero {zero_err}");
    }

    #[test]
    fn more_layers_track_better() {
        let a = app();
        let cfg = RunConfig::default_run(8);
        let hyper = a.run(a.hyper_knob(), &cfg);
        let q1 = a.quality(&a.run(1.0, &cfg), &hyper);
        let q6 = a.quality(&a.run(6.0, &cfg), &hyper);
        assert!(q6 > q1, "6 layers {q6} vs 1 layer {q1}");
    }

    #[test]
    fn drop_degrades_quality_noticeably() {
        // The paper singles bodytrack out as the most Drop-sensitive
        // benchmark.
        let a = app();
        let hyper = a.run(a.hyper_knob(), &RunConfig::default_run(8));
        let q_full = a.quality(&a.run(3.0, &RunConfig::default_run(8)), &hyper);
        let q_half = a.quality(&a.run(3.0, &RunConfig::with_drop(8, 0.5)), &hyper);
        assert!(q_half < q_full);
    }

    #[test]
    fn output_shape() {
        let a = app();
        let est = a.run(2.0, &RunConfig::default_run(4));
        assert_eq!(est.len(), a.frames * a.dims);
        assert!(est.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_runs() {
        let a = app();
        let cfg = RunConfig::default_run(16);
        assert_eq!(a.run(3.0, &cfg), a.run(3.0, &cfg));
    }

    #[test]
    fn survives_all_threads_dropped() {
        let a = app();
        let est = a.run(3.0, &RunConfig::with_drop(8, 1.0));
        assert!(est.iter().all(|v| v.is_finite()));
    }
}
