//! `x264` — H.264-style video encoding proxy (PARSEC; paper
//! Section 5.2).
//!
//! Encodes a synthetic video with the transform-quantize-reconstruct
//! core of a block codec: 8×8 DCT, frequency-weighted quantization at
//! quantizer `QP` (the Accordion input), dequantization and inverse
//! DCT. A smaller QP keeps more coefficients — more compression work
//! and higher fidelity, the paper's "complex" dependence of both
//! problem size and quality on the knob. Quality is SSIM-based
//! (Table 3: SSIM matches human perception better than PSNR). The
//! first frame is intra coded; subsequent frames are P-frames with
//! motion-compensated prediction ([`motion`]) against the previous
//! reconstructed frame and DCT-coded residuals. The
//! Drop hook prohibits the encoding of a macroblock (the paper's
//! `x264_slice_write` hook): dropped macroblocks are reconstructed
//! from the co-located block of the previous reconstructed frame.

pub mod motion;
pub mod transform;

use crate::app::RmsApp;
use crate::config::{thread_range, RunConfig};
use accordion_sim::fault::CorruptionMode;
use accordion_sim::workload::Workload;
use accordion_stats::metrics::ssim;
use transform::{dct2, dequantize, idct2, quantize};

const MB: usize = 8;

/// The x264 kernel configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct X264 {
    /// Frame side length in pixels (must be a multiple of 8).
    pub side: usize,
    /// Number of frames.
    pub frames: usize,
}

impl X264 {
    /// Motion-search window (±pixels) for P-frame prediction.
    const SEARCH_RANGE: i32 = 3;

    /// Paper-like defaults: a short 64×64 clip.
    pub fn paper_default() -> Self {
        Self {
            side: 64,
            frames: 6,
        }
    }

    /// Synthetic source video: a moving bright disc over a drifting
    /// sinusoidal background — deterministic, with motion so that
    /// dropped macroblocks (reconstructed from the previous frame)
    /// visibly mismatch.
    pub fn source_frame(&self, f: usize) -> Vec<f64> {
        let n = self.side;
        let t = f as f64;
        let mut img = vec![0.0; n * n];
        for y in 0..n {
            for x in 0..n {
                let fx = x as f64 / n as f64;
                let fy = y as f64 / n as f64;
                let mut v = 110.0
                    + 60.0 * (2.0 * std::f64::consts::PI * (fx * 2.0 + 0.015 * t)).sin()
                    + 30.0 * (2.0 * std::f64::consts::PI * (fy * 3.0 - 0.010 * t)).cos();
                let cx = 0.3 + 0.02 * t;
                let cy = 0.4 + 0.012 * t;
                if (fx - cx).powi(2) + (fy - cy).powi(2) < 0.02 {
                    v = 240.0;
                }
                img[y * n + x] = v.clamp(0.0, 255.0);
            }
        }
        img
    }

    fn macroblocks_per_frame(&self) -> usize {
        (self.side / MB) * (self.side / MB)
    }

    /// Encodes the clip, returning `(reconstruction, nonzero_coeffs)`.
    fn encode(&self, qp: f64, cfg: &RunConfig) -> (Vec<f64>, usize) {
        let n = self.side;
        let mbs = self.macroblocks_per_frame();
        let mb_per_row = n / MB;
        let mut recon = vec![0.0; n * n * self.frames];
        let mut nonzero_total = 0;
        let mut corrupt_rng = cfg.seed_stream().stream("x264-corrupt", 0);

        // Slice assignment rotates across frames (as threaded encoders
        // do), so a dropped thread conceals different macroblocks each
        // frame instead of blanking the same region forever.
        let mut owner_of = vec![0usize; mbs];
        for t in 0..cfg.threads {
            let (m0, m1) = thread_range(mbs, cfg.threads, t);
            for slot in owner_of.iter_mut().take(m1).skip(m0) {
                *slot = t;
            }
        }
        for f in 0..self.frames {
            let src = self.source_frame(f);
            for t in 0..cfg.threads {
                let (m0, m1) = thread_range(mbs, cfg.threads, t);
                let _ = (m0, m1);
                let dropped = cfg.is_dropped(t);
                for m in (0..mbs).filter(|m| owner_of[(m + f * 7) % mbs] == t) {
                    let bx = (m % mb_per_row) * MB;
                    let by = (m / mb_per_row) * MB;
                    if dropped {
                        // Macroblock encoding prohibited: reconstruct
                        // from the previous frame (mid-gray for the
                        // first frame).
                        for y in 0..MB {
                            for x in 0..MB {
                                let dst = f * n * n + (by + y) * n + (bx + x);
                                recon[dst] = if f == 0 {
                                    128.0
                                } else {
                                    recon[(f - 1) * n * n + (by + y) * n + (bx + x)]
                                };
                            }
                        }
                        continue;
                    }
                    let mut block = [0.0; MB * MB];
                    for y in 0..MB {
                        for x in 0..MB {
                            block[y * MB + x] = src[(by + y) * n + (bx + x)];
                        }
                    }
                    // Intra for the first frame; motion-compensated
                    // inter prediction against the previous
                    // *reconstructed* frame afterwards (closed loop,
                    // as a real encoder, so no encoder/decoder drift).
                    let prediction = if f == 0 {
                        None
                    } else {
                        Some(motion::search(
                            &src,
                            &recon[(f - 1) * n * n..f * n * n],
                            n,
                            n,
                            bx,
                            by,
                            MB,
                            Self::SEARCH_RANGE,
                        ))
                    };
                    let mut residual = [0.0; MB * MB];
                    for (i, r) in residual.iter_mut().enumerate() {
                        let pred = prediction.as_ref().map_or(0.0, |p| p.block[i]);
                        *r = block[i] - pred;
                    }
                    let coef = dct2(&residual);
                    let (levels, nz) = quantize(&coef, qp);
                    nonzero_total += nz;
                    let rec = idct2(&dequantize(&levels, qp));
                    let mut rec_vals: Vec<f64> = rec
                        .iter()
                        .enumerate()
                        .map(|(i, r)| r + prediction.as_ref().map_or(0.0, |p| p.block[i]))
                        .collect();
                    // End-result corruption at macroblock granularity.
                    let keep = cfg.corrupt_thread_results(t, &mut rec_vals, &mut corrupt_rng);
                    for y in 0..MB {
                        for x in 0..MB {
                            let dst = f * n * n + (by + y) * n + (bx + x);
                            recon[dst] = if keep {
                                rec_vals[y * MB + x].clamp(0.0, 255.0)
                            } else if f == 0 {
                                128.0
                            } else {
                                recon[(f - 1) * n * n + (by + y) * n + (bx + x)]
                            };
                        }
                    }
                }
            }
        }
        (recon, nonzero_total)
    }
}

impl RmsApp for X264 {
    fn name(&self) -> &'static str {
        "x264"
    }

    fn knob_name(&self) -> &'static str {
        "quantizer (QP)"
    }

    fn default_knob(&self) -> f64 {
        16.0
    }

    fn knob_sweep(&self) -> Vec<f64> {
        // Decreasing QP ⇒ more retained coefficients ⇒ larger problem.
        vec![48.0, 40.0, 32.0, 24.0, 16.0, 12.0, 8.0, 5.0]
    }

    fn hyper_knob(&self) -> f64 {
        1.0
    }

    fn problem_size(&self, knob: f64) -> f64 {
        // Encoding work = a constant per-macroblock floor (motion
        // search + transforms) plus coefficient-coding work that
        // tracks the retained-coefficient count, measured on the clean
        // deterministic encode — a pure function of the knob. The QP
        // dependence is the paper's Table 3 "complex": it flattens at
        // coarse quantizers (the floor) and steepens at fine ones.
        const MB_BASE_WORK: f64 = 64.0;
        const COEF_WORK: f64 = 16.0;
        let (_, nz) = self.encode(knob, &RunConfig::default_run(1));
        let mbs_total = (self.frames * self.macroblocks_per_frame()) as f64;
        mbs_total * MB_BASE_WORK + nz as f64 * COEF_WORK
    }

    fn run(&self, knob: f64, cfg: &RunConfig) -> Vec<f64> {
        self.encode(knob, cfg).0
    }

    fn quality(&self, output: &[f64], reference: &[f64]) -> f64 {
        // Mean SSIM across frames against the reference
        // reconstruction.
        let n = self.side;
        let per_frame = n * n;
        let mut total = 0.0;
        for f in 0..self.frames {
            total += ssim(
                &output[f * per_frame..(f + 1) * per_frame],
                &reference[f * per_frame..(f + 1) * per_frame],
                n,
                n,
                255.0,
            );
        }
        total / self.frames as f64
    }

    fn workload(&self, knob: f64) -> Workload {
        Workload {
            work_units: self.problem_size(knob),
            // Per retained coefficient: its share of DCT/IDCT and
            // entropy-coding-like work.
            instructions_per_unit: 60.0,
            mem_accesses_per_instr: 0.01,
            private_hit_rate: 0.94,
            cluster_hit_rate: 0.90,
        }
    }
}

/// Re-exported so harness code can name the corruption modes x264
/// sweeps without importing `accordion-sim` directly.
pub type X264CorruptionMode = CorruptionMode;

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> X264 {
        X264::paper_default()
    }

    #[test]
    fn lower_qp_means_more_work_and_quality() {
        let a = app();
        let cfg = RunConfig::default_run(8);
        assert!(a.problem_size(4.0) > a.problem_size(32.0));
        let hyper = a.run(a.hyper_knob(), &cfg);
        let q_hi = a.quality(&a.run(8.0, &cfg), &hyper);
        let q_lo = a.quality(&a.run(40.0, &cfg), &hyper);
        assert!(q_hi > q_lo, "QP8 {q_hi} vs QP40 {q_lo}");
    }

    #[test]
    fn reconstruction_is_close_to_source_at_low_qp() {
        let a = app();
        let recon = a.run(2.0, &RunConfig::default_run(8));
        let src: Vec<f64> = (0..a.frames).flat_map(|f| a.source_frame(f)).collect();
        let q = a.quality(&recon, &src);
        assert!(
            q > 0.95,
            "near-lossless encode should match source, ssim={q}"
        );
    }

    #[test]
    fn dropped_macroblocks_hurt_quality() {
        let a = app();
        let hyper = a.run(a.hyper_knob(), &RunConfig::default_run(8));
        let q_full = a.quality(&a.run(16.0, &RunConfig::default_run(8)), &hyper);
        let q_half = a.quality(&a.run(16.0, &RunConfig::with_drop(8, 0.5)), &hyper);
        assert!(q_half < q_full);
        assert!(
            q_half > 0.2,
            "previous-frame concealment keeps some quality"
        );
    }

    #[test]
    fn output_covers_all_frames() {
        let a = app();
        let out = a.run(16.0, &RunConfig::default_run(4));
        assert_eq!(out.len(), a.side * a.side * a.frames);
        assert!(out.iter().all(|v| (0.0..=255.0).contains(v)));
    }

    #[test]
    fn deterministic_runs() {
        let a = app();
        let cfg = RunConfig::default_run(16);
        assert_eq!(a.run(20.0, &cfg), a.run(20.0, &cfg));
    }
}
