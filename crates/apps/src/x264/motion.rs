//! Block motion estimation for the x264 proxy's P-frames.
//!
//! A full-search block matcher over a small window, minimizing the sum
//! of absolute differences (SAD) against the previous *reconstructed*
//! frame — the same closed prediction loop a real encoder uses, so
//! drift cannot accumulate between encoder and decoder.

/// A motion vector in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotionVector {
    /// Horizontal displacement.
    pub dx: i32,
    /// Vertical displacement.
    pub dy: i32,
}

/// Result of motion search for one block.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// The chosen motion vector.
    pub mv: MotionVector,
    /// The predicted block, row-major `size × size`.
    pub block: Vec<f64>,
    /// SAD of the chosen match.
    pub sad: f64,
}

/// Extracts the `size × size` block at `(bx, by)` from a `w × h`
/// frame, clamping coordinates at the borders (edge padding).
pub fn block_at(frame: &[f64], w: usize, h: usize, bx: i32, by: i32, size: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(size * size);
    for y in 0..size as i32 {
        for x in 0..size as i32 {
            let sx = (bx + x).clamp(0, w as i32 - 1) as usize;
            let sy = (by + y).clamp(0, h as i32 - 1) as usize;
            out.push(frame[sy * w + sx]);
        }
    }
    out
}

/// Sum of absolute differences between two equal-length blocks.
pub fn sad(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Full search over `±range` pixels in the reference frame for the
/// best match of the `size × size` source block at `(bx, by)`.
///
/// # Panics
///
/// Panics if `range` is negative.
#[allow(clippy::too_many_arguments)]
pub fn search(
    src: &[f64],
    reference: &[f64],
    w: usize,
    h: usize,
    bx: usize,
    by: usize,
    size: usize,
    range: i32,
) -> Prediction {
    assert!(range >= 0, "search range must be non-negative");
    let target = block_at(src, w, h, bx as i32, by as i32, size);
    let mut best = Prediction {
        mv: MotionVector { dx: 0, dy: 0 },
        block: block_at(reference, w, h, bx as i32, by as i32, size),
        sad: f64::INFINITY,
    };
    best.sad = sad(&target, &best.block);
    for dy in -range..=range {
        for dx in -range..=range {
            if dx == 0 && dy == 0 {
                continue;
            }
            let cand = block_at(reference, w, h, bx as i32 + dx, by as i32 + dy, size);
            let s = sad(&target, &cand);
            // Bias toward the zero vector on ties (cheaper to code).
            if s + 1e-9 < best.sad {
                best = Prediction {
                    mv: MotionVector { dx, dy },
                    block: cand,
                    sad: s,
                };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A textured frame (pseudo-random, no translational aliases)
    /// whose content shifts left by `shift` pixels.
    fn textured_frame(w: usize, h: usize, shift: usize) -> Vec<f64> {
        (0..w * h)
            .map(|i| {
                let (x, y) = ((i % w + shift) % w, i / w);
                let z = (x as u64)
                    .wrapping_mul(0x9e37_79b9)
                    .wrapping_add((y as u64).wrapping_mul(0x85eb_ca6b));
                (z.wrapping_mul(z ^ 0xff51_afd7) % 251) as f64
            })
            .collect()
    }

    fn gradient_frame(w: usize, h: usize, shift: usize) -> Vec<f64> {
        (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                ((x + shift) % w) as f64 * 3.0 + y as f64
            })
            .collect()
    }

    #[test]
    fn finds_pure_translation() {
        let w = 24;
        let h = 24;
        let prev = textured_frame(w, h, 0);
        let cur = textured_frame(w, h, 2); // content moved 2 px
        let p = search(&cur, &prev, w, h, 8, 8, 8, 3);
        assert_eq!(p.mv, MotionVector { dx: 2, dy: 0 });
        assert!(p.sad < 1e-9);
    }

    #[test]
    fn zero_vector_on_static_content() {
        let w = 16;
        let h = 16;
        let frame = gradient_frame(w, h, 0);
        let p = search(&frame, &frame, w, h, 4, 4, 8, 2);
        assert_eq!(p.mv, MotionVector { dx: 0, dy: 0 });
        assert_eq!(p.sad, 0.0);
    }

    #[test]
    fn border_blocks_are_padded() {
        let w = 16;
        let h = 16;
        let frame = gradient_frame(w, h, 0);
        let b = block_at(&frame, w, h, -4, -4, 8);
        assert_eq!(b.len(), 64);
        assert!(b.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn search_never_worsens_the_zero_vector() {
        let w = 24;
        let h = 24;
        let prev = gradient_frame(w, h, 1);
        let cur: Vec<f64> = gradient_frame(w, h, 0).iter().map(|v| v + 5.0).collect();
        let p = search(&cur, &prev, w, h, 8, 8, 8, 2);
        let zero_sad = sad(
            &block_at(&cur, w, h, 8, 8, 8),
            &block_at(&prev, w, h, 8, 8, 8),
        );
        assert!(p.sad <= zero_sad);
    }
}
