//! 8×8 DCT-II / inverse DCT and quantization for the x264 proxy.

use std::sync::OnceLock;

const N: usize = 8;

/// Precomputed DCT basis `cos((2x+1)·u·π/16)` with normalization.
fn basis() -> &'static [[f64; N]; N] {
    static BASIS: OnceLock<[[f64; N]; N]> = OnceLock::new();
    BASIS.get_or_init(|| {
        let mut b = [[0.0; N]; N];
        for (u, row) in b.iter_mut().enumerate() {
            let cu = if u == 0 {
                (1.0 / N as f64).sqrt()
            } else {
                (2.0 / N as f64).sqrt()
            };
            for (x, v) in row.iter_mut().enumerate() {
                *v = cu
                    * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / (2.0 * N as f64))
                        .cos();
            }
        }
        b
    })
}

/// Forward 8×8 DCT-II of a row-major block.
pub fn dct2(block: &[f64; N * N]) -> [f64; N * N] {
    let b = basis();
    let mut out = [0.0; N * N];
    for u in 0..N {
        for v in 0..N {
            let mut acc = 0.0;
            for y in 0..N {
                for x in 0..N {
                    acc += block[y * N + x] * b[u][y] * b[v][x];
                }
            }
            out[u * N + v] = acc;
        }
    }
    out
}

/// Inverse 8×8 DCT of a row-major coefficient block.
pub fn idct2(coef: &[f64; N * N]) -> [f64; N * N] {
    let b = basis();
    let mut out = [0.0; N * N];
    for y in 0..N {
        for x in 0..N {
            let mut acc = 0.0;
            for u in 0..N {
                for v in 0..N {
                    acc += coef[u * N + v] * b[u][y] * b[v][x];
                }
            }
            out[y * N + x] = acc;
        }
    }
    out
}

/// Frequency-weighted quantization step for coefficient `(u, v)` at
/// quantizer `qp`: higher frequencies quantize coarser, like the
/// H.264/JPEG quantization matrices.
pub fn quant_step(qp: f64, u: usize, v: usize) -> f64 {
    assert!(qp > 0.0, "quantizer must be positive");
    qp * (1.0 + 0.25 * (u + v) as f64)
}

/// Quantizes a coefficient block; returns the quantized levels and the
/// number of nonzero levels (the work/bit-cost proxy).
pub fn quantize(coef: &[f64; N * N], qp: f64) -> ([i32; N * N], usize) {
    let mut q = [0i32; N * N];
    let mut nonzero = 0;
    for u in 0..N {
        for v in 0..N {
            let s = quant_step(qp, u, v);
            let level = (coef[u * N + v] / s).round() as i32;
            q[u * N + v] = level;
            if level != 0 {
                nonzero += 1;
            }
        }
    }
    (q, nonzero)
}

/// Dequantizes levels back to coefficients.
pub fn dequantize(levels: &[i32; N * N], qp: f64) -> [f64; N * N] {
    let mut coef = [0.0; N * N];
    for u in 0..N {
        for v in 0..N {
            coef[u * N + v] = levels[u * N + v] as f64 * quant_step(qp, u, v);
        }
    }
    coef
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_block() -> [f64; 64] {
        let mut b = [0.0; 64];
        for (i, v) in b.iter_mut().enumerate() {
            *v = ((i * 7) % 31) as f64 + 100.0;
        }
        b
    }

    #[test]
    fn dct_round_trip_is_identity() {
        let b = test_block();
        let r = idct2(&dct2(&b));
        for (x, y) in b.iter().zip(&r) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn dct_of_constant_is_dc_only() {
        let b = [50.0; 64];
        let c = dct2(&b);
        assert!((c[0] - 8.0 * 50.0).abs() < 1e-9); // DC = N·mean
        assert!(c[1..].iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn lower_qp_keeps_more_coefficients() {
        let b = test_block();
        let c = dct2(&b);
        let (_, nz_fine) = quantize(&c, 2.0);
        let (_, nz_coarse) = quantize(&c, 40.0);
        assert!(nz_fine > nz_coarse);
    }

    #[test]
    fn quant_dequant_error_bounded_by_step() {
        let b = test_block();
        let c = dct2(&b);
        let qp = 8.0;
        let (levels, _) = quantize(&c, qp);
        let d = dequantize(&levels, qp);
        for u in 0..8 {
            for v in 0..8 {
                let err = (c[u * 8 + v] - d[u * 8 + v]).abs();
                assert!(err <= 0.5 * quant_step(qp, u, v) + 1e-12);
            }
        }
    }

    #[test]
    fn high_frequencies_quantize_coarser() {
        assert!(quant_step(10.0, 7, 7) > quant_step(10.0, 0, 0));
    }
}
