//! Exposition-format conformance: the registry's Prometheus rendering
//! must satisfy the format's structural rules, as checked by the
//! crate's own linter *and* by direct assertions (the linter and the
//! renderer must not share a blind spot).
//!
//! All tests share the process-global registry, so every metric name
//! is prefixed `promtest.` and assertions are substring/lint based
//! rather than whole-document equality.

use accordion_telemetry::prom;
use accordion_telemetry::registry::{exponential_bounds, global};

#[test]
fn counters_render_with_help_type_and_total_suffix() {
    let reg = global();
    reg.describe("promtest.deliveries", "test counter with help");
    reg.counter("promtest.deliveries").add(7);
    let text = prom::render(reg);
    assert!(
        text.contains("# HELP promtest_deliveries_total test counter with help\n"),
        "{text}"
    );
    assert!(text.contains("# TYPE promtest_deliveries_total counter\n"));
    assert!(text.contains("\npromtest_deliveries_total 7\n"));
}

#[test]
fn labeled_and_plain_samples_share_one_family_declaration() {
    let reg = global();
    reg.labeled_counter("promtest.shared", &[("outcome", "ok")])
        .add(3);
    reg.labeled_counter("promtest.shared", &[("outcome", "shed")])
        .inc();
    let text = prom::render(reg);
    assert_eq!(
        text.matches("# TYPE promtest_shared_total counter").count(),
        1,
        "one TYPE line per family: {text}"
    );
    assert!(text.contains("promtest_shared_total{outcome=\"ok\"} 3\n"));
    assert!(text.contains("promtest_shared_total{outcome=\"shed\"} 1\n"));
}

#[test]
fn label_values_are_escaped() {
    let reg = global();
    reg.labeled_gauge("promtest.escapes", &[("path", "a\\b\"c\nd")])
        .set(1.0);
    let text = prom::render(reg);
    // Backslash, quote and newline must appear escaped on the wire.
    assert!(
        text.contains(r#"promtest_escapes{path="a\\b\"c\nd"} 1"#),
        "{text}"
    );
    // ...and the linter must be able to parse them back.
    prom::lint(&text).expect("escaped labels must lint clean");
}

#[test]
fn histogram_buckets_are_cumulative_and_match_count() {
    let reg = global();
    let h = reg.histogram("promtest.latency", &exponential_bounds(1.0, 2.0, 6));
    for v in [0.5, 1.5, 3.0, 3.5, 100.0] {
        h.record(v);
    }
    let text = prom::render(reg);
    let buckets: Vec<f64> = text
        .lines()
        .filter(|l| l.starts_with("promtest_latency_bucket{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
        .collect();
    assert!(!buckets.is_empty(), "{text}");
    assert!(
        buckets.windows(2).all(|w| w[0] <= w[1]),
        "buckets must be cumulative: {buckets:?}"
    );
    let inf = text
        .lines()
        .find(|l| l.starts_with("promtest_latency_bucket{le=\"+Inf\"}"))
        .expect("+Inf bucket");
    assert!(inf.ends_with(" 5"), "{inf}");
    assert!(text.contains("\npromtest_latency_count 5\n"), "{text}");
    assert!(text.contains("\npromtest_latency_sum "), "{text}");
    assert!(text.contains("# TYPE promtest_latency histogram\n"));
}

#[test]
fn rolling_histograms_render_with_window_help() {
    let reg = global();
    reg.describe("promtest.rolling", "rolling test histogram");
    reg.rolling_histogram(
        "promtest.rolling",
        &[("outcome", "ok")],
        &exponential_bounds(1.0, 2.0, 6),
        30.0,
    )
    .record(4.0);
    let text = prom::render(reg);
    assert!(
        text.contains("# HELP promtest_rolling rolling test histogram (rolling 30s window)\n"),
        "{text}"
    );
    assert!(
        text.contains("promtest_rolling_bucket{outcome=\"ok\",le=\""),
        "labels compose with le: {text}"
    );
    assert!(text.contains("promtest_rolling_count{outcome=\"ok\"} 1\n"));
}

#[test]
fn undescribed_metrics_get_a_fallback_help_line() {
    let reg = global();
    reg.counter("promtest.undocumented").inc();
    let text = prom::render(reg);
    assert!(
        text.contains(
            "# HELP promtest_undocumented_total accordion metric promtest.undocumented\n"
        ),
        "{text}"
    );
}

#[test]
fn the_full_document_lints_clean() {
    let reg = global();
    // Populate at least one of each shape, then lint everything the
    // registry currently holds (including other tests' metrics).
    reg.counter("promtest.full.counter").inc();
    reg.gauge("promtest.full.gauge").set(2.5);
    reg.labeled_counter("promtest.full.labeled", &[("k", "v")])
        .inc();
    reg.histogram("promtest.full.hist", &[1.0, 10.0])
        .record(3.0);
    let text = prom::render(reg);
    let report = prom::lint(&text).expect("registry output must lint clean");
    assert!(report.families >= 4, "{report:?}");
    assert!(report.samples >= 4, "{report:?}");
}

// ---- linter rejection cases: hand-written malformed documents ----

fn assert_rejected(doc: &str, why: &str) {
    let errors = prom::lint(doc).expect_err(why);
    assert!(!errors.is_empty());
}

#[test]
fn lint_rejects_samples_without_a_type() {
    assert_rejected("orphan_metric 1\n", "sample with no TYPE must fail");
}

#[test]
fn lint_rejects_type_without_help() {
    assert_rejected(
        "# TYPE nohelp counter\nnohelp_total 1\n",
        "TYPE without HELP must fail",
    );
}

#[test]
fn lint_rejects_duplicate_type_lines() {
    assert_rejected(
        "# HELP dup x\n# TYPE dup counter\ndup_total 1\n# TYPE dup counter\n",
        "duplicate TYPE must fail",
    );
}

#[test]
fn lint_rejects_decreasing_buckets() {
    assert_rejected(
        concat!(
            "# HELP h x\n# TYPE h histogram\n",
            "h_bucket{le=\"1\"} 5\n",
            "h_bucket{le=\"2\"} 3\n",
            "h_bucket{le=\"+Inf\"} 5\n",
            "h_sum 9\nh_count 5\n",
        ),
        "decreasing cumulative buckets must fail",
    );
}

#[test]
fn lint_rejects_inf_bucket_count_mismatch() {
    assert_rejected(
        concat!(
            "# HELP h x\n# TYPE h histogram\n",
            "h_bucket{le=\"1\"} 2\n",
            "h_bucket{le=\"+Inf\"} 5\n",
            "h_sum 9\nh_count 6\n",
        ),
        "+Inf bucket != _count must fail",
    );
}

#[test]
fn lint_rejects_missing_inf_bucket() {
    assert_rejected(
        concat!(
            "# HELP h x\n# TYPE h histogram\n",
            "h_bucket{le=\"1\"} 2\n",
            "h_sum 9\nh_count 2\n",
        ),
        "histogram without +Inf bucket must fail",
    );
}

#[test]
fn lint_rejects_unterminated_label_values() {
    assert_rejected(
        "# HELP bad x\n# TYPE bad gauge\nbad{k=\"unterminated} 1\n",
        "unbalanced quotes must fail",
    );
}

#[test]
fn lint_rejects_invalid_metric_names() {
    assert_rejected(
        "# HELP ok x\n# TYPE ok gauge\nok 1\n9starts_with_digit 2\n",
        "invalid metric name must fail",
    );
}
