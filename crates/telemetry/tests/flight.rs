//! Integration tests for the flight recorder: a recording driven the
//! way `repro --chrome-trace` drives it must export a Chrome trace
//! that round-trips through the crate's own JSON parser, and the
//! `ACCORDION_TRACE_JSON` sink must create missing parent directories
//! (the flush-on-abort guard in `repro` depends on the file existing
//! by the time anything is buffered).
//!
//! The recorder is process-global, so everything that records lives
//! in one `#[test]` — this file is its own process, isolated from the
//! unit tests' recordings.

use accordion_telemetry::chrome::chrome_trace;
use accordion_telemetry::event::{self, SimEvent, TrackGuard};
use accordion_telemetry::json::{self, Json};
use accordion_telemetry::sink::JsonlSink;
use accordion_telemetry::{flight, flight_track};

#[test]
fn recording_exports_chrome_trace_that_roundtrips() {
    event::enable();
    let _ = event::drain();
    {
        let _cluster = flight_track!("itest/cluster{}", 0);
        event::advance_sim(1_000);
        flight!(SimEvent::SafeFreq { f_ghz: 0.42 });
        {
            let _nested = TrackGuard::enter("round");
            flight!(SimEvent::RoundDispatch { dcs: 4 });
            event::advance_sim(5_000);
            flight!(SimEvent::RoundRetire {
                completed: 3,
                infected: 1,
                abandoned: 0,
                watchdog_fires: 0,
                restarts: 0,
                makespan_cycles: 5_000,
            });
        }
    }
    // Untracked events are counted, never exported.
    flight!(SimEvent::Infection { dc: 9 });
    let log = event::drain();
    event::disable();
    assert_eq!(log.len(), 3);
    assert_eq!(log.untracked, 1);

    let rendered = chrome_trace(&log, true).render();
    let doc = json::parse(&rendered).expect("chrome trace parses");

    assert_eq!(
        doc.get("otherData").and_then(|o| o.get("schema")),
        Some(&Json::str("accordion.flight/1")),
    );
    assert_eq!(
        doc.get("otherData").and_then(|o| o.get("untracked")),
        Some(&Json::Num(1.0)),
    );
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("traceEvents not an array: {other:?}"),
    };
    // Track names nest under the guard hierarchy.
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
        })
        .collect();
    assert!(names.contains(&"itest/cluster0"), "{names:?}");
    assert!(names.contains(&"itest/cluster0/round"), "{names:?}");
    // The interval event recovers its start from the end stamp; the
    // nested track's clock starts at zero, independent of the parent.
    let round = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("ccdc.round"))
        .expect("round retire exported");
    assert_eq!(round.get("ph").and_then(Json::as_str), Some("X"));
    assert_eq!(round.get("ts").and_then(Json::as_f64), Some(0.0));
    assert_eq!(round.get("dur").and_then(Json::as_f64), Some(5_000.0));
}

#[test]
fn jsonl_sink_creates_missing_parent_directories() {
    let dir = std::env::temp_dir().join(format!(
        "accordion-flight-test-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .as_nanos(),
    ));
    let path = dir.join("deep/nested/trace.jsonl");
    let sink = JsonlSink::create(&path).expect("sink creates parent dirs");
    drop(sink);
    assert!(path.parent().expect("parent").is_dir());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
