//! Integration tests exercising the telemetry crate the way the
//! simulation stack uses it: many threads hammering one counter,
//! histogram percentiles at their edge cases, and the JSONL event
//! stream round-tripping through the crate's own parser.

use accordion_telemetry::json::{self, Json};
use accordion_telemetry::registry::{global, HistogramMetric};
use accordion_telemetry::sink::{Event, EventKind, FieldVal, Level};
use std::sync::Arc;
use std::thread;

#[test]
fn concurrent_counter_increments_land_exactly() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    let counter = global().counter("itest.concurrent.counter");
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                // Handles resolve to the same &'static atomic in every
                // thread; re-looking it up exercises the registry lock.
                let c = global().counter("itest.concurrent.counter");
                barrier.wait();
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("counter thread");
    }
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn concurrent_histogram_count_is_exact() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 20_000;
    let h = global().histogram("itest.concurrent.hist", &[0.25, 0.5, 0.75]);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            thread::spawn(move || {
                let h = global().histogram("itest.concurrent.hist", &[0.25, 0.5, 0.75]);
                for i in 0..PER_THREAD {
                    h.record((i % 100) as f64 / 100.0 + t as f64 * 1e-4);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("hist thread");
    }
    let s = h.snapshot();
    assert_eq!(s.count, (THREADS * PER_THREAD) as u64);
    assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
}

#[test]
fn empty_histogram_has_no_percentiles() {
    let h = HistogramMetric::new(&[1.0, 2.0]);
    assert_eq!(h.percentile(0.5), None);
    assert_eq!(h.percentile(0.99), None);
    let s = h.snapshot();
    assert_eq!(s.count, 0);
    assert_eq!(s.min, None);
    assert_eq!(s.max, None);
    assert_eq!(s.mean(), None);
}

#[test]
fn single_sample_dominates_every_percentile() {
    let h = HistogramMetric::new(&[10.0, 100.0, 1000.0]);
    h.record(42.0);
    // Whatever the bucket edges say, one observation bounds every
    // quantile to itself via the min/max clamp.
    for q in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(h.percentile(q), Some(42.0), "q={q}");
    }
}

#[test]
fn saturating_overflow_bucket_percentiles_clamp_to_max() {
    let h = HistogramMetric::new(&[1.0]);
    // Every observation overshoots the last bound → all land in the
    // overflow bucket, which has no upper edge.
    for v in [50.0, 75.0, 300.0] {
        h.record(v);
    }
    let s = h.snapshot();
    assert_eq!(s.buckets, vec![0, 3]);
    assert_eq!(h.percentile(0.5), Some(300.0), "overflow clamps to max");
    assert_eq!(h.percentile(1.0), Some(300.0));
    assert_eq!(h.percentile(0.0), Some(50.0));
}

#[test]
fn jsonl_event_line_round_trips_through_parser() {
    let fields = [
        ("artifact", FieldVal::from("fig5b")),
        ("chips", FieldVal::from(100u32)),
        ("ratio", FieldVal::from(0.25f64)),
        ("path", FieldVal::from("dir\\\"quoted\"\nname")),
        ("ok", FieldVal::from(true)),
    ];
    let event = Event {
        seq: 41,
        kind: EventKind::SpanEnd,
        level: Level::Info,
        name: "bench.artifact.fig5b",
        depth: 3,
        elapsed_ns: Some(1_234_567),
        thread: "main",
        fields: &fields,
    };
    // Exactly what JsonlSink writes: one compact-rendered object.
    let line = event.to_json().render();
    assert!(!line.contains('\n'), "a JSONL record is a single line");

    let parsed = json::parse(&line).expect("line parses");
    assert_eq!(parsed.get("seq").and_then(Json::as_f64), Some(41.0));
    assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("span_end"));
    assert_eq!(
        parsed.get("name").and_then(Json::as_str),
        Some("bench.artifact.fig5b")
    );
    assert_eq!(
        parsed.get("elapsed_ns").and_then(Json::as_f64),
        Some(1_234_567.0)
    );
    let f = parsed.get("fields").expect("fields object");
    assert_eq!(f.get("chips").and_then(Json::as_f64), Some(100.0));
    assert_eq!(f.get("ratio").and_then(Json::as_f64), Some(0.25));
    assert_eq!(
        f.get("path").and_then(Json::as_str),
        Some("dir\\\"quoted\"\nname"),
        "escaping survives the round trip"
    );
    assert_eq!(
        parsed.get("fields").and_then(|f| f.get("ok")),
        Some(&Json::Bool(true))
    );
}

#[test]
fn registry_snapshot_is_valid_json() {
    global().counter("itest.snapshot.counter").add(7);
    global().gauge("itest.snapshot.gauge").set(-1.25);
    global()
        .histogram("itest.snapshot.hist", &[1.0, 10.0])
        .record(3.0);
    let rendered = global().snapshot_json().render_pretty();
    let parsed = json::parse(&rendered).expect("snapshot parses");
    assert_eq!(
        parsed
            .get("counters")
            .and_then(|c| c.get("itest.snapshot.counter"))
            .and_then(Json::as_f64),
        Some(7.0)
    );
    assert_eq!(
        parsed
            .get("gauges")
            .and_then(|g| g.get("itest.snapshot.gauge"))
            .and_then(Json::as_f64),
        Some(-1.25)
    );
}
