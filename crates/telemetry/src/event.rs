//! Flight recorder: a lock-sharded, bounded ring of structured
//! sim-domain events.
//!
//! Counters and histograms (PR 1) answer *how much*; the flight
//! recorder answers *when and in what order*. Every event carries
//!
//! * a **sim-domain timestamp** in cycles, read from a per-track
//!   simulated clock advanced by the emitting layer;
//! * a **host wall-clock timestamp** in nanoseconds since the recorder
//!   was enabled (for the host-thread view of the Chrome exporter);
//! * a **track id + per-track sequence number**. Tracks are logical
//!   sim entities ("fab36/chip2/cluster17", "probe/canneal/vdd550"),
//!   not OS threads, and sequence numbers are allocated per track —
//!   this is what makes the serialized stream byte-identical at any
//!   `--jobs` even though events are recorded from a work-stealing
//!   pool in nondeterministic global order.
//!
//! # Determinism contract
//!
//! Events are only recorded while a [`TrackGuard`] is live on the
//! current thread. Tracks are single-owner: the layer that enters a
//! track is the only one appending to it, so `(track, seq)` totally
//! orders each track's events independent of thread scheduling.
//! Events recorded with no track on the stack are counted
//! (`telemetry.flight.untracked`) and dropped — an event that cannot
//! be attributed to a deterministic track would make the export
//! nondeterministic. [`FlightLog`] sorts by (track name, seq), and the
//! Chrome exporter excludes host wall-clock from the deterministic
//! view, so the rendered bytes are identical for `ACCORDION_JOBS=1`
//! and `=8` on a fixed seed (pinned by `tests/determinism.rs`).
//!
//! # Overhead when disabled
//!
//! [`enabled`] is one relaxed atomic load; the [`crate::flight!`] and
//! [`crate::flight_track!`] macros do not evaluate their arguments
//! when the recorder is off. The `telemetry_overhead` bench pins the
//! disabled-path cost next to the PR 1 span/counter envelope.

use crate::json::Json;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of ring shards; events hash to a shard by track id, so
/// unrelated tracks rarely contend on the same lock.
const NSHARDS: usize = 16;

/// Default per-shard event capacity (~262k events total). Overflow
/// never blocks and never reorders: excess events are counted in
/// [`FlightLog::dropped`] instead.
pub const DEFAULT_SHARD_CAPACITY: usize = 1 << 14;

/// Sentinel: no track entered on this thread.
const UNTRACKED: u64 = 0;

/// A typed simulation event. Variants map one-to-one onto the
/// instrumented layers (`cat` in the Chrome export = [`SimEvent::layer`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// CC dispatched a round of DCs (`sim.ccdc.run_round` entry).
    RoundDispatch {
        /// DCs dispatched in the round.
        dcs: u64,
    },
    /// The CC watchdog fired for a DC.
    WatchdogFire {
        /// DC index within the round.
        dc: u64,
        /// Hang attempt count for this DC so far.
        attempt: u64,
        /// Whether the DC was restarted (vs. abandoned).
        restarted: bool,
    },
    /// A CC/DC round retired (duration = round makespan).
    RoundRetire {
        /// DCs that completed clean.
        completed: u64,
        /// DCs that completed with an infected (dropped/corrupted) result.
        infected: u64,
        /// DCs abandoned after exhausting restarts.
        abandoned: u64,
        /// Watchdog fires during the round.
        watchdog_fires: u64,
        /// Restarts issued during the round.
        restarts: u64,
        /// Round makespan in cycles.
        makespan_cycles: u64,
    },
    /// A fault-injection draw infected a DC execution.
    Infection {
        /// DC index the draw was made for.
        dc: u64,
    },
    /// A batch drop-mask sampling (`FaultInjector::sample_infections`).
    InfectionSample {
        /// Threads sampled.
        threads: u64,
        /// Threads infected.
        infected: u64,
    },
    /// A checkpoint plan was computed (Young/Daly).
    CheckpointPlan {
        /// Mean time between failures, cycles.
        mtbf_cycles: f64,
        /// Chosen checkpoint interval, cycles.
        interval_cycles: f64,
    },
    /// One application phase ran (duration = `cycles`).
    Phase {
        /// Phase index within the app.
        index: u64,
        /// `"control"` or `"data"`.
        kind: &'static str,
        /// Phase duration in cycles.
        cycles: u64,
    },
    /// Barrier wait at the end of a data phase (duration = `cycles`).
    BarrierWait {
        /// Cycles the earliest-finishing DC waited.
        cycles: u64,
    },
    /// An application run retired (duration = makespan).
    AppRetire {
        /// Phases executed.
        phases: u64,
        /// Total app makespan in cycles.
        makespan_cycles: u64,
    },
    /// The runtime controller replanned the cluster allocation.
    Replan {
        /// Epoch index at which the replan happened.
        epoch: u64,
        /// Clusters engaged after the replan.
        clusters: u64,
        /// Frequency the plan assumes, GHz.
        f_ghz: f64,
    },
    /// A runtime epoch retired (duration = `cycles`).
    EpochRetire {
        /// Epoch index.
        epoch: u64,
        /// Epoch length in cycles.
        cycles: u64,
        /// Fraction of total work completed after this epoch.
        work_done_frac: f64,
    },
    /// A per-cluster safe-frequency selection (VARIUS timing model).
    SafeFreq {
        /// Selected safe frequency, GHz.
        f_ghz: f64,
    },
    /// One pareto grid cell solved by the batched (columnar) sweep
    /// engine. The payload is a pure function of the cell inputs —
    /// no wall-clock — so recordings stay byte-identical at any job
    /// count.
    SweepCellSolve {
        /// Cluster counts probed before the search stopped.
        probed: u64,
        /// Accepted cluster count; 0 when no count achieved iso-time
        /// (the cell is N-limited and yields no point).
        clusters: u64,
        /// Problem size in parts-per-thousand of the STV default.
        size_milli: u64,
    },
    /// One mode-family pareto front finished extracting (batched
    /// engine).
    SweepFrontRetire {
        /// Frequency policy, `"safe"` or `"speculative"`.
        policy: &'static str,
        /// Problem scaling, `"compress"`, `"expand"` or `"still"`.
        scaling: &'static str,
        /// Grid cells evaluated for this front.
        cells: u64,
        /// Points accepted onto the front.
        points: u64,
    },
    /// One optimizer generation retired (NSGA-II loop in
    /// `accordion-opt`). The payload is a pure function of the seeded
    /// search state — no wall-clock — so recordings stay
    /// byte-identical at any job count.
    OptGeneration {
        /// Generation index (0 = the seeded scout grid).
        generation: u64,
        /// Fresh evaluator calls this generation (memo misses).
        evals: u64,
        /// Evaluator memo hits this generation.
        cache_hits: u64,
        /// Size of the archive's rank-0 front after this generation.
        front: u64,
    },
    /// One stage of an HTTP request's lifecycle completed (parse,
    /// cache lookup, pool fanout, serialize). The serving layer runs
    /// its track clocks in microseconds, so `us` doubles as the
    /// interval duration. `stage` must be a dotted `serve.*` name —
    /// it is used verbatim as the Chrome event name.
    ServeStage {
        /// Dotted stage name, e.g. `"serve.parse"`.
        stage: &'static str,
        /// Stage duration in microseconds.
        us: u64,
    },
    /// An HTTP request retired (the whole-request interval).
    RequestRetire {
        /// HTTP status code sent.
        status: u64,
        /// Response body bytes.
        bytes: u64,
        /// Total handler latency in microseconds.
        us: u64,
    },
}

impl SimEvent {
    /// Event name (Chrome `name` field), dotted by layer.
    pub fn name(&self) -> &'static str {
        match self {
            SimEvent::RoundDispatch { .. } => "ccdc.dispatch",
            SimEvent::WatchdogFire { .. } => "ccdc.watchdog",
            SimEvent::RoundRetire { .. } => "ccdc.round",
            SimEvent::Infection { .. } => "fault.infect",
            SimEvent::InfectionSample { .. } => "fault.sample",
            SimEvent::CheckpointPlan { .. } => "checkpoint.plan",
            SimEvent::Phase { .. } => "phases.phase",
            SimEvent::BarrierWait { .. } => "phases.barrier",
            SimEvent::AppRetire { .. } => "phases.app",
            SimEvent::Replan { .. } => "runtime.replan",
            SimEvent::EpochRetire { .. } => "runtime.epoch",
            SimEvent::SafeFreq { .. } => "timing.safe_freq",
            SimEvent::SweepCellSolve { .. } => "sweep.cell",
            SimEvent::SweepFrontRetire { .. } => "sweep.front",
            SimEvent::OptGeneration { .. } => "opt.generation",
            SimEvent::ServeStage { stage, .. } => stage,
            SimEvent::RequestRetire { .. } => "serve.request",
        }
    }

    /// The instrumented layer this event belongs to (Chrome `cat`).
    pub fn layer(&self) -> &'static str {
        self.name().split('.').next().expect("dotted name")
    }

    /// For interval-like events, the duration in cycles; instant
    /// events return `None`. The timestamp of an interval event is its
    /// *end* (the emitting layer advances the track clock first), so
    /// exporters recover the start as `t_cycles - duration`.
    pub fn duration_cycles(&self) -> Option<u64> {
        match self {
            SimEvent::RoundRetire {
                makespan_cycles, ..
            }
            | SimEvent::AppRetire {
                makespan_cycles, ..
            } => Some(*makespan_cycles),
            SimEvent::Phase { cycles, .. }
            | SimEvent::BarrierWait { cycles }
            | SimEvent::EpochRetire { cycles, .. } => Some(*cycles),
            SimEvent::ServeStage { us, .. } | SimEvent::RequestRetire { us, .. } => Some(*us),
            _ => None,
        }
    }

    /// The event payload as a JSON object (Chrome `args`).
    pub fn args_json(&self) -> Json {
        let n = |v: u64| Json::Num(v as f64);
        match self {
            SimEvent::RoundDispatch { dcs } => Json::obj(vec![("dcs", n(*dcs))]),
            SimEvent::WatchdogFire {
                dc,
                attempt,
                restarted,
            } => Json::obj(vec![
                ("dc", n(*dc)),
                ("attempt", n(*attempt)),
                ("restarted", Json::Bool(*restarted)),
            ]),
            SimEvent::RoundRetire {
                completed,
                infected,
                abandoned,
                watchdog_fires,
                restarts,
                makespan_cycles,
            } => Json::obj(vec![
                ("completed", n(*completed)),
                ("infected", n(*infected)),
                ("abandoned", n(*abandoned)),
                ("watchdog_fires", n(*watchdog_fires)),
                ("restarts", n(*restarts)),
                ("makespan_cycles", n(*makespan_cycles)),
            ]),
            SimEvent::Infection { dc } => Json::obj(vec![("dc", n(*dc))]),
            SimEvent::InfectionSample { threads, infected } => {
                Json::obj(vec![("threads", n(*threads)), ("infected", n(*infected))])
            }
            SimEvent::CheckpointPlan {
                mtbf_cycles,
                interval_cycles,
            } => Json::obj(vec![
                ("mtbf_cycles", Json::Num(*mtbf_cycles)),
                ("interval_cycles", Json::Num(*interval_cycles)),
            ]),
            SimEvent::Phase {
                index,
                kind,
                cycles,
            } => Json::obj(vec![
                ("index", n(*index)),
                ("kind", Json::str(*kind)),
                ("cycles", n(*cycles)),
            ]),
            SimEvent::BarrierWait { cycles } => Json::obj(vec![("cycles", n(*cycles))]),
            SimEvent::AppRetire {
                phases,
                makespan_cycles,
            } => Json::obj(vec![
                ("phases", n(*phases)),
                ("makespan_cycles", n(*makespan_cycles)),
            ]),
            SimEvent::Replan {
                epoch,
                clusters,
                f_ghz,
            } => Json::obj(vec![
                ("epoch", n(*epoch)),
                ("clusters", n(*clusters)),
                ("f_ghz", Json::Num(*f_ghz)),
            ]),
            SimEvent::EpochRetire {
                epoch,
                cycles,
                work_done_frac,
            } => Json::obj(vec![
                ("epoch", n(*epoch)),
                ("cycles", n(*cycles)),
                ("work_done_frac", Json::Num(*work_done_frac)),
            ]),
            SimEvent::SafeFreq { f_ghz } => Json::obj(vec![("f_ghz", Json::Num(*f_ghz))]),
            SimEvent::SweepCellSolve {
                probed,
                clusters,
                size_milli,
            } => Json::obj(vec![
                ("probed", n(*probed)),
                ("clusters", n(*clusters)),
                ("size_milli", n(*size_milli)),
            ]),
            SimEvent::SweepFrontRetire {
                policy,
                scaling,
                cells,
                points,
            } => Json::obj(vec![
                ("policy", Json::str(*policy)),
                ("scaling", Json::str(*scaling)),
                ("cells", n(*cells)),
                ("points", n(*points)),
            ]),
            SimEvent::OptGeneration {
                generation,
                evals,
                cache_hits,
                front,
            } => Json::obj(vec![
                ("generation", n(*generation)),
                ("evals", n(*evals)),
                ("cache_hits", n(*cache_hits)),
                ("front", n(*front)),
            ]),
            SimEvent::ServeStage { us, .. } => Json::obj(vec![("us", n(*us))]),
            SimEvent::RequestRetire { status, bytes, us } => Json::obj(vec![
                ("status", n(*status)),
                ("bytes", n(*bytes)),
                ("us", n(*us)),
            ]),
        }
    }
}

/// One recorded event with its full addressing context.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Track id (see [`TrackGuard`]).
    pub track: u64,
    /// Per-track sequence number (deterministic).
    pub seq: u64,
    /// Sim-domain timestamp, cycles on the track's clock.
    pub t_cycles: u64,
    /// Host wall-clock, nanoseconds since the recorder was enabled
    /// (nondeterministic; excluded from the deterministic export).
    pub host_ns: u64,
    /// Host lane: 0 = the calling/main thread, `n` = pool worker
    /// `n - 1` (set by `accordion-pool` via [`set_lane`]).
    pub lane: u32,
    /// The typed payload.
    pub event: SimEvent,
}

struct TrackState {
    name: String,
    next_seq: u64,
    sim_cycles: u64,
}

struct Recorder {
    start: Instant,
    shards: Vec<Mutex<Vec<FlightEvent>>>,
    tracks: Mutex<BTreeMap<u64, TrackState>>,
    capacity: AtomicUsize,
    dropped: AtomicU64,
    untracked: AtomicU64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: OnceLock<Recorder> = OnceLock::new();

fn recorder() -> &'static Recorder {
    RECORDER.get_or_init(|| Recorder {
        start: Instant::now(),
        shards: (0..NSHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        tracks: Mutex::new(BTreeMap::new()),
        capacity: AtomicUsize::new(DEFAULT_SHARD_CAPACITY),
        dropped: AtomicU64::new(0),
        untracked: AtomicU64::new(0),
    })
}

thread_local! {
    static CTX: RefCell<Ctx> = RefCell::new(Ctx::root());
    static LANE: Cell<u32> = const { Cell::new(0) };
}

struct Ctx {
    track: u64,
    name: String,
    next_seq: u64,
    sim_cycles: u64,
}

impl Ctx {
    fn root() -> Self {
        Ctx {
            track: UNTRACKED,
            name: String::new(),
            next_seq: 0,
            sim_cycles: 0,
        }
    }
}

/// Whether the flight recorder is on. One relaxed load — this is the
/// gate the `flight!` macros check before evaluating anything.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the recorder on (idempotent). Call [`drain`] first if a
/// previous recording should not bleed into the new one.
pub fn enable() {
    recorder();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns the recorder off. Buffered events stay until [`drain`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Overrides the per-shard ring capacity (total capacity = 16×).
pub fn set_capacity(per_shard: usize) {
    recorder()
        .capacity
        .store(per_shard.max(1), Ordering::SeqCst);
}

/// Tags the current thread's host lane (0 = main, `n` = pool worker
/// `n - 1`). Called by `accordion-pool` when it spawns workers; cheap
/// enough to call unconditionally.
pub fn set_lane(lane: u32) {
    LANE.set(lane);
}

/// Human label for a host lane.
pub fn lane_name(lane: u32) -> String {
    if lane == 0 {
        "main".to_string()
    } else {
        format!("worker-{}", lane - 1)
    }
}

fn track_id(parent: u64, label: &str) -> u64 {
    // FNV-1a over the parent id and the label; stable across runs,
    // platforms and job counts.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in parent.to_le_bytes().iter().chain(label.as_bytes()) {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if h == UNTRACKED {
        0x9e37_79b9_7f4a_7c15
    } else {
        h
    }
}

/// RAII guard binding the current thread to a (possibly nested)
/// track. Track identity is `(parent track, label)` — deterministic,
/// independent of which pool worker runs the closure. Re-entering a
/// label resumes that track's sequence counter and sim clock, so a
/// track may be built up across multiple sequential scopes; it must
/// never be live on two threads at once.
pub struct TrackGuard {
    prev: Option<Ctx>,
}

impl TrackGuard {
    /// An inert guard (recorder disabled).
    pub fn inert() -> Self {
        TrackGuard { prev: None }
    }

    /// Enters a track named `label` under the current track (or as a
    /// root track if none is entered).
    pub fn enter(label: &str) -> Self {
        if !enabled() {
            return Self::inert();
        }
        let rec = recorder();
        CTX.with(|c| {
            let mut ctx = c.borrow_mut();
            let (parent, full) = if ctx.track == UNTRACKED {
                (UNTRACKED, label.to_string())
            } else {
                (ctx.track, format!("{}/{}", ctx.name, label))
            };
            let id = track_id(parent, label);
            let mut tracks = rec.tracks.lock().expect("track table");
            let st = tracks.entry(id).or_insert_with(|| TrackState {
                name: full,
                next_seq: 0,
                sim_cycles: 0,
            });
            let new = Ctx {
                track: id,
                name: st.name.clone(),
                next_seq: st.next_seq,
                sim_cycles: st.sim_cycles,
            };
            drop(tracks);
            let prev = std::mem::replace(&mut *ctx, new);
            TrackGuard { prev: Some(prev) }
        })
    }
}

impl Drop for TrackGuard {
    fn drop(&mut self) {
        let Some(prev) = self.prev.take() else {
            return;
        };
        CTX.with(|c| {
            let mut ctx = c.borrow_mut();
            if let Some(rec) = RECORDER.get() {
                let mut tracks = rec.tracks.lock().expect("track table");
                // Absent entry means a drain() raced the guard; the
                // context is stale either way, so just restore.
                if let Some(st) = tracks.get_mut(&ctx.track) {
                    st.next_seq = ctx.next_seq;
                    st.sim_cycles = ctx.sim_cycles;
                }
            }
            *ctx = prev;
        });
    }
}

/// Advances the current track's simulated clock by `cycles`.
pub fn advance_sim(cycles: u64) {
    if !enabled() {
        return;
    }
    CTX.with(|c| c.borrow_mut().sim_cycles += cycles);
}

/// The current track's simulated clock, cycles.
pub fn sim_now() -> u64 {
    CTX.with(|c| c.borrow().sim_cycles)
}

/// Records an event at the current track clock. See [`record_at`].
pub fn record(event: SimEvent) {
    record_at(0, event);
}

/// Records an event at `sim_now() + offset_cycles`. No-op when the
/// recorder is disabled; counted-and-dropped when no track is entered
/// (untracked events cannot be ordered deterministically).
pub fn record_at(offset_cycles: u64, event: SimEvent) {
    if !enabled() {
        return;
    }
    let rec = recorder();
    let Some((track, seq, t_cycles)) = CTX.with(|c| {
        let mut ctx = c.borrow_mut();
        if ctx.track == UNTRACKED {
            return None;
        }
        let seq = ctx.next_seq;
        ctx.next_seq += 1;
        Some((ctx.track, seq, ctx.sim_cycles + offset_cycles))
    }) else {
        rec.untracked.fetch_add(1, Ordering::Relaxed);
        crate::counter!("telemetry.flight.untracked").inc();
        return;
    };
    let host_ns = rec.start.elapsed().as_nanos() as u64;
    let ev = FlightEvent {
        track,
        seq,
        t_cycles,
        host_ns,
        lane: LANE.get(),
        event,
    };
    let shard = &rec.shards[(track as usize) % NSHARDS];
    let mut buf = shard.lock().expect("event shard");
    if buf.len() < rec.capacity.load(Ordering::Relaxed) {
        buf.push(ev);
    } else {
        rec.dropped.fetch_add(1, Ordering::Relaxed);
    }
}

/// A drained, deterministically ordered flight recording.
#[derive(Debug, Clone, Default)]
pub struct FlightLog {
    /// Events sorted by (track name, sequence number).
    pub events: Vec<FlightEvent>,
    /// Track id → full track name ("fab36/chip0/cluster3").
    pub track_names: BTreeMap<u64, String>,
    /// Events lost to ring overflow.
    pub dropped: u64,
    /// Events dropped because no track was entered.
    pub untracked: u64,
}

impl FlightLog {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The track name for an event.
    pub fn track_name(&self, ev: &FlightEvent) -> &str {
        self.track_names
            .get(&ev.track)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Event count per instrumented layer.
    pub fn layer_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for ev in &self.events {
            *m.entry(ev.event.layer()).or_insert(0) += 1;
        }
        m
    }
}

/// Drains all buffered events and resets the recorder (track table,
/// sequence counters, overflow counters) so back-to-back recordings of
/// the same workload produce identical logs. Call from a point with no
/// live [`TrackGuard`]s.
pub fn drain() -> FlightLog {
    let rec = recorder();
    let mut events = Vec::new();
    for shard in &rec.shards {
        events.append(&mut shard.lock().expect("event shard"));
    }
    let mut tracks = rec.tracks.lock().expect("track table");
    let track_names: BTreeMap<u64, String> = tracks
        .iter()
        .map(|(id, st)| (*id, st.name.clone()))
        .collect();
    tracks.clear();
    drop(tracks);
    let dropped = rec.dropped.swap(0, Ordering::SeqCst);
    let untracked = rec.untracked.swap(0, Ordering::SeqCst);
    events.sort_by(|a, b| {
        let na = track_names.get(&a.track);
        let nb = track_names.get(&b.track);
        na.cmp(&nb).then(a.seq.cmp(&b.seq))
    });
    FlightLog {
        events,
        track_names,
        dropped,
        untracked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as StdMutex, OnceLock as StdOnceLock};

    // The recorder is process-global; unit tests serialize on this.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: StdOnceLock<StdMutex<()>> = StdOnceLock::new();
        GATE.get_or_init(|| StdMutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let _g = lock();
        disable();
        let _t = TrackGuard::enter("t");
        record(SimEvent::SafeFreq { f_ghz: 1.0 });
        enable();
        let log = drain();
        assert!(log.is_empty());
        disable();
    }

    #[test]
    fn tracked_events_are_ordered_and_named() {
        let _g = lock();
        enable();
        drain();
        {
            let _a = TrackGuard::enter("alpha");
            record(SimEvent::SafeFreq { f_ghz: 1.0 });
            advance_sim(10);
            record(SimEvent::SafeFreq { f_ghz: 2.0 });
            {
                let _b = TrackGuard::enter("beta");
                record(SimEvent::Infection { dc: 7 });
            }
        }
        let log = drain();
        disable();
        assert_eq!(log.len(), 3);
        assert_eq!(log.track_name(&log.events[0]), "alpha");
        assert_eq!(log.events[0].seq, 0);
        assert_eq!(log.events[1].seq, 1);
        assert_eq!(log.events[1].t_cycles, 10);
        assert_eq!(log.track_name(&log.events[2]), "alpha/beta");
        assert_eq!(log.layer_counts()["timing"], 2);
        assert_eq!(log.layer_counts()["fault"], 1);
    }

    #[test]
    fn untracked_events_are_counted_not_recorded() {
        let _g = lock();
        enable();
        drain();
        record(SimEvent::SafeFreq { f_ghz: 1.0 });
        let log = drain();
        disable();
        assert!(log.is_empty());
        assert_eq!(log.untracked, 1);
    }

    #[test]
    fn reentering_a_track_resumes_seq_and_clock() {
        let _g = lock();
        enable();
        drain();
        {
            let _t = TrackGuard::enter("resume");
            record(SimEvent::SafeFreq { f_ghz: 1.0 });
            advance_sim(5);
        }
        {
            let _t = TrackGuard::enter("resume");
            record(SimEvent::SafeFreq { f_ghz: 2.0 });
        }
        let log = drain();
        disable();
        assert_eq!(log.len(), 2);
        assert_eq!(log.events[1].seq, 1);
        assert_eq!(log.events[1].t_cycles, 5);
    }

    #[test]
    fn ring_overflow_counts_drops() {
        let _g = lock();
        enable();
        drain();
        set_capacity(2);
        {
            let _t = TrackGuard::enter("over");
            for _ in 0..5 {
                record(SimEvent::Infection { dc: 0 });
            }
        }
        let log = drain();
        set_capacity(DEFAULT_SHARD_CAPACITY);
        disable();
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped, 3);
    }
}
