//! Zero-dependency tracing, metrics and run-provenance for the
//! Accordion reproduction stack.
//!
//! Three cooperating pieces:
//!
//! * a global, thread-safe **metrics registry** ([`registry`]) of
//!   counters, gauges and fixed-bucket histograms, addressed by dotted
//!   names and cached per call-site by the [`counter!`] / [`gauge!`] /
//!   [`histogram!`] macros;
//! * lightweight **spans** ([`mod@span`]) — RAII wall-clock timers with
//!   nesting, created by [`span!`], feeding per-span accounting and
//!   the sink layer;
//! * pluggable **sinks** ([`sink`]) — a human-readable stderr tracer
//!   gated by `ACCORDION_TRACE=<off|info|debug>` and a JSONL file sink
//!   (`ACCORDION_TRACE_JSON=<path>`), plus a per-run provenance
//!   [`manifest`] renderer.
//!
//! # Near-zero overhead when disabled
//!
//! With no sink installed and timing not requested, [`span!`] performs
//! one relaxed atomic load and returns an inert guard — no clock read,
//! no allocation. Counters are a single relaxed `fetch_add`
//! regardless. The `telemetry_overhead` bench in `accordion-bench`
//! documents both costs at nanosecond scale, which is why the hot
//! layers (fault injection, chip sampling) keep their instrumentation
//! unconditionally compiled in.
//!
//! # Example
//!
//! ```
//! use accordion_telemetry::{counter, span};
//!
//! fn hot_loop() {
//!     let _span = span!("example.hot_loop");
//!     for _ in 0..100 {
//!         counter!("example.iterations").inc();
//!     }
//! }
//! hot_loop();
//! assert_eq!(
//!     accordion_telemetry::registry::global()
//!         .counter("example.iterations")
//!         .get(),
//!     100
//! );
//! ```

#![deny(missing_docs)]

pub mod alerts;
pub mod chrome;
pub mod event;
pub mod json;
pub mod manifest;
pub mod prom;
pub mod registry;
pub mod rolling;
pub mod sink;
pub mod span;
pub mod tsdb;

pub use manifest::RunManifest;
pub use sink::Level;

/// Looks up a counter by name, caching the handle per call-site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __CACHE: ::std::sync::OnceLock<&'static $crate::registry::Counter> =
            ::std::sync::OnceLock::new();
        *__CACHE.get_or_init(|| $crate::registry::global().counter($name))
    }};
}

/// Looks up a gauge by name, caching the handle per call-site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __CACHE: ::std::sync::OnceLock<&'static $crate::registry::Gauge> =
            ::std::sync::OnceLock::new();
        *__CACHE.get_or_init(|| $crate::registry::global().gauge($name))
    }};
}

/// Looks up a histogram by name (with bucket bounds fixed on first
/// registration), caching the handle per call-site.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $bounds:expr) => {{
        static __CACHE: ::std::sync::OnceLock<&'static $crate::registry::HistogramMetric> =
            ::std::sync::OnceLock::new();
        *__CACHE.get_or_init(|| $crate::registry::global().histogram($name, &$bounds))
    }};
}

/// Times the enclosing scope: `let _span = span!("layer.what");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

/// Emits a structured point event when any sink listens at `$level`:
///
/// ```ignore
/// trace_event!(Level::Info, "sim.ccdc.watchdog", dc = 3usize, restart = true);
/// ```
///
/// Field expressions are not evaluated when no sink listens.
#[macro_export]
macro_rules! trace_event {
    ($level:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::sink::level_enabled($level) {
            $crate::sink::emit_point(
                $level,
                $name,
                &[$((stringify!($key), $crate::sink::FieldVal::from($value))),*],
            );
        }
    };
}

/// Records a flight-recorder event (see [`event`]) when the recorder
/// is enabled; the event expression is not evaluated otherwise.
///
/// ```ignore
/// flight!(SimEvent::RoundDispatch { dcs: dcs as u64 });
/// ```
#[macro_export]
macro_rules! flight {
    ($event:expr) => {
        if $crate::event::enabled() {
            $crate::event::record($event);
        }
    };
}

/// Records a flight-recorder event at `sim_now() + $offset` cycles.
#[macro_export]
macro_rules! flight_at {
    ($offset:expr, $event:expr) => {
        if $crate::event::enabled() {
            $crate::event::record_at($offset, $event);
        }
    };
}

/// Enters a flight-recorder track with a formatted label; returns a
/// [`event::TrackGuard`]. The label is not formatted (no allocation)
/// when the recorder is disabled.
///
/// ```ignore
/// let _track = flight_track!("chip{}/cluster{}", chip, cluster);
/// ```
#[macro_export]
macro_rules! flight_track {
    ($($arg:tt)*) => {
        if $crate::event::enabled() {
            $crate::event::TrackGuard::enter(&format!($($arg)*))
        } else {
            $crate::event::TrackGuard::inert()
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_compile_and_register() {
        counter!("test.lib.counter").add(2);
        gauge!("test.lib.gauge").set(1.5);
        histogram!("test.lib.hist", [1.0, 10.0]).record(3.0);
        {
            let _span = span!("test.lib.span");
        }
        trace_event!(crate::Level::Info, "test.lib.event", k = 1u32);
        // Disabled-recorder path: neither evaluates its arguments.
        flight!(crate::event::SimEvent::SafeFreq { f_ghz: 1.0 });
        let _track = flight_track!("test.lib.track{}", 1);
        assert_eq!(
            crate::registry::global().counter("test.lib.counter").get(),
            2
        );
    }
}
