//! Chrome `trace_event` JSON export for [`crate::event::FlightLog`].
//!
//! The output loads in `chrome://tracing` and Perfetto. Two views:
//!
//! * **Sim view** (always emitted, deterministic): one process per
//!   track — simulated clusters, probe app×Vdd runs, the runtime
//!   controller — with `ts` in simulated cycles (displayed as µs:
//!   1 cycle = 1 µs). Interval events (`ph: "X"`) carry `dur`; instant
//!   events use `ph: "i"`. Track processes are numbered in
//!   lexicographic track-name order so the rendered bytes are
//!   byte-identical at any `--jobs`.
//! * **Host view** (opt-in via `include_host`): one thread per pool
//!   lane under a single `host` process, with `ts` from the host
//!   wall clock. Wall-clock readings differ run to run, so this view
//!   is excluded from the deterministic export; enable it with
//!   `ACCORDION_CHROME_HOST=1` when profiling the pool itself.

use crate::event::{lane_name, FlightLog};
use crate::json::Json;

/// Builds the Chrome `trace_event` document for a drained log.
pub fn chrome_trace(log: &FlightLog, include_host: bool) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(log.len() * 2 + 8);

    // Deterministic pid assignment: tracks sorted by name. pid 1.. for
    // sim tracks; pid 0 is reserved for the host view.
    let mut tracks: Vec<(&str, u64)> = log
        .track_names
        .iter()
        .map(|(id, name)| (name.as_str(), *id))
        .collect();
    tracks.sort();
    let pid_of = |track: u64| -> f64 {
        tracks
            .iter()
            .position(|&(_, id)| id == track)
            .map(|i| (i + 1) as f64)
            .unwrap_or(0.0)
    };

    for (i, (name, _)) in tracks.iter().enumerate() {
        let pid = (i + 1) as f64;
        events.push(Json::obj(vec![
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::Num(pid)),
            ("args", Json::obj(vec![("name", Json::str(*name))])),
        ]));
        events.push(Json::obj(vec![
            ("name", Json::str("process_sort_index")),
            ("ph", Json::str("M")),
            ("pid", Json::Num(pid)),
            ("args", Json::obj(vec![("sort_index", Json::Num(pid))])),
        ]));
    }

    // `log.events` is already sorted by (track name, seq).
    for ev in &log.events {
        let pid = pid_of(ev.track);
        let mut obj = vec![
            ("name", Json::str(ev.event.name())),
            ("cat", Json::str(ev.event.layer())),
        ];
        match ev.event.duration_cycles() {
            Some(dur) => {
                // Interval events are stamped at their *end*; Chrome
                // wants the start.
                let start = ev.t_cycles.saturating_sub(dur);
                obj.push(("ph", Json::str("X")));
                obj.push(("ts", Json::Num(start as f64)));
                obj.push(("dur", Json::Num(dur as f64)));
            }
            None => {
                obj.push(("ph", Json::str("i")));
                obj.push(("ts", Json::Num(ev.t_cycles as f64)));
                obj.push(("s", Json::str("t")));
            }
        }
        obj.push(("pid", Json::Num(pid)));
        obj.push(("tid", Json::Num(0.0)));
        obj.push(("args", ev.event.args_json()));
        events.push(Json::Obj(
            obj.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        ));
    }

    if include_host {
        let mut lanes: Vec<u32> = log.events.iter().map(|e| e.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        events.push(Json::obj(vec![
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::Num(0.0)),
            ("args", Json::obj(vec![("name", Json::str("host"))])),
        ]));
        for lane in lanes {
            events.push(Json::obj(vec![
                ("name", Json::str("thread_name")),
                ("ph", Json::str("M")),
                ("pid", Json::Num(0.0)),
                ("tid", Json::Num(lane as f64)),
                (
                    "args",
                    Json::obj(vec![("name", Json::str(lane_name(lane)))]),
                ),
            ]));
        }
        for ev in &log.events {
            events.push(Json::obj(vec![
                ("name", Json::str(ev.event.name())),
                ("cat", Json::str(ev.event.layer())),
                ("ph", Json::str("i")),
                ("ts", Json::Num(ev.host_ns as f64 / 1000.0)),
                ("s", Json::str("t")),
                ("pid", Json::Num(0.0)),
                ("tid", Json::Num(ev.lane as f64)),
                ("args", ev.event.args_json()),
            ]));
        }
    }

    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
        (
            "otherData",
            Json::obj(vec![
                ("schema", Json::str("accordion.flight/1")),
                ("clock", Json::str("sim-cycles-as-us")),
                ("tracks", Json::Num(tracks.len() as f64)),
                ("events", Json::Num(log.len() as f64)),
                ("dropped", Json::Num(log.dropped as f64)),
                ("untracked", Json::Num(log.untracked as f64)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn empty_log_renders_and_parses() {
        let doc = chrome_trace(&FlightLog::default(), false);
        let text = doc.render();
        let back = json::parse(&text).expect("chrome trace parses");
        assert!(matches!(back.get("traceEvents"), Some(Json::Arr(_))));
        assert_eq!(
            back.get("otherData").and_then(|o| o.get("schema")),
            Some(&Json::str("accordion.flight/1"))
        );
    }
}
