//! Rolling time-window histograms: percentiles over the last N
//! seconds instead of the process lifetime.
//!
//! The lifetime histograms of [`crate::registry`] are the right tool
//! for batch runs — one artifact, one distribution — but a long-lived
//! server wants *recency*: after an hour of traffic, a p99 that still
//! remembers the cold-start requests is useless for spotting a tail
//! regression that began two minutes ago. A [`RollingHistogram`]
//! shards its window into a fixed number of time slices; recording
//! lands in the slice the observation's timestamp falls into, and a
//! snapshot merges only the slices that are still inside the window,
//! so old traffic ages out with slice granularity.
//!
//! # Window semantics
//!
//! A window of `W` seconds over `S` slices means: a snapshot taken at
//! time `t` covers observations from the current (partial) slice plus
//! the `S - 1` previous complete slices — between `W - W/S` and `W`
//! seconds of history, never more. Expired slices are lazily reset the
//! next time their slot is written, so an idle histogram decays to
//! empty without a background thread.
//!
//! # Determinism
//!
//! The wall clock is injected: every operation has an `_at_ms` variant
//! taking milliseconds-since-start, and the convenience wrappers read
//! the histogram's own monotonic clock. Tests drive the `_at_ms`
//! variants with synthetic timestamps and get bit-exact behavior.
//!
//! Recording takes one short per-slice mutex (slices are striped in
//! time, not across threads); this is a serving-path structure, not a
//! per-cycle one — the simulation hot loops keep the atomic lifetime
//! histograms.

use crate::prom::Exemplar;
use crate::registry::HistogramSnapshot;
use std::sync::Mutex;
use std::time::Instant;

/// Sentinel slice index meaning "never written".
const EMPTY: u64 = u64::MAX;

/// Default slice count for registry-created rolling histograms.
pub const DEFAULT_SLICES: usize = 8;

struct Slice {
    /// Absolute slice index currently stored, [`EMPTY`] when unused.
    epoch: u64,
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Slice {
    fn reset(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }
}

/// One stored exemplar: the rendered label body plus the observation
/// and its stamp (for aging out with the window).
struct ExemplarSlot {
    labels: String,
    value: f64,
    t_ms: u64,
}

/// A fixed-bucket histogram over a rolling time window.
pub struct RollingHistogram {
    bounds: Vec<f64>,
    slice_ms: u64,
    slices: Vec<Mutex<Slice>>,
    /// Latest exemplar per bucket (`bounds.len() + 1` slots, last =
    /// overflow). Latest-wins keeps memory fixed at one slot per
    /// bucket; stale entries age out of snapshots with the window.
    exemplars: Mutex<Vec<Option<ExemplarSlot>>>,
    start: Instant,
}

impl RollingHistogram {
    /// Creates a histogram with the given inclusive upper bucket
    /// edges, covering a window of `window_secs` split into `slices`
    /// time slices.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty or not strictly increasing, or
    /// when `window_secs`/`slices` is zero.
    pub fn new(bounds: &[f64], window_secs: f64, slices: usize) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        assert!(window_secs > 0.0 && slices > 0, "bad window spec");
        let slice_ms = ((window_secs * 1000.0 / slices as f64).round() as u64).max(1);
        Self {
            bounds: bounds.to_vec(),
            slice_ms,
            slices: (0..slices)
                .map(|_| {
                    Mutex::new(Slice {
                        epoch: EMPTY,
                        buckets: vec![0; bounds.len() + 1],
                        count: 0,
                        sum: 0.0,
                        min: f64::INFINITY,
                        max: f64::NEG_INFINITY,
                    })
                })
                .collect(),
            exemplars: Mutex::new((0..=bounds.len()).map(|_| None).collect()),
            start: Instant::now(),
        }
    }

    /// Milliseconds since this histogram was created (the clock the
    /// convenience wrappers feed to the `_at_ms` core).
    pub fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// The window span in seconds (slice length × slice count).
    pub fn window_secs(&self) -> f64 {
        (self.slice_ms * self.slices.len() as u64) as f64 / 1000.0
    }

    /// Records one observation at the current wall clock.
    pub fn record(&self, v: f64) {
        self.record_at_ms(v, self.now_ms());
    }

    /// Records one observation stamped `now_ms` milliseconds after the
    /// histogram's creation. Out-of-order stamps within the window are
    /// fine; a stamp older than the whole window is dropped.
    pub fn record_at_ms(&self, v: f64, now_ms: u64) {
        let epoch = now_ms / self.slice_ms;
        let slot = (epoch as usize) % self.slices.len();
        let mut slice = self.slices[slot].lock().expect("rolling slice lock");
        if slice.epoch != epoch {
            if slice.epoch != EMPTY && slice.epoch > epoch {
                // The slot has been reused by a newer slice already;
                // this observation is older than the window.
                return;
            }
            slice.reset(epoch);
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        slice.buckets[idx] += 1;
        slice.count += 1;
        slice.sum += v;
        slice.min = slice.min.min(v);
        slice.max = slice.max.max(v);
    }

    /// Records one observation and stores an exemplar for its bucket:
    /// `labels` is a pre-escaped Prometheus label body (see
    /// [`crate::prom::escape_label_value`]), e.g.
    /// `request_id="42",track="req00000042"`. Latest-wins per bucket.
    pub fn record_with_exemplar(&self, v: f64, labels: &str) {
        self.record_with_exemplar_at_ms(v, self.now_ms(), labels);
    }

    /// [`record_with_exemplar`](Self::record_with_exemplar) with an
    /// injected clock.
    pub fn record_with_exemplar_at_ms(&self, v: f64, now_ms: u64, labels: &str) {
        self.record_at_ms(v, now_ms);
        let idx = self.bounds.partition_point(|&b| b < v);
        let mut slots = self.exemplars.lock().expect("exemplar lock");
        slots[idx] = Some(ExemplarSlot {
            labels: labels.to_string(),
            value: v,
            t_ms: now_ms,
        });
    }

    /// Per-bucket exemplars still inside the window, indexed like the
    /// snapshot's buckets (`None` where no recent exemplar exists).
    pub fn exemplars(&self) -> Vec<Option<Exemplar>> {
        self.exemplars_at_ms(self.now_ms())
    }

    /// [`exemplars`](Self::exemplars) with an injected clock: entries
    /// older than the window (or stamped in its future) are dropped.
    pub fn exemplars_at_ms(&self, now_ms: u64) -> Vec<Option<Exemplar>> {
        let window_ms = self.slice_ms * self.slices.len() as u64;
        let slots = self.exemplars.lock().expect("exemplar lock");
        slots
            .iter()
            .map(|s| {
                s.as_ref()
                    .filter(|s| s.t_ms <= now_ms && now_ms - s.t_ms <= window_ms)
                    .map(|s| Exemplar {
                        labels: s.labels.clone(),
                        value: s.value,
                    })
            })
            .collect()
    }

    /// Merged view of the window ending at the current wall clock.
    pub fn window_snapshot(&self) -> HistogramSnapshot {
        self.window_snapshot_at_ms(self.now_ms())
    }

    /// Merged view of the window ending at `now_ms`: the current slice
    /// plus every earlier slice still inside the window.
    pub fn window_snapshot_at_ms(&self, now_ms: u64) -> HistogramSnapshot {
        let epoch = now_ms / self.slice_ms;
        let oldest = epoch.saturating_sub(self.slices.len() as u64 - 1);
        let mut buckets = vec![0u64; self.bounds.len() + 1];
        let mut count = 0u64;
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for slot in &self.slices {
            let slice = slot.lock().expect("rolling slice lock");
            if slice.epoch == EMPTY || slice.epoch < oldest || slice.epoch > epoch {
                continue;
            }
            for (acc, b) in buckets.iter_mut().zip(&slice.buckets) {
                *acc += b;
            }
            count += slice.count;
            sum += slice.sum;
            min = min.min(slice.min);
            max = max.max(slice.max);
        }
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets,
            count,
            sum,
            min: (count > 0).then_some(min),
            max: (count > 0).then_some(max),
        }
    }

    /// The `q`-quantile over the current window (`None` when the
    /// window holds no observations). Bucket-edge resolution, exact
    /// min/max — same estimator as the lifetime histograms.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        self.window_snapshot().percentile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> RollingHistogram {
        // 8-second window, 4 slices of 2 s.
        RollingHistogram::new(&[1.0, 10.0, 100.0], 8.0, 4)
    }

    #[test]
    fn records_merge_across_slices() {
        let h = hist();
        h.record_at_ms(0.5, 0); // slice 0
        h.record_at_ms(5.0, 2_500); // slice 1
        h.record_at_ms(50.0, 6_100); // slice 3
        let s = h.window_snapshot_at_ms(6_200);
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets, vec![1, 1, 1, 0]);
        assert_eq!(s.min, Some(0.5));
        assert_eq!(s.max, Some(50.0));
        assert!((s.sum - 55.5).abs() < 1e-12);
    }

    #[test]
    fn old_slices_age_out_of_the_window() {
        let h = hist();
        h.record_at_ms(5.0, 1_000); // slice 0
                                    // Still visible while the window covers slice 0 (epochs 0..=3).
        assert_eq!(h.window_snapshot_at_ms(7_900).count, 1);
        // At epoch 4 the window is slices 1..=4: slice 0 is out, even
        // though its slot has not been overwritten yet.
        assert_eq!(h.window_snapshot_at_ms(8_100).count, 0);
        assert_eq!(h.window_snapshot_at_ms(8_100).percentile(0.99), None);
    }

    #[test]
    fn slot_reuse_resets_stale_data() {
        let h = hist();
        h.record_at_ms(5.0, 500); // slice 0, slot 0
        h.record_at_ms(7.0, 8_500); // slice 4, same slot — must reset
        let s = h.window_snapshot_at_ms(8_600);
        assert_eq!(s.count, 1);
        assert_eq!(s.min, Some(7.0));
    }

    #[test]
    fn stale_record_is_dropped_not_misfiled() {
        let h = hist();
        h.record_at_ms(7.0, 8_500); // slot 0 now holds epoch 4
        h.record_at_ms(5.0, 500); // epoch 0 hits the same slot: too old
        assert_eq!(h.window_snapshot_at_ms(8_600).count, 1);
    }

    #[test]
    fn percentiles_reflect_only_the_window() {
        let h = hist();
        for _ in 0..100 {
            h.record_at_ms(0.5, 100); // fast era, slice 0
        }
        for _ in 0..10 {
            h.record_at_ms(50.0, 15_000); // slow era, epoch 7
        }
        // After the fast era expired (window at 16.5 s covers epochs
        // 5..=8), p50 must jump to the slow cohort.
        let s = h.window_snapshot_at_ms(16_500);
        assert_eq!(s.count, 10);
        assert_eq!(s.percentile(0.5), Some(50.0));
    }

    #[test]
    fn wall_clock_wrappers_work() {
        let h = hist();
        h.record(3.0);
        assert_eq!(h.window_snapshot().count, 1);
        assert_eq!(h.percentile(0.5), Some(3.0));
        assert!((h.window_secs() - 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        let _ = RollingHistogram::new(&[2.0, 1.0], 1.0, 2);
    }

    #[test]
    fn idle_gap_expires_slices_without_writes() {
        // No traffic arrives between scrapes: expiry must come from
        // the snapshot clock alone, with no record() to trigger the
        // lazy slot reset.
        let h = hist(); // 8 s window, 4 × 2 s slices
        for i in 0..20 {
            h.record_at_ms(5.0, 100 + i); // all in slice 0
        }
        assert_eq!(h.window_snapshot_at_ms(1_000).count, 20);
        // Scrapes during the idle gap watch the window drain...
        assert_eq!(h.window_snapshot_at_ms(7_999).count, 20);
        assert_eq!(h.window_snapshot_at_ms(8_000).count, 0);
        // ...and far past the gap it stays empty (slot epochs are long
        // stale but must never alias back into the window).
        for t in [20_000, 60_000, 3_600_000] {
            let s = h.window_snapshot_at_ms(t);
            assert_eq!(s.count, 0, "t={t}");
            assert_eq!(s.percentile(0.99), None, "t={t}");
            assert_eq!(s.min, None, "t={t}");
        }
        // Traffic resuming after the gap lands in a clean window.
        h.record_at_ms(7.0, 3_600_500);
        let s = h.window_snapshot_at_ms(3_600_600);
        assert_eq!((s.count, s.min), (1, Some(7.0)));
    }

    #[test]
    fn idle_gap_spanning_one_partial_window_keeps_recent_slices() {
        let h = hist();
        h.record_at_ms(1.5, 1_000); // slice 0
        h.record_at_ms(50.0, 7_000); // slice 3
                                     // A gap moves the window to epochs 1..=4: slice 0 is out,
                                     // slice 3 still in, with no intervening traffic.
        let s = h.window_snapshot_at_ms(9_900);
        assert_eq!(s.count, 1);
        assert_eq!(s.min, Some(50.0));
    }

    #[test]
    fn exemplars_capture_latest_and_age_out() {
        let h = hist();
        h.record_with_exemplar_at_ms(0.5, 100, "request_id=\"1\"");
        h.record_with_exemplar_at_ms(0.7, 200, "request_id=\"2\"");
        h.record_with_exemplar_at_ms(50.0, 300, "request_id=\"3\"");
        let ex = h.exemplars_at_ms(400);
        // Bucket 0 (≤1.0): latest wins.
        assert_eq!(ex[0].as_ref().unwrap().labels, "request_id=\"2\"");
        assert_eq!(ex[0].as_ref().unwrap().value, 0.7);
        // Bucket 2 (≤100.0) holds request 3; bucket 1 and overflow are
        // empty.
        assert_eq!(ex[2].as_ref().unwrap().labels, "request_id=\"3\"");
        assert!(ex[1].is_none() && ex[3].is_none());
        // Past the window every exemplar ages out, matching the
        // histogram itself.
        assert!(h.exemplars_at_ms(9_000).iter().all(Option::is_none));
    }

    #[test]
    fn exemplar_counts_match_bucket_layout() {
        let h = hist();
        assert_eq!(h.exemplars().len(), 4); // 3 bounds + overflow
        h.record_with_exemplar(3.0, "t=\"x\"");
        let ex = h.exemplars();
        assert_eq!(ex[1].as_ref().map(|e| e.value), Some(3.0));
    }
}
