//! Scoped wall-clock spans with nesting.
//!
//! `let _guard = span!("varius.generate_chip");` times the enclosing
//! scope. When telemetry is inactive (no sink installed, no timing
//! requested) the guard is an empty `Option` and entering/dropping it
//! costs one relaxed atomic load — nanosecond-scale, verified by the
//! `telemetry_overhead` bench — so spans are safe in hot loops.

use std::cell::Cell;
use std::time::Instant;

use crate::sink::{self, Event, EventKind, Level};

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Current span nesting depth on this thread.
pub fn current_depth() -> usize {
    DEPTH.with(Cell::get)
}

/// RAII timer for one scope; created by the [`crate::span!`] macro.
#[must_use = "binding the guard to `_` drops it immediately; use `let _span = span!(..)`"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: String,
    start: Instant,
}

impl SpanGuard {
    /// Enters a span named `name` if telemetry is active; otherwise
    /// returns an inert guard without reading the clock.
    pub fn enter(name: &str) -> SpanGuard {
        if !sink::active() {
            return SpanGuard { active: None };
        }
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        if sink::level_enabled(Level::Debug) {
            let thread = std::thread::current();
            sink::emit(&Event {
                seq: sink::next_seq(),
                kind: EventKind::SpanStart,
                level: Level::Debug,
                name,
                depth,
                elapsed_ns: None,
                thread: thread.name().unwrap_or("?"),
                fields: &[],
            });
        }
        SpanGuard {
            active: Some(ActiveSpan {
                name: name.to_string(),
                start: Instant::now(),
            }),
        }
    }

    /// The span's name, when active.
    pub fn name(&self) -> Option<&str> {
        self.active.as_ref().map(|a| a.name.as_str())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let elapsed_ns = active.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let depth = DEPTH.with(|d| {
            let depth = d.get().saturating_sub(1);
            d.set(depth);
            depth
        });
        crate::registry::global()
            .span_stats(&active.name)
            .record_ns(elapsed_ns);
        if sink::level_enabled(Level::Info) {
            let thread = std::thread::current();
            sink::emit(&Event {
                seq: sink::next_seq(),
                kind: EventKind::SpanEnd,
                level: Level::Info,
                name: &active.name,
                depth,
                elapsed_ns: Some(elapsed_ns),
                thread: thread.name().unwrap_or("?"),
                fields: &[],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test body: `set_timing` flips process-global state, so the
    // inert and active behaviors must be checked in a fixed order.
    #[test]
    fn span_lifecycle() {
        // No sink, no timing: the guard must not touch the registry.
        let guard = SpanGuard::enter("test.span.inert");
        assert!(guard.name().is_none());
        drop(guard);
        assert_eq!(
            crate::registry::global()
                .span_stats("test.span.inert")
                .calls(),
            0
        );

        sink::set_timing(true);
        {
            let _a = SpanGuard::enter("test.span.outer");
            assert_eq!(current_depth(), 1);
            {
                let _b = SpanGuard::enter("test.span.inner");
                assert_eq!(current_depth(), 2);
            }
            assert_eq!(current_depth(), 1);
        }
        assert_eq!(current_depth(), 0);
        sink::set_timing(false);
        let stats = crate::registry::global().span_stats("test.span.outer");
        assert_eq!(stats.calls(), 1);
        assert!(stats.total_ns() > 0);
        assert_eq!(
            crate::registry::global()
                .span_stats("test.span.inner")
                .calls(),
            1
        );
    }
}
