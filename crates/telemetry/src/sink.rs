//! Pluggable event sinks: a human-readable stderr tracer and a JSONL
//! file sink, both behind one cheap global "is anything listening"
//! check so instrumentation is safe in hot loops.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::json::Json;

/// Verbosity of the tracing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No tracing output.
    Off = 0,
    /// Span completions and explicit events.
    Info = 1,
    /// Additionally span entries (nesting becomes visible).
    Debug = 2,
}

impl Level {
    /// Parses `off` / `info` / `debug` (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Some(Level::Off),
            "info" | "1" => Some(Level::Info),
            "debug" | "2" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// A single field on an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldVal {
    /// Unsigned integer.
    U(u64),
    /// Signed integer.
    I(i64),
    /// Float.
    F(f64),
    /// String.
    S(String),
    /// Boolean.
    B(bool),
}

macro_rules! fieldval_from {
    ($($t:ty => $variant:ident as $cast:ty),*) => {$(
        impl From<$t> for FieldVal {
            fn from(v: $t) -> Self { FieldVal::$variant(v as $cast) }
        }
    )*};
}
fieldval_from!(u8 => U as u64, u16 => U as u64, u32 => U as u64, u64 => U as u64,
               usize => U as u64, i8 => I as i64, i16 => I as i64, i32 => I as i64,
               i64 => I as i64, isize => I as i64, f32 => F as f64, f64 => F as f64);

impl From<bool> for FieldVal {
    fn from(v: bool) -> Self {
        FieldVal::B(v)
    }
}

impl From<&str> for FieldVal {
    fn from(v: &str) -> Self {
        FieldVal::S(v.to_string())
    }
}

impl From<String> for FieldVal {
    fn from(v: String) -> Self {
        FieldVal::S(v)
    }
}

impl FieldVal {
    fn to_json(&self) -> Json {
        match self {
            FieldVal::U(v) => Json::Num(*v as f64),
            FieldVal::I(v) => Json::Num(*v as f64),
            FieldVal::F(v) => Json::Num(*v),
            FieldVal::S(v) => Json::Str(v.clone()),
            FieldVal::B(v) => Json::Bool(*v),
        }
    }
}

impl std::fmt::Display for FieldVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldVal::U(v) => write!(f, "{v}"),
            FieldVal::I(v) => write!(f, "{v}"),
            FieldVal::F(v) => write!(f, "{v:.6}"),
            FieldVal::S(v) => write!(f, "{v}"),
            FieldVal::B(v) => write!(f, "{v}"),
        }
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span was entered.
    SpanStart,
    /// A span completed; `elapsed_ns` is set.
    SpanEnd,
    /// An explicit point event.
    Point,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Point => "event",
        }
    }
}

/// One telemetry event, borrowed from the emitting call-site.
#[derive(Debug)]
pub struct Event<'a> {
    /// Monotone per-process sequence number.
    pub seq: u64,
    /// Event class.
    pub kind: EventKind,
    /// Level at which this event is observable.
    pub level: Level,
    /// Span or event name (dotted path: `layer.component.what`).
    pub name: &'a str,
    /// Span nesting depth on the emitting thread.
    pub depth: usize,
    /// Elapsed wall-clock for `SpanEnd` events.
    pub elapsed_ns: Option<u64>,
    /// Name of the emitting thread.
    pub thread: &'a str,
    /// Structured payload.
    pub fields: &'a [(&'a str, FieldVal)],
}

impl Event<'_> {
    /// Renders the event as one self-describing JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("seq".to_string(), Json::Num(self.seq as f64)),
            ("kind".to_string(), Json::str(self.kind.as_str())),
            ("level".to_string(), Json::str(self.level.as_str())),
            ("name".to_string(), Json::str(self.name)),
            ("depth".to_string(), Json::Num(self.depth as f64)),
            ("thread".to_string(), Json::str(self.thread)),
        ];
        if let Some(ns) = self.elapsed_ns {
            pairs.push(("elapsed_ns".to_string(), Json::Num(ns as f64)));
        }
        if !self.fields.is_empty() {
            pairs.push((
                "fields".to_string(),
                Json::Obj(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_json()))
                        .collect(),
                ),
            ));
        }
        Json::Obj(pairs)
    }
}

/// An event consumer.
pub trait Sink: Send + Sync {
    /// Receives one event (already filtered by the sink's level).
    fn event(&self, event: &Event<'_>);
    /// Flushes buffered output.
    fn flush(&self) {}
}

struct Installed {
    level: Level,
    sink: Arc<dyn Sink>,
}

static SINKS: RwLock<Vec<Installed>> = RwLock::new(Vec::new());
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Bit 0: span timing requested; bit 1: at least one sink installed.
static STATE: AtomicU8 = AtomicU8::new(0);
const TIMING_BIT: u8 = 1;
const SINK_BIT: u8 = 2;
/// Highest level any sink listens at, as a `Level` discriminant.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

/// True when spans should take timestamps at all (a sink is installed
/// or span accounting was explicitly requested). One relaxed load.
#[inline]
pub fn active() -> bool {
    STATE.load(Ordering::Relaxed) != 0
}

/// True when events at `level` reach at least one sink.
#[inline]
pub fn level_enabled(level: Level) -> bool {
    MAX_LEVEL.load(Ordering::Relaxed) >= level as u8
}

/// Requests span wall-clock accounting into the registry even with no
/// sink installed (the repro binary enables this for its manifest).
pub fn set_timing(enabled: bool) {
    if enabled {
        STATE.fetch_or(TIMING_BIT, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!TIMING_BIT, Ordering::Relaxed);
    }
}

/// Installs a sink receiving events up to `level`.
pub fn install(level: Level, sink: Arc<dyn Sink>) {
    let mut sinks = SINKS.write().expect("sink lock");
    sinks.push(Installed { level, sink });
    STATE.fetch_or(SINK_BIT, Ordering::Relaxed);
    let max = sinks.iter().map(|i| i.level as u8).max().unwrap_or(0);
    MAX_LEVEL.store(max, Ordering::Relaxed);
}

/// Removes every installed sink (flushing first) and drops the
/// sink-installed bit. Span accounting requested via [`set_timing`]
/// survives.
pub fn clear() {
    let mut sinks = SINKS.write().expect("sink lock");
    for installed in sinks.iter() {
        installed.sink.flush();
    }
    sinks.clear();
    MAX_LEVEL.store(0, Ordering::Relaxed);
    STATE.fetch_and(!SINK_BIT, Ordering::Relaxed);
}

/// Flushes every installed sink.
pub fn flush() {
    for installed in SINKS.read().expect("sink lock").iter() {
        installed.sink.flush();
    }
}

/// Reads `ACCORDION_TRACE` (stderr sink level) and
/// `ACCORDION_TRACE_JSON` (JSONL sink path) and installs the
/// corresponding sinks. Unknown level strings are treated as `off`.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("ACCORDION_TRACE") {
        if let Some(level) = Level::parse(&v) {
            if level > Level::Off {
                install(level, Arc::new(StderrSink));
            }
        }
    }
    if let Ok(path) = std::env::var("ACCORDION_TRACE_JSON") {
        if !path.is_empty() {
            match JsonlSink::create(Path::new(&path)) {
                Ok(sink) => install(Level::Debug, Arc::new(sink)),
                Err(e) => eprintln!("[accordion-telemetry] cannot open {path}: {e}"),
            }
        }
    }
}

/// Dispatches `event` to every sink listening at its level.
pub fn emit(event: &Event<'_>) {
    for installed in SINKS.read().expect("sink lock").iter() {
        if installed.level >= event.level {
            installed.sink.event(event);
        }
    }
}

/// Allocates the next event sequence number.
pub fn next_seq() -> u64 {
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Emits an explicit point event (used by the `trace_event!` macro).
pub fn emit_point(level: Level, name: &str, fields: &[(&str, FieldVal)]) {
    let thread = std::thread::current();
    let event = Event {
        seq: next_seq(),
        kind: EventKind::Point,
        level,
        name,
        depth: crate::span::current_depth(),
        elapsed_ns: None,
        thread: thread.name().unwrap_or("?"),
        fields,
    };
    emit(&event);
}

/// Human-readable tracer writing to stderr.
pub struct StderrSink;

impl Sink for StderrSink {
    fn event(&self, event: &Event<'_>) {
        let mut line = String::with_capacity(96);
        line.push_str("[accordion ");
        line.push_str(event.thread);
        line.push_str("] ");
        for _ in 0..event.depth {
            line.push_str("  ");
        }
        match event.kind {
            EventKind::SpanStart => {
                line.push_str("▶ ");
                line.push_str(event.name);
            }
            EventKind::SpanEnd => {
                line.push_str("◀ ");
                line.push_str(event.name);
                if let Some(ns) = event.elapsed_ns {
                    line.push_str(&format!(" ({})", fmt_ns(ns)));
                }
            }
            EventKind::Point => {
                line.push_str("• ");
                line.push_str(event.name);
            }
        }
        for (k, v) in event.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        eprintln!("{line}");
    }
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Machine-readable sink: one self-describing JSON object per line.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncates) the JSONL file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(Self {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl Sink for JsonlSink {
    fn event(&self, event: &Event<'_>) {
        let line = event.to_json().render();
        let mut writer = self.writer.lock().expect("jsonl lock");
        let _ = writeln!(writer, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl lock").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Debug > Level::Info);
    }

    #[test]
    fn event_json_shape() {
        let fields = [
            ("mode", FieldVal::from("drop")),
            ("n", FieldVal::from(3u32)),
        ];
        let e = Event {
            seq: 7,
            kind: EventKind::Point,
            level: Level::Info,
            name: "sim.fault",
            depth: 2,
            elapsed_ns: None,
            thread: "main",
            fields: &fields,
        };
        let j = e.to_json();
        assert_eq!(j.get("kind").and_then(Json::as_str), Some("event"));
        assert_eq!(j.get("name").and_then(Json::as_str), Some("sim.fault"));
        let f = j.get("fields").expect("fields");
        assert_eq!(f.get("mode").and_then(Json::as_str), Some("drop"));
        assert_eq!(f.get("n").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(1_500), "1.5 µs");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.210 s");
    }
}
