//! Declarative alert rules with multi-window burn-rate evaluation
//! over the [`crate::tsdb`] store.
//!
//! Rules are written in a TOML-ish zero-dependency format — one
//! `[[alert]]` table per rule, `key = value` lines, `#` comments:
//!
//! ```toml
//! [[alert]]
//! name = "ok-p99-latency"
//! metric = "served_http_request_latency_us{outcome=\"ok\"}:p99"
//! op = "gt"
//! threshold = 50000.0      # µs
//! fast_window_s = 300
//! slow_window_s = 3600
//!
//! [[alert]]
//! name = "shed-slo-burn"
//! bad = "served_http_requests_by_outcome_total{outcome=\"shed\"}:rate"
//! total = "served_http_requests_total:rate"
//! objective = 0.999        # ≤ 0.1 % of requests may shed
//! fast_burn = 14.4
//! slow_burn = 6.0
//! ```
//!
//! # Evaluation
//!
//! A *threshold* rule violates a window when the TSDB mean of its
//! metric over that window crosses the threshold. A *burn-rate* rule
//! follows the classic multi-window SLO formulation: with an
//! objective of `o` (fraction of good events), the error budget is
//! `1 - o`; the burn rate of a window is
//! `(bad_rate / total_rate) / (1 - o)` — how many times faster than
//! budget the SLO is being consumed — and the window violates when
//! that exceeds its configured factor (the defaults, 14.4× fast /
//! 6× slow, are the standard page-worthy burn rates).
//!
//! The state machine needs the *fast* window to trip before anything
//! happens and both windows to trip before firing:
//!
//! ```text
//! inactive ──fast──▶ pending ──fast+slow──▶ firing ──!fast──▶ resolved
//!     ▲                 │  ▲                                     │
//!     └────!fast────────┘  └──────────────fast───────────────────┘
//! ```
//!
//! `resolved` is sticky until the next violation so tests (and
//! `/v1/alerts` pollers) can observe it; a firing alert keeps firing
//! while the fast window still violates, even after the slow window
//! recovers. Evaluation is driven from scrape samples with an
//! injected clock ([`AlertSet::evaluate_at_ms`]), so transitions are
//! deterministic and pinnable.

use crate::tsdb::Tsdb;
use std::fmt;

/// Default fast evaluation window, seconds (5 m).
pub const DEFAULT_FAST_WINDOW_S: u64 = 300;
/// Default slow evaluation window, seconds (1 h).
pub const DEFAULT_SLOW_WINDOW_S: u64 = 3600;
/// Default fast-window burn-rate factor.
pub const DEFAULT_FAST_BURN: f64 = 14.4;
/// Default slow-window burn-rate factor.
pub const DEFAULT_SLOW_BURN: f64 = 6.0;

/// Comparison direction of a threshold rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Violates when the mean exceeds the threshold.
    Gt,
    /// Violates when the mean falls below the threshold.
    Lt,
}

/// What a rule watches.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertKind {
    /// Window mean of one series against a fixed threshold.
    Threshold {
        /// TSDB series id to watch.
        metric: String,
        /// Comparison direction.
        op: Op,
        /// The threshold.
        threshold: f64,
    },
    /// Multi-window SLO burn rate over a bad/total rate pair.
    BurnRate {
        /// Series id of the bad-event rate.
        bad: String,
        /// Series id of the total-event rate.
        total: String,
        /// SLO objective: fraction of good events, in `(0, 1)`.
        objective: f64,
        /// Fast-window burn factor.
        fast_burn: f64,
        /// Slow-window burn factor.
        slow_burn: f64,
    },
}

/// One parsed alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule name (unique per file; shown everywhere).
    pub name: String,
    /// What it watches.
    pub kind: AlertKind,
    /// Fast window, seconds.
    pub fast_window_s: u64,
    /// Slow window, seconds.
    pub slow_window_s: u64,
}

/// Lifecycle state of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Never violated (or long recovered).
    Inactive,
    /// Fast window violates; slow has not confirmed yet.
    Pending,
    /// Both windows violated; still paging.
    Firing,
    /// Recently stopped firing (sticky until the next violation).
    Resolved,
}

impl AlertState {
    /// Lower-case wire name (`/v1/alerts`, access log).
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

impl fmt::Display for AlertState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One state change produced by an evaluation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Rule name.
    pub name: String,
    /// State before.
    pub from: AlertState,
    /// State after.
    pub to: AlertState,
    /// Evaluation stamp, ms.
    pub at_ms: u64,
}

/// Point-in-time view of one rule for `/v1/alerts`.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertStatus {
    /// Rule name.
    pub name: String,
    /// Current state.
    pub state: AlertState,
    /// When the current state was entered, ms.
    pub since_ms: u64,
    /// Last measured fast-window value (mean or burn rate).
    pub fast_value: Option<f64>,
    /// Last measured slow-window value.
    pub slow_value: Option<f64>,
}

struct Entry {
    rule: AlertRule,
    state: AlertState,
    since_ms: u64,
    fast_value: Option<f64>,
    slow_value: Option<f64>,
}

/// A set of rules plus their evaluation state.
pub struct AlertSet {
    entries: Vec<Entry>,
}

impl AlertSet {
    /// Wraps parsed rules; everything starts `inactive`.
    pub fn new(rules: Vec<AlertRule>) -> Self {
        Self {
            entries: rules
                .into_iter()
                .map(|rule| Entry {
                    rule,
                    state: AlertState::Inactive,
                    since_ms: 0,
                    fast_value: None,
                    slow_value: None,
                })
                .collect(),
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no rules are loaded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of rules currently firing.
    pub fn firing(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.state == AlertState::Firing)
            .count()
    }

    /// Evaluates every rule against the store at `now_ms`, advancing
    /// the state machines; returns the transitions that occurred.
    pub fn evaluate_at_ms(&mut self, tsdb: &Tsdb, now_ms: u64) -> Vec<Transition> {
        let mut out = Vec::new();
        for e in &mut self.entries {
            let (fast_value, fast_viol) =
                measure(&e.rule.kind, tsdb, e.rule.fast_window_s, now_ms, true);
            let (slow_value, slow_viol) =
                measure(&e.rule.kind, tsdb, e.rule.slow_window_s, now_ms, false);
            e.fast_value = fast_value;
            e.slow_value = slow_value;
            let next = if fast_viol && slow_viol {
                AlertState::Firing
            } else if fast_viol {
                if e.state == AlertState::Firing {
                    AlertState::Firing
                } else {
                    AlertState::Pending
                }
            } else {
                match e.state {
                    AlertState::Pending | AlertState::Firing => AlertState::Resolved,
                    other => other,
                }
            };
            if next != e.state {
                out.push(Transition {
                    name: e.rule.name.clone(),
                    from: e.state,
                    to: next,
                    at_ms: now_ms,
                });
                e.state = next;
                e.since_ms = now_ms;
            }
        }
        out
    }

    /// Current view of every rule, in file order.
    pub fn statuses(&self) -> Vec<AlertStatus> {
        self.entries
            .iter()
            .map(|e| AlertStatus {
                name: e.rule.name.clone(),
                state: e.state,
                since_ms: e.since_ms,
                fast_value: e.fast_value,
                slow_value: e.slow_value,
            })
            .collect()
    }
}

/// Measures one rule over one window: `(value, violating)`. Missing
/// data never violates — an idle server must not page.
fn measure(
    kind: &AlertKind,
    tsdb: &Tsdb,
    window_s: u64,
    now_ms: u64,
    fast: bool,
) -> (Option<f64>, bool) {
    match kind {
        AlertKind::Threshold {
            metric,
            op,
            threshold,
        } => {
            let v = tsdb.window_mean_at_ms(metric, window_s, now_ms);
            let viol = v.is_some_and(|v| match op {
                Op::Gt => v > *threshold,
                Op::Lt => v < *threshold,
            });
            (v, viol)
        }
        AlertKind::BurnRate {
            bad,
            total,
            objective,
            fast_burn,
            slow_burn,
        } => {
            let total_rate = tsdb.window_mean_at_ms(total, window_s, now_ms);
            let Some(total_rate) = total_rate.filter(|&t| t > 0.0) else {
                return (None, false);
            };
            let bad_rate = tsdb.window_mean_at_ms(bad, window_s, now_ms).unwrap_or(0.0);
            let burn = (bad_rate / total_rate) / (1.0 - objective);
            let factor = if fast { *fast_burn } else { *slow_burn };
            (Some(burn), burn > factor)
        }
    }
}

/// A rule mid-parse: its `[[alert]]` line number plus the
/// `(line, key, value)` triples accumulated so far.
type PartialRule = (usize, Vec<(usize, String, Value)>);

/// Parses a rule file. Returns every problem found, one message per
/// offense, each prefixed with its line number.
pub fn parse_rules(text: &str) -> Result<Vec<AlertRule>, Vec<String>> {
    let mut errors: Vec<String> = Vec::new();
    let mut rules: Vec<AlertRule> = Vec::new();
    let mut current: Option<PartialRule> = None;

    let finish =
        |cur: &mut Option<PartialRule>, errors: &mut Vec<String>, rules: &mut Vec<AlertRule>| {
            if let Some((start, kvs)) = cur.take() {
                match build_rule(start, kvs) {
                    Ok(rule) => {
                        if rules.iter().any(|r: &AlertRule| r.name == rule.name) {
                            errors.push(format!(
                                "line {start}: duplicate alert name {:?}",
                                rule.name
                            ));
                        } else {
                            rules.push(rule);
                        }
                    }
                    Err(mut e) => errors.append(&mut e),
                }
            }
        };

    for (ln, raw) in text.lines().enumerate() {
        let ln = ln + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[alert]]" {
            finish(&mut current, &mut errors, &mut rules);
            current = Some((ln, Vec::new()));
            continue;
        }
        if line.starts_with('[') {
            errors.push(format!("line {ln}: unknown table {line:?}"));
            continue;
        }
        let Some(eq) = line.find('=') else {
            errors.push(format!("line {ln}: expected `key = value`, got {line:?}"));
            continue;
        };
        let key = line[..eq].trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            errors.push(format!("line {ln}: invalid key {key:?}"));
            continue;
        }
        let value = match parse_value(line[eq + 1..].trim()) {
            Ok(v) => v,
            Err(e) => {
                errors.push(format!("line {ln}: {e}"));
                continue;
            }
        };
        match &mut current {
            Some((_, kvs)) => kvs.push((ln, key.to_string(), value)),
            None => errors.push(format!("line {ln}: `{key}` outside any [[alert]] table")),
        }
    }
    finish(&mut current, &mut errors, &mut rules);

    if errors.is_empty() {
        Ok(rules)
    } else {
        Err(errors)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
}

/// Parses one value: a quoted string (with `\\`, `\"`, `\n` escapes),
/// a number, or a bare word. A trailing `# comment` is allowed.
fn parse_value(s: &str) -> Result<Value, String> {
    if let Some(rest) = s.strip_prefix('"') {
        let mut value = String::new();
        let mut escaped = false;
        let mut end = None;
        for (i, c) in rest.char_indices() {
            if escaped {
                match c {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    other => return Err(format!("bad escape \\{other}")),
                }
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    end = Some(i);
                    break;
                }
                other => value.push(other),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated string {s:?}"))?;
        let trailer = rest[end + 1..].trim();
        if !trailer.is_empty() && !trailer.starts_with('#') {
            return Err(format!("trailing garbage after string: {trailer:?}"));
        }
        return Ok(Value::Str(value));
    }
    let bare = s.split('#').next().unwrap_or("").trim();
    if bare.is_empty() {
        return Err("missing value".to_string());
    }
    if let Ok(n) = bare.parse::<f64>() {
        return Ok(Value::Num(n));
    }
    if bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Ok(Value::Str(bare.to_string()));
    }
    Err(format!("unparseable value {bare:?} (quote strings)"))
}

/// Validates one accumulated `[[alert]]` table into a rule.
fn build_rule(start: usize, kvs: Vec<(usize, String, Value)>) -> Result<AlertRule, Vec<String>> {
    const KNOWN: &[&str] = &[
        "name",
        "kind",
        "metric",
        "op",
        "threshold",
        "bad",
        "total",
        "objective",
        "fast_burn",
        "slow_burn",
        "fast_window_s",
        "slow_window_s",
    ];
    let mut errors = Vec::new();
    let mut map: std::collections::BTreeMap<&str, (usize, &Value)> = Default::default();
    for (ln, key, value) in &kvs {
        if !KNOWN.contains(&key.as_str()) {
            errors.push(format!("line {ln}: unknown key {key:?}"));
            continue;
        }
        if map.insert(key.as_str(), (*ln, value)).is_some() {
            errors.push(format!("line {ln}: duplicate key {key:?}"));
        }
    }
    let str_of = |key: &str, errors: &mut Vec<String>| -> Option<String> {
        match map.get(key) {
            Some((_, Value::Str(s))) => Some(s.clone()),
            Some((ln, Value::Num(_))) => {
                errors.push(format!("line {ln}: {key} must be a string"));
                None
            }
            None => None,
        }
    };
    let num_of = |key: &str, errors: &mut Vec<String>| -> Option<f64> {
        match map.get(key) {
            Some((_, Value::Num(n))) => Some(*n),
            Some((ln, Value::Str(_))) => {
                errors.push(format!("line {ln}: {key} must be a number"));
                None
            }
            None => None,
        }
    };

    let name = match str_of("name", &mut errors) {
        Some(n) if !n.is_empty() => n,
        _ => {
            errors.push(format!("line {start}: [[alert]] needs a non-empty name"));
            String::new()
        }
    };

    let window = |key: &str, default: u64, errors: &mut Vec<String>| -> u64 {
        match num_of(key, errors) {
            Some(v) if v >= 1.0 && v.fract() == 0.0 => v as u64,
            Some(_) => {
                errors.push(format!("alert {name:?}: {key} must be a whole number ≥ 1"));
                default
            }
            None => default,
        }
    };
    let fast_window_s = window("fast_window_s", DEFAULT_FAST_WINDOW_S, &mut errors);
    let slow_window_s = window("slow_window_s", DEFAULT_SLOW_WINDOW_S, &mut errors);
    if fast_window_s > slow_window_s {
        errors.push(format!(
            "alert {name:?}: fast_window_s ({fast_window_s}) exceeds slow_window_s ({slow_window_s})"
        ));
    }

    // Infer the kind from the keys present; an explicit `kind` must
    // agree.
    let is_threshold = map.contains_key("metric") || map.contains_key("threshold");
    let is_burn = map.contains_key("bad") || map.contains_key("total");
    let declared = str_of("kind", &mut errors);
    let kind = match (is_threshold, is_burn) {
        (true, true) => {
            errors.push(format!(
                "alert {name:?}: mixes threshold keys (metric/threshold) with \
                 burn-rate keys (bad/total)"
            ));
            None
        }
        (true, false) => {
            if matches!(declared.as_deref(), Some(k) if k != "threshold") {
                errors.push(format!(
                    "alert {name:?}: kind mismatch (keys say threshold)"
                ));
            }
            let metric = str_of("metric", &mut errors).unwrap_or_else(|| {
                errors.push(format!("alert {name:?}: missing metric"));
                String::new()
            });
            let op = match str_of("op", &mut errors).as_deref() {
                None | Some("gt") => Op::Gt,
                Some("lt") => Op::Lt,
                Some(other) => {
                    errors.push(format!(
                        "alert {name:?}: op must be gt or lt, got {other:?}"
                    ));
                    Op::Gt
                }
            };
            let threshold = num_of("threshold", &mut errors).unwrap_or_else(|| {
                errors.push(format!("alert {name:?}: missing threshold"));
                0.0
            });
            Some(AlertKind::Threshold {
                metric,
                op,
                threshold,
            })
        }
        (false, true) => {
            if matches!(declared.as_deref(), Some(k) if k != "burn_rate") {
                errors.push(format!(
                    "alert {name:?}: kind mismatch (keys say burn_rate)"
                ));
            }
            let mut req = |key: &str| {
                str_of(key, &mut errors).unwrap_or_else(|| {
                    errors.push(format!("alert {name:?}: missing {key}"));
                    String::new()
                })
            };
            let bad = req("bad");
            let total = req("total");
            let objective = match num_of("objective", &mut errors) {
                Some(o) if o > 0.0 && o < 1.0 => o,
                Some(o) => {
                    errors.push(format!(
                        "alert {name:?}: objective must be in (0, 1), got {o}"
                    ));
                    0.999
                }
                None => {
                    errors.push(format!("alert {name:?}: missing objective"));
                    0.999
                }
            };
            let factor = |key: &str, default: f64, errors: &mut Vec<String>| -> f64 {
                match num_of(key, errors) {
                    Some(v) if v > 0.0 => v,
                    Some(v) => {
                        errors.push(format!("alert {name:?}: {key} must be > 0, got {v}"));
                        default
                    }
                    None => default,
                }
            };
            let fast_burn = factor("fast_burn", DEFAULT_FAST_BURN, &mut errors);
            let slow_burn = factor("slow_burn", DEFAULT_SLOW_BURN, &mut errors);
            Some(AlertKind::BurnRate {
                bad,
                total,
                objective,
                fast_burn,
                slow_burn,
            })
        }
        (false, false) => {
            errors.push(format!(
                "line {start}: alert {name:?} needs either metric/threshold or bad/total keys"
            ));
            None
        }
    };

    match (errors.is_empty(), kind) {
        (true, Some(kind)) => Ok(AlertRule {
            name,
            kind,
            fast_window_s,
            slow_window_s,
        }),
        _ => Err(errors),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prom::{Family, Kind, Sample, SampleValue};

    fn gauge_family(name: &str, v: f64) -> Family {
        Family {
            name: name.into(),
            help: "test".into(),
            kind: Kind::Gauge,
            samples: vec![Sample {
                labels: String::new(),
                value: SampleValue::Scalar(v),
                exemplars: Vec::new(),
            }],
        }
    }

    const GOOD: &str = r#"
# Latency SLO for ok traffic.
[[alert]]
name = "p99-latency"
metric = "lat{outcome=\"ok\"}:p99"
op = "gt"
threshold = 5000.0   # µs
fast_window_s = 10
slow_window_s = 60

[[alert]]
name = "shed-burn"
kind = "burn_rate"
bad = "shed:rate"
total = "reqs:rate"
objective = 0.999
"#;

    #[test]
    fn parses_threshold_and_burn_rate_rules() {
        let rules = parse_rules(GOOD).expect("good file parses");
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].name, "p99-latency");
        assert_eq!(rules[0].fast_window_s, 10);
        assert_eq!(
            rules[0].kind,
            AlertKind::Threshold {
                metric: "lat{outcome=\"ok\"}:p99".into(),
                op: Op::Gt,
                threshold: 5000.0,
            }
        );
        assert_eq!(rules[1].fast_window_s, DEFAULT_FAST_WINDOW_S);
        match &rules[1].kind {
            AlertKind::BurnRate {
                objective,
                fast_burn,
                slow_burn,
                ..
            } => {
                assert_eq!(*objective, 0.999);
                assert_eq!(*fast_burn, DEFAULT_FAST_BURN);
                assert_eq!(*slow_burn, DEFAULT_SLOW_BURN);
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn parser_reports_every_problem_with_line_numbers() {
        let bad = "\
top_key = 1

[[alert]]
name = \"a\"
metric = \"m\"
threshold = \"high\"
bogus_key = 1

[[alert]]
name = \"b\"
metric = \"m\"
threshold = 1.0

[[alert]]
name = \"b\"
metric = \"m\"
threshold = 2.0

[[misc]]
";
        let errs = parse_rules(bad).unwrap_err();
        let text = errs.join("\n");
        assert!(
            text.contains("line 1: `top_key` outside any [[alert]]"),
            "{text}"
        );
        assert!(
            text.contains("line 6: threshold must be a number"),
            "{text}"
        );
        assert!(text.contains("line 7: unknown key \"bogus_key\""), "{text}");
        assert!(text.contains("duplicate alert name \"b\""), "{text}");
        assert!(text.contains("line 19: unknown table"), "{text}");
    }

    #[test]
    fn parser_rejects_structural_mistakes() {
        assert!(parse_rules("[[alert]]\nname = \"x\"\n").is_err()); // no kind keys
        assert!(parse_rules("[[alert]]\nname = \"x\"\nmetric = \"m\"\nthreshold = 1\nbad = \"b\"\ntotal = \"t\"\nobjective = 0.9\n").is_err()); // mixed kinds
        assert!(parse_rules(
            "[[alert]]\nname = \"x\"\nmetric = \"m\"\nthreshold = 1\nfast_window_s = 600\nslow_window_s = 60\n"
        )
        .is_err()); // fast > slow
        assert!(parse_rules("[[alert]]\nname = \"x\"\nmetric = \"unterminated\n").is_err());
        // Empty file is fine: zero rules.
        assert_eq!(parse_rules("# nothing here\n").unwrap().len(), 0);
    }

    /// Drives a threshold rule through its whole lifecycle with a
    /// synthetic TSDB: 10 s fast / 60 s slow windows over a gauge.
    #[test]
    fn threshold_lifecycle_pending_firing_resolved() {
        let rules = parse_rules(
            "[[alert]]\nname = \"hot\"\nmetric = \"g\"\nthreshold = 100\n\
             fast_window_s = 10\nslow_window_s = 60\n",
        )
        .unwrap();
        let mut set = AlertSet::new(rules);
        let db = Tsdb::new();

        // Calm traffic: no transitions.
        for t in 0..60u64 {
            db.scrape_families_at_ms(&[gauge_family("g", 10.0)], t * 1_000);
        }
        assert!(set.evaluate_at_ms(&db, 59_000).is_empty());
        assert_eq!(set.statuses()[0].state, AlertState::Inactive);

        // Spike to 150: the fast (10 s) window mean crosses
        // immediately; the slow (60 s) window still averages in the
        // calm era (mean ≈ 33) → pending.
        for t in 60..70u64 {
            db.scrape_families_at_ms(&[gauge_family("g", 150.0)], t * 1_000);
        }
        let tr = set.evaluate_at_ms(&db, 69_000);
        assert_eq!(tr.len(), 1);
        assert_eq!(
            (tr[0].from, tr[0].to),
            (AlertState::Inactive, AlertState::Pending)
        );
        assert_eq!(set.firing(), 0);

        // Spike persists long enough for the slow window to cross →
        // firing.
        for t in 70..115u64 {
            db.scrape_families_at_ms(&[gauge_family("g", 150.0)], t * 1_000);
        }
        let tr = set.evaluate_at_ms(&db, 114_000);
        assert_eq!(tr.len(), 1);
        assert_eq!(
            (tr[0].from, tr[0].to),
            (AlertState::Pending, AlertState::Firing)
        );
        assert_eq!(set.firing(), 1);
        let st = &set.statuses()[0];
        assert!(st.fast_value.unwrap() > 100.0 && st.slow_value.unwrap() > 100.0);

        // Recovery: once the fast window drains the alert resolves —
        // and stays resolved (sticky) on later evaluations.
        for t in 115..130u64 {
            db.scrape_families_at_ms(&[gauge_family("g", 10.0)], t * 1_000);
        }
        let tr = set.evaluate_at_ms(&db, 129_000);
        assert_eq!(tr.len(), 1);
        assert_eq!(
            (tr[0].from, tr[0].to),
            (AlertState::Firing, AlertState::Resolved)
        );
        assert!(set.evaluate_at_ms(&db, 130_000).is_empty());
        assert_eq!(set.statuses()[0].state, AlertState::Resolved);
        assert_eq!(set.statuses()[0].since_ms, 129_000);
    }

    #[test]
    fn firing_persists_while_only_the_fast_window_violates() {
        // Once firing, slow-window recovery alone must not resolve.
        let rules = parse_rules(
            "[[alert]]\nname = \"hot\"\nmetric = \"g\"\nthreshold = 100\n\
             fast_window_s = 5\nslow_window_s = 20\n",
        )
        .unwrap();
        let mut set = AlertSet::new(rules);
        let db = Tsdb::new();
        for t in 0..25u64 {
            db.scrape_families_at_ms(&[gauge_family("g", 10_000.0)], t * 1_000);
        }
        set.evaluate_at_ms(&db, 24_000);
        assert_eq!(set.statuses()[0].state, AlertState::Firing);
        // Shape the next era so the slow (20 s) window recovers while
        // the fast (5 s) window still violates: 17 s of silence, then
        // 4 s of a 200-valued burst. At t = 45 s the slow window
        // (25..45) averages (17·0 + 4·200)/21 ≈ 38 < 100 while the
        // fast window (40..45) averages (2·0 + 4·200)/6 ≈ 133 > 100.
        for t in 25..42u64 {
            db.scrape_families_at_ms(&[gauge_family("g", 0.0)], t * 1_000);
        }
        for t in 42..46u64 {
            db.scrape_families_at_ms(&[gauge_family("g", 200.0)], t * 1_000);
        }
        let tr = set.evaluate_at_ms(&db, 45_000);
        assert!(tr.is_empty(), "{tr:?}");
        assert_eq!(set.statuses()[0].state, AlertState::Firing);
        // Only once the fast window drains too does it resolve.
        for t in 46..52u64 {
            db.scrape_families_at_ms(&[gauge_family("g", 0.0)], t * 1_000);
        }
        let tr = set.evaluate_at_ms(&db, 51_000);
        assert_eq!(tr[0].to, AlertState::Resolved);
    }

    #[test]
    fn burn_rate_math_and_missing_data() {
        let rules = parse_rules(
            "[[alert]]\nname = \"burn\"\nbad = \"bad:rate\"\ntotal = \"total:rate\"\n\
             objective = 0.99\nfast_burn = 10\nslow_burn = 5\n\
             fast_window_s = 10\nslow_window_s = 30\n",
        )
        .unwrap();
        let mut set = AlertSet::new(rules);
        let db = Tsdb::new();
        // No data at all: never fires.
        assert!(set.evaluate_at_ms(&db, 1_000).is_empty());
        assert_eq!(set.statuses()[0].fast_value, None);

        // 20 % bad over a 1 % budget = burn 20 → above both factors.
        for t in 0..40u64 {
            db.scrape_families_at_ms(
                &[
                    gauge_family("bad:rate", 20.0),
                    gauge_family("total:rate", 100.0),
                ],
                t * 1_000,
            );
        }
        let tr = set.evaluate_at_ms(&db, 39_000);
        assert_eq!(tr[0].to, AlertState::Firing);
        let st = &set.statuses()[0];
        assert!((st.fast_value.unwrap() - 20.0).abs() < 1e-9);
        assert!((st.slow_value.unwrap() - 20.0).abs() < 1e-9);
    }
}
