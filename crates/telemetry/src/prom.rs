//! Prometheus text exposition (version 0.0.4): renderer and lint.
//!
//! [`render`] turns the whole registry into the canonical exposition
//! format — `# HELP` / `# TYPE` per family, one sample per line,
//! label values escaped, histograms as cumulative `_bucket{le=...}`
//! series with `+Inf`, `_sum` and `_count` — which is what
//! `accordion-served` answers on `GET /metrics`. [`lint`] parses an
//! exposition back and checks its structural invariants; it backs the
//! `repro validate-metrics` subcommand, the conformance tests, and
//! the `scripts/check.sh` metrics gate, so the renderer cannot drift
//! from the format without a test noticing.
//!
//! Families are rendered in sorted-name order and label sets in
//! canonical (key-sorted) order, so the exposition is deterministic
//! for a fixed registry state.
//!
//! Naming: dotted registry names flatten to underscores
//! (`served.http.requests` → `served_http_requests`), counters gain
//! the conventional `_total` suffix, spans surface as two counters
//! (`<name>_calls_total`, `<name>_seconds_total`), and rolling
//! histograms render like plain histograms but over their time window
//! (the window length is stated in the `# HELP` line).

use crate::registry::{HistogramSnapshot, Registry};
use std::fmt::Write as _;

/// What a family's samples mean (its `# TYPE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonically increasing; rendered with a `_total` suffix.
    Counter,
    /// Last-write-wins scalar.
    Gauge,
    /// Bucketed distribution (`_bucket`/`_sum`/`_count`).
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One sample of a family: a canonical label body (possibly empty)
/// plus its value.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Canonical rendered label body, e.g. `outcome="ok"`; empty for
    /// unlabeled samples.
    pub labels: String,
    /// The sample value.
    pub value: SampleValue,
    /// Per-bucket exemplars for histogram samples (index `i` decorates
    /// the `i`-th bucket line, the last entry the `+Inf` bucket).
    /// Empty for scalar samples and histograms without exemplars.
    pub exemplars: Vec<Option<Exemplar>>,
}

/// An OpenMetrics exemplar: one recent observation annotated with
/// trace-correlation labels, rendered after a bucket line as
/// `... # {labels} value`. The serving path stores the request id and
/// flight-recorder track of a recent observation per latency bucket,
/// so a tail-latency spike links directly to the trace of a request
/// that caused it.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// Canonical rendered label body, e.g.
    /// `request_id="42",track="req00000042"`.
    pub labels: String,
    /// The exemplared observation value.
    pub value: f64,
}

/// Escapes one label *value* the Prometheus way (`\\`, `\"`, `\n`).
/// Use when building exemplar or label bodies from runtime strings.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// A sample's payload.
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// A counter or gauge reading.
    Scalar(f64),
    /// A histogram distribution (rendered as bucket/sum/count series).
    Hist(HistogramSnapshot),
}

/// A metric family ready to render: every sample shares the name,
/// kind and help text.
#[derive(Debug, Clone)]
pub struct Family {
    /// Exposition name (already flattened, without the counter
    /// `_total` suffix — the renderer adds it).
    pub name: String,
    /// `# HELP` body.
    pub help: String,
    /// `# TYPE`.
    pub kind: Kind,
    /// Samples in canonical label order.
    pub samples: Vec<Sample>,
}

/// Flattens a dotted metric name into a valid Prometheus metric name:
/// `.` and `-` become `_`, any other invalid character becomes `_`,
/// and a leading digit gains a `_` prefix.
pub fn flatten_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a `# HELP` body: backslashes and newlines only, per the
/// exposition format.
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Formats an exposition sample value. Finite floats use Rust's
/// shortest roundtrip formatting, which Prometheus accepts.
fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

fn sample_line(out: &mut String, name: &str, labels: &str, extra: Option<&str>, v: f64) {
    sample_line_ex(out, name, labels, extra, v, None);
}

fn sample_line_ex(
    out: &mut String,
    name: &str,
    labels: &str,
    extra: Option<&str>,
    v: f64,
    exemplar: Option<&Exemplar>,
) {
    out.push_str(name);
    match (labels.is_empty(), extra) {
        (true, None) => {}
        (false, None) => {
            let _ = write!(out, "{{{labels}}}");
        }
        (true, Some(e)) => {
            let _ = write!(out, "{{{e}}}");
        }
        (false, Some(e)) => {
            let _ = write!(out, "{{{labels},{e}}}");
        }
    }
    let _ = write!(out, " {}", fmt_value(v));
    if let Some(ex) = exemplar {
        let _ = write!(out, " # {{{}}} {}", ex.labels, fmt_value(ex.value));
    }
    out.push('\n');
}

/// Renders gathered families as one exposition document. Families are
/// sorted by rendered name; a trailing newline terminates the body.
pub fn render_families(families: &[Family]) -> String {
    let mut sorted: Vec<&Family> = families.iter().collect();
    sorted.sort_by(|a, b| {
        a.name
            .cmp(&b.name)
            .then(rendered_name(a).cmp(&rendered_name(b)))
    });
    let mut out = String::new();
    for fam in sorted {
        let name = rendered_name(fam);
        let _ = writeln!(out, "# HELP {name} {}", escape_help(&fam.help));
        let _ = writeln!(out, "# TYPE {name} {}", fam.kind.as_str());
        for s in &fam.samples {
            match &s.value {
                SampleValue::Scalar(v) => sample_line(&mut out, &name, &s.labels, None, *v),
                SampleValue::Hist(h) => {
                    let bucket = format!("{name}_bucket");
                    let mut cum = 0u64;
                    for (i, (edge, c)) in h.bounds.iter().zip(&h.buckets).enumerate() {
                        cum += c;
                        let le = format!("le=\"{}\"", fmt_value(*edge));
                        sample_line_ex(
                            &mut out,
                            &bucket,
                            &s.labels,
                            Some(&le),
                            cum as f64,
                            s.exemplars.get(i).and_then(Option::as_ref),
                        );
                    }
                    sample_line_ex(
                        &mut out,
                        &bucket,
                        &s.labels,
                        Some("le=\"+Inf\""),
                        h.count as f64,
                        s.exemplars.get(h.bounds.len()).and_then(Option::as_ref),
                    );
                    sample_line(&mut out, &format!("{name}_sum"), &s.labels, None, h.sum);
                    sample_line(
                        &mut out,
                        &format!("{name}_count"),
                        &s.labels,
                        None,
                        h.count as f64,
                    );
                }
            }
        }
    }
    out
}

/// The family's on-the-wire name (counters carry `_total`).
pub fn rendered_name(fam: &Family) -> String {
    if fam.kind == Kind::Counter && !fam.name.ends_with("_total") {
        format!("{}_total", fam.name)
    } else {
        fam.name.clone()
    }
}

/// Renders the registry as a Prometheus exposition document.
pub fn render(registry: &Registry) -> String {
    render_families(&registry.gather())
}

/// Summary of a successfully linted exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Metric families declared with `# TYPE`.
    pub families: usize,
    /// Total sample lines.
    pub samples: usize,
}

/// Validates exposition text against the format's structural rules:
///
/// * every sample belongs to a family declared by a preceding
///   `# TYPE` line (histogram samples may use the `_bucket` / `_sum`
///   / `_count` suffixes of a histogram family);
/// * no family is declared twice, and every `# TYPE` has a `# HELP`;
/// * metric and label names are well-formed, label values are quoted
///   with balanced, correctly escaped quotes;
/// * histogram buckets are cumulative (non-decreasing) in `le` order,
///   end with `le="+Inf"`, and the `+Inf` bucket equals `_count`;
/// * OpenMetrics exemplar suffixes (`# {labels} value [timestamp]`)
///   appear only on `_bucket` lines, with well-formed, correctly
///   escaped labels and a parseable value.
///
/// # Errors
///
/// Returns every violation found, one message per offense.
pub fn lint(text: &str) -> Result<LintReport, Vec<String>> {
    let mut errors: Vec<String> = Vec::new();
    // family -> kind
    let mut types: std::collections::BTreeMap<String, String> = Default::default();
    let mut helps: std::collections::BTreeSet<String> = Default::default();
    // (histogram family, label body without le) -> (le, cumulative) series
    let mut buckets: std::collections::BTreeMap<(String, String), Vec<(f64, f64)>> =
        Default::default();
    let mut counts: std::collections::BTreeMap<(String, String), f64> = Default::default();
    let mut samples = 0usize;

    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.splitn(3, ' ');
            match words.next() {
                Some("HELP") => {
                    if let Some(name) = words.next() {
                        helps.insert(name.to_string());
                    } else {
                        errors.push(format!("line {ln}: HELP without a metric name"));
                    }
                }
                Some("TYPE") => {
                    let (name, kind) = (words.next(), words.next());
                    match (name, kind) {
                        (Some(n), Some(k))
                            if ["counter", "gauge", "histogram", "summary", "untyped"]
                                .contains(&k) =>
                        {
                            if types.insert(n.to_string(), k.to_string()).is_some() {
                                errors.push(format!("line {ln}: duplicate TYPE for {n}"));
                            }
                            if !helps.contains(n) {
                                errors.push(format!("line {ln}: TYPE {n} has no preceding HELP"));
                            }
                        }
                        _ => errors.push(format!("line {ln}: malformed TYPE line {line:?}")),
                    }
                }
                _ => {} // other comments are legal and ignored
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let Some((name, label_body, value, trailer)) = split_sample(line) else {
            errors.push(format!("line {ln}: malformed sample line {line:?}"));
            continue;
        };
        samples += 1;
        if !valid_metric_name(name) {
            errors.push(format!("line {ln}: invalid metric name {name:?}"));
        }
        let labels = match parse_labels(label_body) {
            Ok(l) => l,
            Err(e) => {
                errors.push(format!("line {ln}: {e}"));
                continue;
            }
        };
        let Ok(value) = parse_value(value) else {
            errors.push(format!("line {ln}: unparseable value {value:?}"));
            continue;
        };
        // Resolve the family this sample belongs to.
        let family = resolve_family(name, &types);
        let Some((family, suffix)) = family else {
            errors.push(format!("line {ln}: sample {name} has no preceding TYPE"));
            continue;
        };
        if !trailer.is_empty() {
            if let Some(ex) = trailer.strip_prefix('#') {
                if suffix != "_bucket" {
                    errors.push(format!("line {ln}: exemplar on a non-bucket sample {name}"));
                } else if let Err(e) = check_exemplar(ex.trim_start()) {
                    errors.push(format!("line {ln}: {e}"));
                }
            } else if trailer.split(' ').count() != 1 || parse_value(trailer).is_err() {
                errors.push(format!("line {ln}: malformed sample trailer {trailer:?}"));
            }
        }
        if suffix == "_bucket" {
            let le = labels.iter().find(|(k, _)| k == "le");
            let Some((_, le)) = le else {
                errors.push(format!("line {ln}: histogram bucket without an le label"));
                continue;
            };
            let le_value = match le.as_str() {
                "+Inf" => f64::INFINITY,
                other => match other.parse() {
                    Ok(v) => v,
                    Err(_) => {
                        errors.push(format!("line {ln}: bad le value {le:?}"));
                        continue;
                    }
                },
            };
            let rest: Vec<String> = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            buckets
                .entry((family.clone(), rest.join(",")))
                .or_default()
                .push((le_value, value));
        } else if suffix == "_count" {
            let rest: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            counts.insert((family.clone(), rest.join(",")), value);
        }
    }

    for ((family, labels), series) in &buckets {
        let mut last_le = f64::NEG_INFINITY;
        let mut last_cum = -1.0;
        for &(le, cum) in series {
            if le <= last_le {
                errors.push(format!(
                    "{family}{{{labels}}}: le values not increasing at le={le}"
                ));
            }
            if cum < last_cum {
                errors.push(format!(
                    "{family}{{{labels}}}: bucket counts decrease at le={le}"
                ));
            }
            last_le = le;
            last_cum = cum;
        }
        match series.last() {
            Some(&(le, cum)) if le == f64::INFINITY => {
                if let Some(&count) = counts.get(&(family.clone(), labels.clone())) {
                    if cum != count {
                        errors.push(format!(
                            "{family}{{{labels}}}: +Inf bucket {cum} != _count {count}"
                        ));
                    }
                } else {
                    errors.push(format!("{family}{{{labels}}}: histogram missing _count"));
                }
            }
            _ => errors.push(format!("{family}{{{labels}}}: missing le=\"+Inf\" bucket")),
        }
    }

    if errors.is_empty() {
        Ok(LintReport {
            families: types.len(),
            samples,
        })
    } else {
        Err(errors)
    }
}

/// Splits `name{labels} value [trailer]` into its parts; the label
/// block is optional and the trailer (a plain timestamp or an
/// OpenMetrics `# {...} value` exemplar) may be empty. Returns `None`
/// on structural nonsense.
fn split_sample(line: &str) -> Option<(&str, &str, &str, &str)> {
    // A `{` only opens the label block when it is attached to the
    // metric name (an exemplar trailer contains its own `{`).
    let label_open = match line.find('{') {
        Some(open) if !line[..open].contains(' ') => Some(open),
        _ => None,
    };
    let (head, tail) = match label_open {
        Some(open) => {
            // The closing brace must be found respecting quoted values.
            let rest = &line[open + 1..];
            let close = find_label_end(rest)?;
            (
                (&line[..open], &rest[..close]),
                rest[close + 1..].trim_start(),
            )
        }
        None => {
            let mut parts = line.splitn(2, ' ');
            let name = parts.next()?;
            ((name, ""), parts.next()?.trim_start())
        }
    };
    let value = tail.split(' ').next()?;
    if value.is_empty() {
        return None;
    }
    let trailer = tail[value.len()..].trim_start();
    Some((head.0, head.1, value, trailer))
}

/// Validates the body of an exemplar trailer (after the `#`):
/// `{labels} value [timestamp]` with Prometheus-escaped label values.
fn check_exemplar(body: &str) -> Result<(), String> {
    let rest = body
        .strip_prefix('{')
        .ok_or_else(|| format!("exemplar without a label block: {body:?}"))?;
    let close =
        find_label_end(rest).ok_or_else(|| format!("unterminated exemplar labels: {body:?}"))?;
    parse_labels(&rest[..close]).map_err(|e| format!("exemplar labels: {e}"))?;
    let mut tokens = rest[close + 1..].split_whitespace();
    let value = tokens
        .next()
        .ok_or_else(|| format!("exemplar without a value: {body:?}"))?;
    parse_value(value).map_err(|()| format!("unparseable exemplar value {value:?}"))?;
    if let Some(ts) = tokens.next() {
        ts.parse::<f64>()
            .map_err(|_| format!("unparseable exemplar timestamp {ts:?}"))?;
    }
    if tokens.next().is_some() {
        return Err(format!("trailing tokens after exemplar: {body:?}"));
    }
    Ok(())
}

/// Index of the `}` closing a label body, skipping quoted strings.
fn find_label_end(s: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses a label body into (name, unescaped value) pairs.
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = body.trim_end_matches(',');
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in {body:?}"))?;
        let name = &rest[..eq];
        if !valid_metric_name(name) {
            return Err(format!("invalid label name {name:?}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("label value for {name} not quoted"));
        }
        let mut value = String::new();
        let mut escaped = false;
        let mut end = None;
        for (i, c) in after[1..].char_indices() {
            if escaped {
                match c {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    other => return Err(format!("bad escape \\{other} in label {name}")),
                }
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    end = Some(i);
                    break;
                }
                other => value.push(other),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value for {name}"))?;
        out.push((name.to_string(), value));
        rest = after[1 + end + 1..].trim_start_matches(',');
    }
    Ok(out)
}

fn parse_value(v: &str) -> Result<f64, ()> {
    match v {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other.parse().map_err(|_| ()),
    }
}

/// Resolves a sample name to its declared family: an exact TYPE match,
/// or a histogram family via the `_bucket`/`_sum`/`_count` suffixes.
/// Returns `(family, suffix)`; the suffix is empty for exact matches.
fn resolve_family(
    name: &str,
    types: &std::collections::BTreeMap<String, String>,
) -> Option<(String, &'static str)> {
    if types.contains_key(name) {
        return Some((name.to_string(), ""));
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if types.get(stem).map(String::as_str) == Some("histogram")
                || types.get(stem).map(String::as_str) == Some("summary")
            {
                return Some((stem.to_string(), suffix));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_name_sanitizes() {
        assert_eq!(
            flatten_name("served.http.latency-us"),
            "served_http_latency_us"
        );
        assert_eq!(flatten_name("9lives"), "_9lives");
        assert_eq!(flatten_name("a:b"), "a:b");
        assert_eq!(flatten_name("weird name!"), "weird_name_");
    }

    #[test]
    fn renderer_emits_help_type_and_total_suffix() {
        let fam = Family {
            name: "demo_requests".into(),
            help: "demo\nmultiline \\ help".into(),
            kind: Kind::Counter,
            samples: vec![Sample {
                labels: "outcome=\"ok\"".into(),
                value: SampleValue::Scalar(3.0),
                exemplars: Vec::new(),
            }],
        };
        let text = render_families(&[fam]);
        assert!(text.contains("# HELP demo_requests_total demo\\nmultiline \\\\ help"));
        assert!(text.contains("# TYPE demo_requests_total counter"));
        assert!(text.contains("demo_requests_total{outcome=\"ok\"} 3"));
        lint(&text).expect("rendered exposition lints clean");
    }

    #[test]
    fn histogram_rendering_is_cumulative_with_inf() {
        let fam = Family {
            name: "demo_latency".into(),
            help: "latency".into(),
            kind: Kind::Histogram,
            samples: vec![Sample {
                labels: String::new(),
                value: SampleValue::Hist(HistogramSnapshot {
                    bounds: vec![1.0, 2.0],
                    buckets: vec![3, 2, 1],
                    count: 6,
                    sum: 7.5,
                    min: Some(0.5),
                    max: Some(9.0),
                }),
                exemplars: Vec::new(),
            }],
        };
        let text = render_families(&[fam]);
        assert!(text.contains("demo_latency_bucket{le=\"1\"} 3"));
        assert!(text.contains("demo_latency_bucket{le=\"2\"} 5"));
        assert!(text.contains("demo_latency_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("demo_latency_sum 7.5"));
        assert!(text.contains("demo_latency_count 6"));
        lint(&text).expect("histogram exposition lints clean");
    }

    #[test]
    fn lint_rejects_structural_violations() {
        // Sample without TYPE.
        assert!(lint("orphan_metric 1\n").is_err());
        // Duplicate TYPE.
        let dup = "# HELP x h\n# TYPE x counter\n# TYPE x counter\nx 1\n";
        assert!(lint(dup).is_err());
        // Non-cumulative buckets.
        let bad = concat!(
            "# HELP h x\n# TYPE h histogram\n",
            "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n",
            "h_sum 1\nh_count 5\n"
        );
        let errs = lint(bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("decrease")), "{errs:?}");
        // Missing +Inf.
        let noinf = concat!(
            "# HELP h x\n# TYPE h histogram\n",
            "h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n"
        );
        let errs = lint(noinf).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("+Inf")), "{errs:?}");
        // +Inf != count.
        let mismatch = concat!(
            "# HELP h x\n# TYPE h histogram\n",
            "h_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n"
        );
        let errs = lint(mismatch).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("_count")), "{errs:?}");
    }

    #[test]
    fn exemplars_render_and_lint() {
        let fam = Family {
            name: "demo_ex".into(),
            help: "exemplared latency".into(),
            kind: Kind::Histogram,
            samples: vec![Sample {
                labels: "outcome=\"ok\"".into(),
                value: SampleValue::Hist(HistogramSnapshot {
                    bounds: vec![1.0, 2.0],
                    buckets: vec![3, 2, 1],
                    count: 6,
                    sum: 7.5,
                    min: Some(0.5),
                    max: Some(9.0),
                }),
                exemplars: vec![
                    Some(Exemplar {
                        labels: "request_id=\"7\",track=\"req00000007\"".into(),
                        value: 0.9,
                    }),
                    None,
                    Some(Exemplar {
                        labels: "request_id=\"9\",track=\"req00000009\"".into(),
                        value: 9.0,
                    }),
                ],
            }],
        };
        let text = render_families(&[fam]);
        assert!(
            text.contains(
                "demo_ex_bucket{outcome=\"ok\",le=\"1\"} 3 \
                 # {request_id=\"7\",track=\"req00000007\"} 0.9"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "demo_ex_bucket{outcome=\"ok\",le=\"+Inf\"} 6 \
                 # {request_id=\"9\",track=\"req00000009\"} 9"
            ),
            "{text}"
        );
        // The le="2" bucket has no exemplar.
        assert!(text.contains("demo_ex_bucket{outcome=\"ok\",le=\"2\"} 5\n"));
        lint(&text).expect("exemplared exposition lints clean");
    }

    #[test]
    fn lint_validates_exemplar_structure() {
        let head = "# HELP h x\n# TYPE h histogram\n";
        let base = "h_bucket{le=\"+Inf\"} 1 # {t=\"a\"} 0.5\nh_sum 1\nh_count 1\n";
        lint(&format!("{head}{base}")).expect("well-formed exemplar");
        // Exemplar with timestamp is legal.
        let ts = "h_bucket{le=\"+Inf\"} 1 # {t=\"a\"} 0.5 1712.5\nh_sum 1\nh_count 1\n";
        lint(&format!("{head}{ts}")).expect("exemplar with timestamp");
        // Exemplar on a non-bucket sample is rejected.
        let on_sum = "h_bucket{le=\"+Inf\"} 1\nh_sum 1 # {t=\"a\"} 0.5\nh_count 1\n";
        let errs = lint(&format!("{head}{on_sum}")).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("non-bucket")), "{errs:?}");
        // Unterminated exemplar labels.
        let bad = "h_bucket{le=\"+Inf\"} 1 # {t=\"a} 0.5\nh_sum 1\nh_count 1\n";
        assert!(lint(&format!("{head}{bad}")).is_err());
        // Missing exemplar value.
        let noval = "h_bucket{le=\"+Inf\"} 1 # {t=\"a\"}\nh_sum 1\nh_count 1\n";
        let errs = lint(&format!("{head}{noval}")).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("value")), "{errs:?}");
    }

    #[test]
    fn escape_label_value_round_trips_through_lint() {
        let hostile = "a\"b\\c\nd";
        let escaped = escape_label_value(hostile);
        assert_eq!(escaped, "a\\\"b\\\\c\\nd");
        let text = format!(
            "# HELP h x\n# TYPE h histogram\n\
             h_bucket{{le=\"+Inf\"}} 1 # {{track=\"{escaped}\"}} 2\nh_sum 1\nh_count 1\n"
        );
        lint(&text).expect("escaped exemplar labels lint clean");
        // The raw (unescaped) form must be rejected: it embeds a bare
        // quote and a literal newline inside the label block.
        let raw = format!(
            "# HELP h x\n# TYPE h histogram\n\
             h_bucket{{le=\"+Inf\"}} 1 # {{track=\"{hostile}\"}} 2\nh_sum 1\nh_count 1\n"
        );
        assert!(lint(&raw).is_err());
    }

    #[test]
    fn lint_unescapes_label_values() {
        let text = concat!(
            "# HELP m x\n# TYPE m gauge\n",
            "m{path=\"/a\\\"b\\\\c\\nd\"} 1\n"
        );
        lint(text).expect("escaped label value parses");
        // Unterminated quote is an error.
        assert!(lint("# HELP m x\n# TYPE m gauge\nm{path=\"oops} 1\n").is_err());
    }
}
