//! Per-run provenance manifests.
//!
//! A [`RunManifest`] collects everything needed to re-run and audit
//! one invocation of a binary — RNG seeds, population parameters,
//! per-artifact wall times, a git-describe-style version string, and
//! a final dump of every registry metric — and writes it as a single
//! pretty-printed JSON document (`run_manifest.json` by convention).

use std::path::Path;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::json::Json;

/// Schema identifier stamped into every manifest, bumped whenever the
/// layout changes incompatibly.
pub const MANIFEST_SCHEMA: &str = "accordion.run-manifest/1";

/// Accumulates provenance for one run.
#[derive(Debug)]
pub struct RunManifest {
    tool: String,
    started: Instant,
    started_unix_ms: u128,
    argv: Vec<String>,
    seeds: Vec<(String, u64)>,
    params: Vec<(String, Json)>,
    artifacts: Vec<ArtifactRecord>,
    extra: Vec<(String, Json)>,
}

/// Wall-time record of one generated artifact.
#[derive(Debug, Clone)]
pub struct ArtifactRecord {
    /// Artifact id (e.g. `fig5b`).
    pub id: String,
    /// Wall-clock time to generate it.
    pub elapsed: Duration,
    /// Size of the rendered report in bytes.
    pub report_bytes: usize,
}

impl RunManifest {
    /// Starts a manifest for `tool`, capturing the command line and
    /// start time.
    pub fn new(tool: &str) -> Self {
        Self {
            tool: tool.to_string(),
            started: Instant::now(),
            started_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis())
                .unwrap_or(0),
            argv: std::env::args().collect(),
            seeds: Vec::new(),
            params: Vec::new(),
            artifacts: Vec::new(),
            extra: Vec::new(),
        }
    }

    /// Records a named RNG seed.
    pub fn record_seed(&mut self, name: &str, seed: u64) {
        self.seeds.push((name.to_string(), seed));
    }

    /// Records a named run parameter.
    pub fn record_param(&mut self, name: &str, value: Json) {
        self.params.push((name.to_string(), value));
    }

    /// Records one generated artifact.
    pub fn record_artifact(&mut self, id: &str, elapsed: Duration, report_bytes: usize) {
        self.artifacts.push(ArtifactRecord {
            id: id.to_string(),
            elapsed,
            report_bytes,
        });
    }

    /// Attaches an arbitrary extra top-level entry.
    pub fn set(&mut self, key: &str, value: Json) {
        self.extra.push((key.to_string(), value));
    }

    /// Renders the manifest, appending the current global metrics
    /// snapshot (the "final metric dump").
    pub fn to_json(&self) -> Json {
        let artifacts = self
            .artifacts
            .iter()
            .map(|a| {
                Json::obj(vec![
                    ("id", Json::str(&a.id)),
                    ("elapsed_ms", Json::Num(a.elapsed.as_secs_f64() * 1e3)),
                    ("report_bytes", Json::Num(a.report_bytes as f64)),
                ])
            })
            .collect();
        let mut pairs = vec![
            ("schema".to_string(), Json::str(MANIFEST_SCHEMA)),
            ("tool".to_string(), Json::str(&self.tool)),
            ("version".to_string(), Json::str(version_string())),
            (
                "started_unix_ms".to_string(),
                Json::Num(self.started_unix_ms as f64),
            ),
            (
                "elapsed_ms".to_string(),
                Json::Num(self.started.elapsed().as_secs_f64() * 1e3),
            ),
            (
                "argv".to_string(),
                Json::Arr(self.argv.iter().map(Json::str).collect()),
            ),
            (
                "seeds".to_string(),
                Json::Obj(
                    self.seeds
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "parameters".to_string(),
                Json::Obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                ),
            ),
            ("artifacts".to_string(), Json::Arr(artifacts)),
        ];
        for (k, v) in &self.extra {
            pairs.push((k.clone(), v.clone()));
        }
        pairs.push((
            "metrics".to_string(),
            crate::registry::global().snapshot_json(),
        ));
        Json::Obj(pairs)
    }

    /// Writes the manifest (pretty-printed) to `path`, creating parent
    /// directories as needed.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json().render_pretty())
    }
}

/// A git-describe-style version: the crate version plus, when a `.git`
/// directory is discoverable from the current directory upward, the
/// short commit hash of `HEAD` (e.g. `0.1.0+g8b7c30d`).
pub fn version_string() -> String {
    let base = env!("CARGO_PKG_VERSION");
    match git_head_short() {
        Some(short) => format!("{base}+g{short}"),
        None => base.to_string(),
    }
}

fn git_head_short() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
            let head = head.trim();
            let hash = if let Some(refname) = head.strip_prefix("ref: ") {
                match std::fs::read_to_string(git.join(refname)) {
                    Ok(h) => h.trim().to_string(),
                    // Packed refs fallback.
                    Err(_) => {
                        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
                        packed
                            .lines()
                            .find(|l| l.ends_with(refname))
                            .and_then(|l| l.split_whitespace().next())?
                            .to_string()
                    }
                }
            } else {
                head.to_string()
            };
            if hash.len() >= 7 && hash.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Some(hash[..7].to_string());
            }
            return None;
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn manifest_renders_and_parses() {
        let mut m = RunManifest::new("test-tool");
        m.record_seed("population", 2014);
        m.record_param("chips", Json::Num(5.0));
        m.record_artifact("fig5b", Duration::from_millis(12), 345);
        m.set("note", Json::str("unit test"));
        let rendered = m.to_json().render_pretty();
        let parsed = json::parse(&rendered).expect("manifest is valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some(MANIFEST_SCHEMA)
        );
        assert_eq!(parsed.get("tool").and_then(Json::as_str), Some("test-tool"));
        assert_eq!(
            parsed
                .get("seeds")
                .and_then(|s| s.get("population"))
                .and_then(Json::as_f64),
            Some(2014.0)
        );
        assert!(parsed.get("metrics").is_some());
        let artifacts = match parsed.get("artifacts") {
            Some(Json::Arr(a)) => a,
            other => panic!("artifacts not an array: {other:?}"),
        };
        assert_eq!(artifacts[0].get("id").and_then(Json::as_str), Some("fig5b"));
    }

    #[test]
    fn version_string_has_base_version() {
        let v = version_string();
        assert!(v.starts_with(env!("CARGO_PKG_VERSION")), "{v}");
    }

    #[test]
    fn manifest_writes_to_disk() {
        let dir = std::env::temp_dir().join("accordion-telemetry-test");
        let path = dir.join("run_manifest.json");
        let m = RunManifest::new("writer-test");
        m.write(&path).expect("write manifest");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(json::parse(&text).is_ok());
        let _ = std::fs::remove_file(&path);
    }
}
