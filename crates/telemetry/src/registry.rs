//! Global, thread-safe metrics registry: counters, gauges,
//! fixed-bucket histograms, and per-span wall-clock accounting.
//!
//! Handles are `&'static` references to leaked atomics, so the hot
//! path — `counter!("x").inc()` — is a single relaxed `fetch_add`
//! with no locking; the registry lock is only taken on first lookup
//! per call-site (the `counter!`/`gauge!`/`histogram!` macros cache
//! the handle in a `OnceLock`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::Json;
use crate::rolling::{RollingHistogram, DEFAULT_SLICES};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram of `f64` observations.
///
/// `bounds` are the inclusive upper edges of the first `bounds.len()`
/// buckets; one final overflow bucket catches everything above the
/// last bound, so `record` never drops an observation.
#[derive(Debug)]
pub struct HistogramMetric {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// Point-in-time view of a [`HistogramMetric`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Inclusive upper edges of the finite buckets.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1` entries; last = overflow).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (`None` when empty).
    pub min: Option<f64>,
    /// Largest observation (`None` when empty).
    pub max: Option<f64>,
}

impl HistogramMetric {
    /// Creates a standalone (unregistered) histogram with the given
    /// inclusive upper bucket edges.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, |s| s + v);
        atomic_f64_update(&self.min_bits, |m| m.min(v));
        atomic_f64_update(&self.max_bits, |m| m.max(v));
    }

    /// Point-in-time snapshot. Bucket counts are read without a global
    /// lock, so a concurrent `record` may be partially visible; totals
    /// are consistent once writers quiesce.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: (count > 0).then(|| f64::from_bits(self.min_bits.load(Ordering::Relaxed))),
            max: (count > 0).then(|| f64::from_bits(self.max_bits.load(Ordering::Relaxed))),
        }
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) estimated from bucket counts:
    /// the upper edge of the bucket containing the `q`-th observation
    /// (clamped to the observed max; `min`/`max` are exact). Returns
    /// `None` when the histogram is empty.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        self.snapshot().percentile(q)
    }
}

impl HistogramSnapshot {
    /// See [`HistogramMetric::percentile`].
    pub fn percentile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile in [0,1]");
        if self.count == 0 {
            return None;
        }
        let (min, max) = (self.min.expect("non-empty"), self.max.expect("non-empty"));
        if q == 0.0 {
            return Some(min);
        }
        // Rank of the target observation, 1-based.
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let edge = self.bounds.get(i).copied().unwrap_or(max);
                return Some(edge.clamp(min, max));
            }
        }
        Some(max)
    }

    /// Mean of all observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

fn atomic_f64_update(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut current = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(current)).to_bits();
        match bits.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// Wall-clock accounting for one span name.
#[derive(Debug, Default)]
pub struct SpanStats {
    calls: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStats {
    /// Records one completed span.
    pub fn record_ns(&self, elapsed_ns: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(elapsed_ns, Ordering::Relaxed);
    }

    /// Number of completed spans.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Total nanoseconds across completed spans.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Longest single span in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }
}

/// Point-in-time copy of one span's accounting (see
/// [`Registry::span_snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Dotted span name.
    pub name: String,
    /// Number of completed spans.
    pub calls: u64,
    /// Total nanoseconds across completed spans.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

/// Geometric bucket bounds `start, start·factor, …` (`n` edges) for
/// histograms over quantities spanning orders of magnitude (latency
/// in ns, makespans in cycles).
pub fn exponential_bounds(start: f64, factor: f64, n: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && n > 0, "bad bucket spec");
    let mut bounds = Vec::with_capacity(n);
    let mut edge = start;
    for _ in 0..n {
        bounds.push(edge);
        edge *= factor;
    }
    bounds
}

/// Canonical label rendering: sorted by key, values escaped the
/// Prometheus way (`\\`, `\"`, `\n`). The empty string means "no
/// labels". Keys are assumed to be valid label names (the callers are
/// code, not user input).
fn label_key(labels: &[(&str, &str)]) -> String {
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let mut out = String::new();
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                other => out.push(other),
            }
        }
        out.push('"');
    }
    out
}

#[derive(Default)]
struct State {
    counters: BTreeMap<String, &'static Counter>,
    gauges: BTreeMap<String, &'static Gauge>,
    histograms: BTreeMap<String, &'static HistogramMetric>,
    spans: BTreeMap<String, &'static SpanStats>,
    /// Family name → help text for the Prometheus exposition.
    help: BTreeMap<String, String>,
    /// Family name → canonical label set → counter.
    labeled_counters: BTreeMap<String, BTreeMap<String, &'static Counter>>,
    /// Family name → canonical label set → gauge.
    labeled_gauges: BTreeMap<String, BTreeMap<String, &'static Gauge>>,
    /// Family name → canonical label set → rolling histogram.
    rolling: BTreeMap<String, BTreeMap<String, &'static RollingHistogram>>,
}

/// The process-wide metric namespace.
pub struct Registry {
    state: Mutex<State>,
}

/// The global registry.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        state: Mutex::new(State::default()),
    })
}

impl Registry {
    /// Finds or creates the counter `name`.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut state = self.state.lock().expect("registry lock");
        if let Some(c) = state.counters.get(name) {
            return c;
        }
        let leaked: &'static Counter = Box::leak(Box::default());
        state.counters.insert(name.to_string(), leaked);
        leaked
    }

    /// Finds or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut state = self.state.lock().expect("registry lock");
        if let Some(g) = state.gauges.get(name) {
            return g;
        }
        let leaked: &'static Gauge = Box::leak(Box::default());
        state.gauges.insert(name.to_string(), leaked);
        leaked
    }

    /// Finds or creates the histogram `name`. The first registration
    /// fixes the bucket bounds; later callers receive the existing
    /// histogram regardless of the bounds they pass.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> &'static HistogramMetric {
        let mut state = self.state.lock().expect("registry lock");
        if let Some(h) = state.histograms.get(name) {
            return h;
        }
        let leaked: &'static HistogramMetric = Box::leak(Box::new(HistogramMetric::new(bounds)));
        state.histograms.insert(name.to_string(), leaked);
        leaked
    }

    /// Finds or creates span accounting for `name`.
    pub fn span_stats(&self, name: &str) -> &'static SpanStats {
        let mut state = self.state.lock().expect("registry lock");
        if let Some(s) = state.spans.get(name) {
            return s;
        }
        let leaked: &'static SpanStats = Box::leak(Box::default());
        state.spans.insert(name.to_string(), leaked);
        leaked
    }

    /// Registers (or replaces) the help text rendered as this
    /// family's `# HELP` line in the Prometheus exposition. `name` is
    /// the dotted family name (`served.http.requests`), matching what
    /// the metric constructors take.
    pub fn describe(&self, name: &str, help: &str) {
        let mut state = self.state.lock().expect("registry lock");
        state.help.insert(name.to_string(), help.to_string());
    }

    /// Finds or creates the counter `family{labels}`. Counters of one
    /// family share a `# TYPE` line in the exposition and differ only
    /// by label set; the same `(family, labels)` pair always returns
    /// the same handle.
    pub fn labeled_counter(&self, family: &str, labels: &[(&str, &str)]) -> &'static Counter {
        let key = label_key(labels);
        let mut state = self.state.lock().expect("registry lock");
        let slot = state
            .labeled_counters
            .entry(family.to_string())
            .or_default();
        if let Some(c) = slot.get(&key) {
            return c;
        }
        let leaked: &'static Counter = Box::leak(Box::default());
        slot.insert(key, leaked);
        leaked
    }

    /// Finds or creates the gauge `family{labels}`; see
    /// [`labeled_counter`](Self::labeled_counter).
    pub fn labeled_gauge(&self, family: &str, labels: &[(&str, &str)]) -> &'static Gauge {
        let key = label_key(labels);
        let mut state = self.state.lock().expect("registry lock");
        let slot = state.labeled_gauges.entry(family.to_string()).or_default();
        if let Some(g) = slot.get(&key) {
            return g;
        }
        let leaked: &'static Gauge = Box::leak(Box::default());
        slot.insert(key, leaked);
        leaked
    }

    /// Finds or creates the rolling histogram `family{labels}`. The
    /// first registration of a family fixes the bucket bounds and
    /// window; later callers receive the existing histogram regardless
    /// of the spec they pass (same contract as
    /// [`histogram`](Self::histogram)).
    pub fn rolling_histogram(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        window_secs: f64,
    ) -> &'static RollingHistogram {
        let key = label_key(labels);
        let mut state = self.state.lock().expect("registry lock");
        let slot = state.rolling.entry(family.to_string()).or_default();
        if let Some(h) = slot.get(&key) {
            return h;
        }
        let leaked: &'static RollingHistogram = Box::leak(Box::new(RollingHistogram::new(
            bounds,
            window_secs,
            DEFAULT_SLICES,
        )));
        slot.insert(key, leaked);
        leaked
    }

    /// Gathers every registered metric into Prometheus metric
    /// families for [`crate::prom::render`]. Dotted names are
    /// flattened (`served.http.requests` → `served_http_requests`);
    /// plain and labeled metrics of the same family merge into one
    /// family (the unlabeled sample first); spans surface as two
    /// counters, `<name>_calls_total` and `<name>_seconds_total`;
    /// rolling histograms are merged over their current window.
    /// Family help defaults to the dotted name when
    /// [`describe`](Self::describe) was never called.
    pub fn gather(&self) -> Vec<crate::prom::Family> {
        use crate::prom::{Family, Kind, Sample, SampleValue};
        let state = self.state.lock().expect("registry lock");
        let help_of = |dotted: &str| {
            state
                .help
                .get(dotted)
                .cloned()
                .unwrap_or_else(|| format!("accordion metric {dotted}"))
        };
        let mut families: BTreeMap<String, Family> = BTreeMap::new();
        let mut push = |name: String, help: String, kind: Kind, sample: Sample| {
            families
                .entry(name.clone())
                .or_insert_with(|| Family {
                    name,
                    help,
                    kind,
                    samples: Vec::new(),
                })
                .samples
                .push(sample);
        };
        for (k, c) in &state.counters {
            push(
                crate::prom::flatten_name(k),
                help_of(k),
                Kind::Counter,
                Sample {
                    labels: String::new(),
                    value: SampleValue::Scalar(c.get() as f64),
                    exemplars: Vec::new(),
                },
            );
        }
        for (k, slot) in &state.labeled_counters {
            for (labels, c) in slot {
                push(
                    crate::prom::flatten_name(k),
                    help_of(k),
                    Kind::Counter,
                    Sample {
                        labels: labels.clone(),
                        value: SampleValue::Scalar(c.get() as f64),
                        exemplars: Vec::new(),
                    },
                );
            }
        }
        for (k, g) in &state.gauges {
            push(
                crate::prom::flatten_name(k),
                help_of(k),
                Kind::Gauge,
                Sample {
                    labels: String::new(),
                    value: SampleValue::Scalar(g.get()),
                    exemplars: Vec::new(),
                },
            );
        }
        for (k, slot) in &state.labeled_gauges {
            for (labels, g) in slot {
                push(
                    crate::prom::flatten_name(k),
                    help_of(k),
                    Kind::Gauge,
                    Sample {
                        labels: labels.clone(),
                        value: SampleValue::Scalar(g.get()),
                        exemplars: Vec::new(),
                    },
                );
            }
        }
        for (k, h) in &state.histograms {
            push(
                crate::prom::flatten_name(k),
                help_of(k),
                Kind::Histogram,
                Sample {
                    labels: String::new(),
                    value: SampleValue::Hist(h.snapshot()),
                    exemplars: Vec::new(),
                },
            );
        }
        for (k, slot) in &state.rolling {
            for (labels, h) in slot {
                push(
                    crate::prom::flatten_name(k),
                    format!("{} (rolling {:.0}s window)", help_of(k), h.window_secs()),
                    Kind::Histogram,
                    Sample {
                        labels: labels.clone(),
                        value: SampleValue::Hist(h.window_snapshot()),
                        exemplars: h.exemplars(),
                    },
                );
            }
        }
        for (k, s) in &state.spans {
            let flat = crate::prom::flatten_name(k);
            push(
                format!("{flat}_calls_total"),
                format!("completed spans of {k}"),
                Kind::Counter,
                Sample {
                    labels: String::new(),
                    value: SampleValue::Scalar(s.calls() as f64),
                    exemplars: Vec::new(),
                },
            );
            push(
                format!("{flat}_seconds_total"),
                format!("wall-clock seconds inside {k}"),
                Kind::Counter,
                Sample {
                    labels: String::new(),
                    value: SampleValue::Scalar(s.total_ns() as f64 / 1e9),
                    exemplars: Vec::new(),
                },
            );
        }
        families.into_values().collect()
    }

    /// Structured view of all span accounting, sorted by name. Feeds
    /// the `repro profile` self/total time tree without going through
    /// the JSON snapshot.
    pub fn span_snapshot(&self) -> Vec<SpanSnapshot> {
        let state = self.state.lock().expect("registry lock");
        state
            .spans
            .iter()
            .map(|(k, s)| SpanSnapshot {
                name: k.clone(),
                calls: s.calls(),
                total_ns: s.total_ns(),
                max_ns: s.max_ns(),
            })
            .collect()
    }

    /// Renders every metric as a plain-text exposition, one
    /// `name value` line per sample in the Prometheus style (dots in
    /// metric names are replaced with underscores; histogram and span
    /// aggregates get `_count` / `_sum` / quantile suffixes). This is
    /// what `accordion-served` returns from `GET /metrics`.
    ///
    /// ```
    /// accordion_telemetry::registry::global()
    ///     .counter("demo.exposition.hits")
    ///     .inc();
    /// let text = accordion_telemetry::registry::global().render_text();
    /// assert!(text.contains("demo_exposition_hits 1"));
    /// ```
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        fn flat(name: &str) -> String {
            name.replace(['.', '-'], "_")
        }
        let state = self.state.lock().expect("registry lock");
        let mut out = String::new();
        for (k, c) in &state.counters {
            let _ = writeln!(out, "{} {}", flat(k), c.get());
        }
        for (k, g) in &state.gauges {
            let _ = writeln!(out, "{} {}", flat(k), g.get());
        }
        for (k, h) in &state.histograms {
            let s = h.snapshot();
            let k = flat(k);
            let _ = writeln!(out, "{k}_count {}", s.count);
            let _ = writeln!(out, "{k}_sum {}", s.sum);
            for (q, label) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
                if let Some(v) = s.percentile(q) {
                    let _ = writeln!(out, "{k}_{label} {v}");
                }
            }
        }
        for (k, sp) in &state.spans {
            let k = flat(k);
            let _ = writeln!(out, "{k}_calls {}", sp.calls());
            let _ = writeln!(out, "{k}_total_ns {}", sp.total_ns());
        }
        out
    }

    /// Renders every metric to a JSON object:
    ///
    /// ```json
    /// {
    ///   "counters": {"sim.fault.infected": 12},
    ///   "gauges": {"runtime.clusters": 9},
    ///   "histograms": {"x": {"count": 3, "sum": 1.5, "min": ..., "p50": ...}},
    ///   "spans": {"varius.population.generate": {"calls": 1, "total_ms": 12.3, ...}}
    /// }
    /// ```
    pub fn snapshot_json(&self) -> Json {
        let state = self.state.lock().expect("registry lock");
        let counters = state
            .counters
            .iter()
            .map(|(k, c)| (k.clone(), Json::Num(c.get() as f64)))
            .collect();
        let gauges = state
            .gauges
            .iter()
            .map(|(k, g)| (k.clone(), Json::Num(g.get())))
            .collect();
        let histograms = state
            .histograms
            .iter()
            .map(|(k, h)| {
                let s = h.snapshot();
                (
                    k.clone(),
                    Json::obj(vec![
                        ("count", Json::Num(s.count as f64)),
                        ("sum", Json::Num(s.sum)),
                        ("min", s.min.map_or(Json::Null, Json::Num)),
                        ("max", s.max.map_or(Json::Null, Json::Num)),
                        ("mean", s.mean().map_or(Json::Null, Json::Num)),
                        ("p50", s.percentile(0.50).map_or(Json::Null, Json::Num)),
                        ("p95", s.percentile(0.95).map_or(Json::Null, Json::Num)),
                        ("p99", s.percentile(0.99).map_or(Json::Null, Json::Num)),
                    ]),
                )
            })
            .collect();
        let spans = state
            .spans
            .iter()
            .map(|(k, s)| {
                let calls = s.calls();
                (
                    k.clone(),
                    Json::obj(vec![
                        ("calls", Json::Num(calls as f64)),
                        ("total_ms", Json::Num(s.total_ns() as f64 / 1e6)),
                        (
                            "mean_ms",
                            if calls > 0 {
                                Json::Num(s.total_ns() as f64 / calls as f64 / 1e6)
                            } else {
                                Json::Null
                            },
                        ),
                        ("max_ms", Json::Num(s.max_ns() as f64 / 1e6)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("histograms".to_string(), Json::Obj(histograms)),
            ("spans".to_string(), Json::Obj(spans)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let a = global().counter("test.registry.counter");
        let b = global().counter("test.registry.counter");
        assert!(std::ptr::eq(a, b));
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);

        let g = global().gauge("test.registry.gauge");
        g.set(2.5);
        assert_eq!(global().gauge("test.registry.gauge").get(), 2.5);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = HistogramMetric::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.6, 3.0, 100.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 2, 1, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, Some(0.5));
        assert_eq!(s.max, Some(100.0));
        // p50: rank 3 of 5 falls in the (1,2] bucket → edge 2.
        assert_eq!(h.percentile(0.5), Some(2.0));
        // p100 clamps to the observed max.
        assert_eq!(h.percentile(1.0), Some(100.0));
        assert_eq!(h.percentile(0.0), Some(0.5));
    }

    #[test]
    fn empty_histogram_percentile_and_mean_are_none() {
        // Pinned: every statistic on an empty histogram is None —
        // never 0.0, NaN or a panic — for all q including the edges.
        let h = HistogramMetric::new(&[1.0, 2.0, 4.0]);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(s.percentile(q), None, "q={q}");
            assert_eq!(h.percentile(q), None, "q={q}");
        }
        assert_eq!(s.mean(), None);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.count, 0);
    }

    #[test]
    fn single_sample_histogram_statistics() {
        // Pinned: with one observation every percentile collapses to
        // that observation (bucket edges clamp to the observed range).
        let h = HistogramMetric::new(&[1.0, 2.0, 4.0]);
        h.record(3.0);
        let s = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(s.percentile(q), Some(3.0), "q={q}");
        }
        assert_eq!(s.mean(), Some(3.0));
        assert_eq!(s.min, Some(3.0));
        assert_eq!(s.max, Some(3.0));
        // Overflow-bucket sample: still clamps to the exact value.
        let h = HistogramMetric::new(&[1.0]);
        h.record(50.0);
        assert_eq!(h.percentile(0.5), Some(50.0));
    }

    #[test]
    fn span_snapshot_is_structured_and_sorted() {
        global().span_stats("test.registry.span.b").record_ns(10);
        global().span_stats("test.registry.span.a").record_ns(20);
        let snap = global().span_snapshot();
        let ours: Vec<_> = snap
            .iter()
            .filter(|s| s.name.starts_with("test.registry.span."))
            .collect();
        assert_eq!(ours.len(), 2);
        assert!(ours[0].name < ours[1].name, "sorted by name");
        assert_eq!(ours[0].calls, 1);
        assert_eq!(ours[0].total_ns, 20);
    }

    #[test]
    fn text_exposition_lists_every_metric_kind() {
        global().counter("test.expo.counter").add(7);
        global().gauge("test.expo.gauge").set(1.25);
        global()
            .histogram("test.expo.hist", &[1.0, 10.0])
            .record(3.0);
        global().span_stats("test.expo.span").record_ns(42);
        let text = global().render_text();
        assert!(text.contains("test_expo_counter 7"));
        assert!(text.contains("test_expo_gauge 1.25"));
        assert!(text.contains("test_expo_hist_count 1"));
        assert!(text.contains("test_expo_hist_sum 3"));
        assert!(text.contains("test_expo_span_calls 1"));
        // One sample per line, `name value`, no stray punctuation.
        for line in text.lines() {
            assert_eq!(line.split(' ').count(), 2, "line {line:?}");
        }
    }

    #[test]
    fn exponential_bounds_grow() {
        let b = exponential_bounds(1.0, 10.0, 4);
        assert_eq!(b, vec![1.0, 10.0, 100.0, 1000.0]);
    }

    #[test]
    fn span_stats_accumulate() {
        let s = SpanStats::default();
        s.record_ns(100);
        s.record_ns(300);
        assert_eq!(s.calls(), 2);
        assert_eq!(s.total_ns(), 400);
        assert_eq!(s.max_ns(), 300);
    }
}
