//! Hand-rolled JSON: a value tree, a renderer with correct string
//! escaping, and a minimal recursive-descent parser.
//!
//! The telemetry layer must not pull in serde (the build environment
//! is offline and the crate is dependency-free by design), so the
//! JSONL sink and the run manifest render through this module. The
//! parser exists so tests — and downstream tooling — can assert that
//! every emitted line round-trips.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Rendered without a trailing `.0` when integral.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders to compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Renders with two-space indentation (for the manifest file).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => render_num(*x, out),
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_pretty_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.render_pretty_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.render_pretty_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.render_into(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_num(x: f64, out: &mut String) {
    if !x.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// garbage is not.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn eat_lit(&mut self, lit: &str, out: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(out)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-ASCII in \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad hex in \\u escape"))?;
                            // Surrogates are not reassembled — the
                            // writer never emits them (it escapes only
                            // control characters).
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty rest");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let v = Json::obj(vec![
            ("name", Json::str("span \"quoted\" \\ path\nnewline")),
            ("n", Json::Num(42.0)),
            ("pi", Json::Num(3.25)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "arr",
                Json::Arr(vec![Json::Num(1.0), Json::str("two"), Json::Bool(false)]),
            ),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
        let pretty = v.render_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Num(5.0).render(), "5");
        assert_eq!(Json::Num(-3.0).render(), "-3");
        assert_eq!(Json::Num(0.5).render(), "0.5");
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn control_characters_escape() {
        let s = Json::str("a\u{1}b");
        assert_eq!(s.render(), "\"a\\u0001b\"");
        assert_eq!(parse(&s.render()).unwrap(), s);
    }

    #[test]
    fn unicode_survives() {
        let s = Json::str("ナノ秒 µs ±1%");
        assert_eq!(parse(&s.render()).unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn get_and_accessors() {
        let v = parse(r#"{"a": 1, "b": "x"}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert!(v.get("c").is_none());
    }
}
