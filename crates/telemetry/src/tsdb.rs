//! Fixed-memory ring-buffer time-series store over the prom registry.
//!
//! A [`Tsdb`] turns the point-in-time exposition of
//! [`crate::registry`] into *history*: a self-scrape loop (the one
//! `repro serve` runs) calls [`Tsdb::scrape`] every N ms, and each
//! scrape folds the gathered families into per-series ring buffers —
//! counters as per-second rates (finite-difference against the
//! previous scrape), gauges as raw values, histograms as p50/p99
//! quantiles plus a count rate. Three downsampling tiers (1 s / 10 s /
//! 1 m slots, [`SLOTS_PER_TIER`] slots each) cover six minutes, one
//! hour and six hours of history in a fixed memory footprint;
//! [`Tsdb::query`] picks the finest tier that spans the requested
//! range.
//!
//! # Series naming
//!
//! Series ids are derived from the on-the-wire metric name (see
//! [`crate::prom::rendered_name`]) plus the sample's canonical label
//! body and a derivation suffix:
//!
//! * counter `served_http_requests_total{outcome="ok"}` →
//!   `served_http_requests_total{outcome="ok"}:rate`
//! * gauge `served_queue_depth` → `served_queue_depth`
//! * histogram `served_http_latency_us` →
//!   `served_http_latency_us:p50`, `…:p99`, `…:rate` (count rate)
//!
//! # Determinism
//!
//! Like [`crate::rolling`], the wall clock is injected: the scrape and
//! query cores take milliseconds-since-start and the convenience
//! wrappers read the store's own monotonic clock. Tests drive
//! [`Tsdb::scrape_families_at_ms`] with synthetic families and
//! timestamps and get bit-exact series.

use crate::prom::{rendered_name, Family, Kind, SampleValue};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Slot length in seconds for each downsampling tier.
pub const TIER_SECS: [u64; 3] = [1, 10, 60];

/// Ring capacity of every tier.
pub const SLOTS_PER_TIER: usize = 360;

/// Hard cap on distinct series; scrapes drop samples for new series
/// beyond it (counted in [`Tsdb::dropped_series`]) so a label-cardinality
/// explosion cannot grow the store without bound.
pub const MAX_SERIES: usize = 1024;

/// Sentinel slot bucket meaning "never written".
const EMPTY: u64 = u64::MAX;

/// One downsampled point: the slot's start time and the mean of the
/// samples that landed in it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Slot start, milliseconds since the store's creation.
    pub t_ms: u64,
    /// Mean of the samples folded into the slot.
    pub value: f64,
}

/// A [`Tsdb::query`] answer: the tier that served it plus its points.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The series id queried.
    pub metric: String,
    /// Slot length of the tier that answered, seconds.
    pub tier_secs: u64,
    /// Points inside the range, oldest first.
    pub points: Vec<Point>,
}

/// One ring slot: absolute slot index plus a running mean.
#[derive(Debug, Clone, Copy)]
struct Slot {
    bucket: u64,
    sum: f64,
    count: u32,
}

struct Tier {
    secs: u64,
    slots: Vec<Slot>,
}

impl Tier {
    fn new(secs: u64) -> Self {
        Self {
            secs,
            slots: vec![
                Slot {
                    bucket: EMPTY,
                    sum: 0.0,
                    count: 0
                };
                SLOTS_PER_TIER
            ],
        }
    }

    fn push(&mut self, t_ms: u64, v: f64) {
        let bucket = t_ms / (self.secs * 1000);
        let slot = &mut self.slots[(bucket as usize) % SLOTS_PER_TIER];
        if slot.bucket != bucket {
            if slot.bucket != EMPTY && slot.bucket > bucket {
                return; // older than the whole ring
            }
            *slot = Slot {
                bucket,
                sum: 0.0,
                count: 0,
            };
        }
        slot.sum += v;
        slot.count += 1;
    }

    /// Points in `[now_ms - range_ms, now_ms]`, oldest first.
    fn collect(&self, now_ms: u64, range_ms: u64) -> Vec<Point> {
        let slot_ms = self.secs * 1000;
        let now_bucket = now_ms / slot_ms;
        let from_bucket = now_ms.saturating_sub(range_ms) / slot_ms;
        let mut out: Vec<Point> = self
            .slots
            .iter()
            .filter(|s| s.bucket != EMPTY && s.bucket >= from_bucket && s.bucket <= now_bucket)
            .map(|s| Point {
                t_ms: s.bucket * slot_ms,
                value: s.sum / s.count as f64,
            })
            .collect();
        out.sort_by_key(|p| p.t_ms);
        out
    }
}

struct Series {
    tiers: Vec<Tier>,
    /// Previous raw cumulative value + stamp, for rate derivation.
    prev_raw: Option<(u64, f64)>,
}

impl Series {
    fn new() -> Self {
        Self {
            tiers: TIER_SECS.iter().map(|&s| Tier::new(s)).collect(),
            prev_raw: None,
        }
    }

    fn push(&mut self, t_ms: u64, v: f64) {
        for tier in &mut self.tiers {
            tier.push(t_ms, v);
        }
    }

    /// Folds a cumulative reading into a per-second rate point; the
    /// first scrape only seeds the baseline. Counter resets (value
    /// going backwards) restart the baseline without a negative spike.
    fn push_rate(&mut self, t_ms: u64, raw: f64) {
        if let Some((prev_t, prev_v)) = self.prev_raw {
            if t_ms > prev_t && raw >= prev_v {
                let rate = (raw - prev_v) / ((t_ms - prev_t) as f64 / 1000.0);
                self.push(t_ms, rate);
            }
        }
        self.prev_raw = Some((t_ms, raw));
    }
}

#[derive(Default)]
struct TsdbState {
    series: BTreeMap<String, Series>,
    scrapes: u64,
    dropped_series: u64,
}

impl TsdbState {
    fn series_mut(&mut self, id: &str) -> Option<&mut Series> {
        if !self.series.contains_key(id) {
            if self.series.len() >= MAX_SERIES {
                self.dropped_series += 1;
                return None;
            }
            self.series.insert(id.to_string(), Series::new());
        }
        self.series.get_mut(id)
    }
}

/// The store: create once, scrape periodically, query freely.
pub struct Tsdb {
    state: Mutex<TsdbState>,
    start: Instant,
}

impl Default for Tsdb {
    fn default() -> Self {
        Self::new()
    }
}

impl Tsdb {
    /// Creates an empty store; its clock starts now.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(TsdbState::default()),
            start: Instant::now(),
        }
    }

    /// Milliseconds since the store was created.
    pub fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Scrapes the registry at the store's own clock.
    pub fn scrape(&self, registry: &crate::registry::Registry) {
        self.scrape_families_at_ms(&registry.gather(), self.now_ms());
    }

    /// Folds one gathered exposition into the store at `now_ms`. This
    /// is the deterministic core: identical families and stamps yield
    /// identical series.
    pub fn scrape_families_at_ms(&self, families: &[Family], now_ms: u64) {
        let mut state = self.state.lock().expect("tsdb lock");
        state.scrapes += 1;
        for fam in families {
            let base = rendered_name(fam);
            for sample in &fam.samples {
                let tagged = |suffix: &str| series_id(&base, &sample.labels, suffix);
                match (&sample.value, fam.kind) {
                    (SampleValue::Scalar(v), Kind::Counter) => {
                        if let Some(s) = state.series_mut(&tagged(":rate")) {
                            s.push_rate(now_ms, *v);
                        }
                    }
                    (SampleValue::Scalar(v), _) => {
                        if let Some(s) = state.series_mut(&tagged("")) {
                            s.push(now_ms, *v);
                        }
                    }
                    (SampleValue::Hist(h), _) => {
                        for (q, suffix) in [(0.50, ":p50"), (0.99, ":p99")] {
                            if let Some(v) = h.percentile(q) {
                                if let Some(s) = state.series_mut(&tagged(suffix)) {
                                    s.push(now_ms, v);
                                }
                            }
                        }
                        if let Some(s) = state.series_mut(&tagged(":rate")) {
                            s.push_rate(now_ms, h.count as f64);
                        }
                    }
                }
            }
        }
    }

    /// Points of `metric` over the trailing `range_secs`, from the
    /// finest tier that spans the range, at the store's clock.
    pub fn query(&self, metric: &str, range_secs: u64) -> QueryResult {
        self.query_at_ms(metric, range_secs, self.now_ms())
    }

    /// [`query`](Self::query) with an injected clock. Unknown metrics
    /// yield an empty point set (the id may simply not have data yet).
    pub fn query_at_ms(&self, metric: &str, range_secs: u64, now_ms: u64) -> QueryResult {
        let state = self.state.lock().expect("tsdb lock");
        let tier_idx = TIER_SECS
            .iter()
            .position(|&s| s * SLOTS_PER_TIER as u64 >= range_secs)
            .unwrap_or(TIER_SECS.len() - 1);
        let (tier_secs, points) = match state.series.get(metric) {
            Some(series) => {
                let tier = &series.tiers[tier_idx];
                (tier.secs, tier.collect(now_ms, range_secs * 1000))
            }
            None => (TIER_SECS[tier_idx], Vec::new()),
        };
        QueryResult {
            metric: metric.to_string(),
            tier_secs,
            points,
        }
    }

    /// Mean of `metric` over the trailing `window_secs` (`None` when
    /// the window holds no points). The alert evaluator's primitive.
    pub fn window_mean_at_ms(&self, metric: &str, window_secs: u64, now_ms: u64) -> Option<f64> {
        let r = self.query_at_ms(metric, window_secs, now_ms);
        if r.points.is_empty() {
            return None;
        }
        Some(r.points.iter().map(|p| p.value).sum::<f64>() / r.points.len() as f64)
    }

    /// Every known series id, sorted. Answers a `/v1/timeseries` call
    /// without a `metric` parameter.
    pub fn series_ids(&self) -> Vec<String> {
        let state = self.state.lock().expect("tsdb lock");
        state.series.keys().cloned().collect()
    }

    /// Number of scrapes folded in so far.
    pub fn scrapes(&self) -> u64 {
        self.state.lock().expect("tsdb lock").scrapes
    }

    /// Samples dropped because [`MAX_SERIES`] was reached.
    pub fn dropped_series(&self) -> u64 {
        self.state.lock().expect("tsdb lock").dropped_series
    }
}

/// Builds a series id: `name{labels}suffix` (no braces when the label
/// body is empty).
fn series_id(base: &str, labels: &str, suffix: &str) -> String {
    if labels.is_empty() {
        format!("{base}{suffix}")
    } else {
        format!("{base}{{{labels}}}{suffix}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prom::{Kind, Sample, SampleValue};
    use crate::registry::HistogramSnapshot;

    fn counter_family(name: &str, v: f64) -> Family {
        Family {
            name: name.into(),
            help: "test".into(),
            kind: Kind::Counter,
            samples: vec![Sample {
                labels: String::new(),
                value: SampleValue::Scalar(v),
                exemplars: Vec::new(),
            }],
        }
    }

    fn gauge_family(name: &str, v: f64) -> Family {
        Family {
            name: name.into(),
            help: "test".into(),
            kind: Kind::Gauge,
            samples: vec![Sample {
                labels: String::new(),
                value: SampleValue::Scalar(v),
                exemplars: Vec::new(),
            }],
        }
    }

    fn hist_family(name: &str, labels: &str, buckets: Vec<u64>) -> Family {
        let count = buckets.iter().sum();
        Family {
            name: name.into(),
            help: "test".into(),
            kind: Kind::Histogram,
            samples: vec![Sample {
                labels: labels.into(),
                value: SampleValue::Hist(HistogramSnapshot {
                    bounds: vec![1.0, 10.0, 100.0],
                    buckets,
                    count,
                    sum: 1.0,
                    min: (count > 0).then_some(0.5),
                    max: (count > 0).then_some(90.0),
                }),
                exemplars: Vec::new(),
            }],
        }
    }

    #[test]
    fn counters_become_rates() {
        let db = Tsdb::new();
        db.scrape_families_at_ms(&[counter_family("reqs", 100.0)], 1_000);
        db.scrape_families_at_ms(&[counter_family("reqs", 300.0)], 2_000);
        db.scrape_families_at_ms(&[counter_family("reqs", 400.0)], 3_000);
        let r = db.query_at_ms("reqs_total:rate", 60, 3_000);
        assert_eq!(r.tier_secs, 1);
        // First scrape seeds the baseline; two rate points follow.
        let vals: Vec<f64> = r.points.iter().map(|p| p.value).collect();
        assert_eq!(vals, vec![200.0, 100.0]);
    }

    #[test]
    fn counter_reset_restarts_the_baseline() {
        let db = Tsdb::new();
        db.scrape_families_at_ms(&[counter_family("reqs", 500.0)], 1_000);
        db.scrape_families_at_ms(&[counter_family("reqs", 10.0)], 2_000); // reset
        db.scrape_families_at_ms(&[counter_family("reqs", 20.0)], 3_000);
        let vals: Vec<f64> = db
            .query_at_ms("reqs_total:rate", 60, 3_000)
            .points
            .iter()
            .map(|p| p.value)
            .collect();
        // No negative spike from the reset; only the post-reset delta.
        assert_eq!(vals, vec![10.0]);
    }

    #[test]
    fn gauges_store_raw_values_and_downsample() {
        let db = Tsdb::new();
        // Two samples inside one 1 s slot average; a third lands in
        // the next slot.
        db.scrape_families_at_ms(&[gauge_family("depth", 4.0)], 100);
        db.scrape_families_at_ms(&[gauge_family("depth", 6.0)], 900);
        db.scrape_families_at_ms(&[gauge_family("depth", 9.0)], 1_100);
        let r = db.query_at_ms("depth", 60, 1_200);
        assert_eq!(
            r.points,
            vec![
                Point {
                    t_ms: 0,
                    value: 5.0
                },
                Point {
                    t_ms: 1_000,
                    value: 9.0
                },
            ]
        );
    }

    #[test]
    fn histograms_derive_quantiles_and_count_rate() {
        let db = Tsdb::new();
        let labels = "outcome=\"ok\"";
        db.scrape_families_at_ms(&[hist_family("lat", labels, vec![0, 0, 0, 0])], 1_000);
        db.scrape_families_at_ms(&[hist_family("lat", labels, vec![90, 9, 1, 0])], 2_000);
        let p50 = db.query_at_ms("lat{outcome=\"ok\"}:p50", 60, 2_000);
        let p99 = db.query_at_ms("lat{outcome=\"ok\"}:p99", 60, 2_000);
        let rate = db.query_at_ms("lat{outcome=\"ok\"}:rate", 60, 2_000);
        assert_eq!(p50.points.last().unwrap().value, 1.0);
        assert_eq!(p99.points.last().unwrap().value, 10.0);
        // Count went 0 → 100 over one second.
        assert_eq!(rate.points.last().unwrap().value, 100.0);
        // The empty first snapshot contributed no quantile points.
        assert_eq!(p50.points.len(), 1);
    }

    #[test]
    fn query_picks_the_finest_covering_tier() {
        let db = Tsdb::new();
        for t in 0..10 {
            db.scrape_families_at_ms(&[gauge_family("g", t as f64)], t * 1_000);
        }
        assert_eq!(db.query_at_ms("g", 60, 10_000).tier_secs, 1);
        assert_eq!(db.query_at_ms("g", 360, 10_000).tier_secs, 1);
        assert_eq!(db.query_at_ms("g", 361, 10_000).tier_secs, 10);
        assert_eq!(db.query_at_ms("g", 3_600, 10_000).tier_secs, 10);
        assert_eq!(db.query_at_ms("g", 3_601, 10_000).tier_secs, 60);
        // Way beyond the coarsest tier's span: still answered by it.
        assert_eq!(db.query_at_ms("g", 1_000_000, 10_000).tier_secs, 60);
        // The 10 s tier folded all ten samples into one slot.
        let r = db.query_at_ms("g", 3_600, 10_000);
        assert_eq!(r.points.len(), 1);
        assert_eq!(r.points[0].value, 4.5);
    }

    #[test]
    fn rings_wrap_and_old_points_fall_out() {
        let db = Tsdb::new();
        // 400 seconds of 1 Hz gauge samples: the 1 s tier (360 slots)
        // must hold only the newest 360.
        for t in 0..400u64 {
            db.scrape_families_at_ms(&[gauge_family("g", t as f64)], t * 1_000);
        }
        let r = db.query_at_ms("g", 360, 399_000);
        assert_eq!(r.points.len(), 360);
        assert_eq!(r.points.first().unwrap().value, 40.0);
        assert_eq!(r.points.last().unwrap().value, 399.0);
        // A narrow range trims further.
        let r = db.query_at_ms("g", 5, 399_000);
        assert_eq!(r.points.len(), 6);
        assert_eq!(r.points.first().unwrap().value, 394.0);
    }

    #[test]
    fn unknown_metric_is_empty_not_an_error() {
        let db = Tsdb::new();
        let r = db.query_at_ms("nope", 60, 1_000);
        assert!(r.points.is_empty());
        assert_eq!(db.window_mean_at_ms("nope", 60, 1_000), None);
    }

    #[test]
    fn series_cap_drops_new_series() {
        let db = Tsdb::new();
        let fams: Vec<Family> = (0..MAX_SERIES + 5)
            .map(|i| gauge_family(&format!("g{i}"), 1.0))
            .collect();
        db.scrape_families_at_ms(&fams, 1_000);
        assert_eq!(db.series_ids().len(), MAX_SERIES);
        assert_eq!(db.dropped_series(), 5);
        // Existing series keep accepting samples at the cap.
        db.scrape_families_at_ms(&[gauge_family("g0", 2.0)], 2_000);
        assert_eq!(db.query_at_ms("g0", 60, 2_000).points.len(), 2);
    }

    #[test]
    fn window_mean_averages_points() {
        let db = Tsdb::new();
        for t in 0..4u64 {
            db.scrape_families_at_ms(&[gauge_family("g", (t * 10) as f64)], t * 1_000);
        }
        assert_eq!(db.window_mean_at_ms("g", 60, 3_000), Some(15.0));
        // Narrow window sees only the newest points.
        assert_eq!(db.window_mean_at_ms("g", 1, 3_000), Some(25.0));
    }

    #[test]
    fn scrape_from_live_registry_works() {
        let reg = crate::registry::global();
        reg.counter("test.tsdb.hits").add(5);
        let db = Tsdb::new();
        db.scrape_families_at_ms(&reg.gather(), 1_000);
        reg.counter("test.tsdb.hits").add(5);
        db.scrape_families_at_ms(&reg.gather(), 2_000);
        let r = db.query_at_ms("test_tsdb_hits_total:rate", 60, 2_000);
        assert_eq!(r.points.last().unwrap().value, 5.0);
        assert_eq!(db.scrapes(), 2);
    }
}
