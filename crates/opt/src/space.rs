//! The optimizer's knob space: quantized candidates, bounds, and the
//! constraint model.
//!
//! A candidate operating point is the paper's four knobs — supply
//! voltage, engaged cluster count, problem size and timing guardband —
//! stored **quantized to integers** (millivolts, clusters, size in
//! parts-per-thousand, guardband in centi-decades). Integer knobs make
//! the search byte-deterministic (no float drift in mutation
//! arithmetic), give candidates a total order and an exact hash for
//! the evaluator memo, and bound the search to physically meaningful
//! resolution: nobody trims a supply rail finer than a millivolt.

use accordion_telemetry::json::Json;

/// Guardband quantization: `gb_centi` is the error-rate exponent times
/// 100, so `gb_centi = 900` targets `Perr = 10^-9` per core-cycle.
pub const GB_CENTI_PER_DECADE: u32 = 100;

/// Guardband ceiling: at `gb_centi >= GB_SAFE_CENTI` the candidate
/// runs Safe (the chip's error-free `perr_safe_target`, quality read
/// from the Default front); below it the candidate speculates at
/// `Perr = 10^(-gb_centi/100)` and quality drops to the Drop front.
pub const GB_SAFE_CENTI: u32 = 1200;

/// Guardband floor: `10^-6` is the cap the pareto extractor places on
/// useful speculation (one expected timing error per ~1M cycles).
pub const GB_MIN_CENTI: u32 = 600;

/// One quantized candidate operating point. Derives a total order —
/// the tie-break of last resort everywhere the search must pick
/// between equals deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Candidate {
    /// Supply in integer millivolts.
    pub vdd_mv: u32,
    /// Engaged clusters (a prefix of the chip's efficiency order).
    pub clusters: u32,
    /// Problem size in parts-per-thousand of the benchmark default.
    pub size_milli: u32,
    /// Guardband in centi-decades of error-rate exponent; see
    /// [`GB_SAFE_CENTI`].
    pub gb_centi: u32,
}

impl Candidate {
    /// Supply in volts.
    pub fn vdd_v(&self) -> f64 {
        f64::from(self.vdd_mv) / 1000.0
    }

    /// Problem size normalized to the benchmark default.
    pub fn size(&self) -> f64 {
        f64::from(self.size_milli) / 1000.0
    }

    /// Guardband as an error-rate exponent (`Perr = 10^-g`).
    pub fn guardband(&self) -> f64 {
        f64::from(self.gb_centi) / f64::from(GB_CENTI_PER_DECADE)
    }

    /// Whether the candidate runs Safe (no timing speculation).
    pub fn is_safe(&self) -> bool {
        self.gb_centi >= GB_SAFE_CENTI
    }

    /// The speculative per-core-cycle error-rate target; `None` for
    /// Safe candidates.
    pub fn perr_target(&self) -> Option<f64> {
        if self.is_safe() {
            None
        } else {
            Some(10f64.powf(-self.guardband()))
        }
    }
}

/// Inclusive bounds for every knob. All candidate construction —
/// random init, mutation, bisection, the scout grid — clamps into
/// these, so the space is closed under every search operator.
#[derive(Debug, Clone, PartialEq)]
pub struct KnobSpace {
    /// Supply range in millivolts, `lo <= hi`, within `[300, 1200]`.
    pub vdd_mv: (u32, u32),
    /// Cluster-count range, `1 <= lo <= hi <= topology clusters`.
    pub clusters: (u32, u32),
    /// Problem-size range in parts-per-thousand.
    pub size_milli: (u32, u32),
    /// Guardband range in centi-decades, within
    /// `[GB_MIN_CENTI, GB_SAFE_CENTI]`.
    pub gb_centi: (u32, u32),
}

impl KnobSpace {
    /// Number of scout-grid steps per continuous knob (Vdd, size,
    /// guardband); the cluster knob contributes up to
    /// [`Self::SCOUT_CLUSTER_STEPS`] values. With the defaults the
    /// scout grid is at most `4 * 3 * 3 * 6 = 216` candidates.
    pub const SCOUT_STEPS: u32 = 4;
    /// Cluster-count values probed by the scout grid.
    pub const SCOUT_CLUSTER_STEPS: u32 = 6;

    /// The full knob space for a chip with `max_clusters` clusters:
    /// NTV-and-above supplies, every cluster count, the paper's
    /// size range, and guardbands from the speculation cap down to
    /// Safe.
    pub fn full(max_clusters: u32) -> Self {
        Self {
            vdd_mv: (300, 1200),
            clusters: (1, max_clusters.max(1)),
            size_milli: (10, 4000),
            gb_centi: (GB_MIN_CENTI, GB_SAFE_CENTI),
        }
    }

    /// Clamps a candidate into the space, knob by knob.
    pub fn clamp(&self, c: Candidate) -> Candidate {
        Candidate {
            vdd_mv: c.vdd_mv.clamp(self.vdd_mv.0, self.vdd_mv.1),
            clusters: c.clusters.clamp(self.clusters.0, self.clusters.1),
            size_milli: c.size_milli.clamp(self.size_milli.0, self.size_milli.1),
            gb_centi: c.gb_centi.clamp(self.gb_centi.0, self.gb_centi.1),
        }
    }

    /// `steps` evenly spaced values spanning `[lo, hi]` inclusive
    /// (fewer when the range has fewer integers).
    fn axis(lo: u32, hi: u32, steps: u32) -> Vec<u32> {
        let span = u64::from(hi - lo);
        let steps = u64::from(steps.max(1)).min(span + 1);
        (0..steps)
            .map(|i| {
                if steps == 1 {
                    lo
                } else {
                    lo + (span * i / (steps - 1)) as u32
                }
            })
            .collect()
    }

    /// The cluster-count values the scout grid and the iso-metric
    /// curves probe: up to [`Self::SCOUT_CLUSTER_STEPS`] evenly spaced
    /// counts including both endpoints.
    pub fn cluster_steps(&self) -> Vec<u32> {
        Self::axis(self.clusters.0, self.clusters.1, Self::SCOUT_CLUSTER_STEPS)
    }

    /// The deterministic scout lattice seeding the search: the cross
    /// product of `steps` values per continuous knob with
    /// [`Self::cluster_steps`]. The NSGA-II loop evaluates this grid
    /// as generation 0, which is what makes the final front provably
    /// dominate-or-tie "the equivalent sweep": the grid's points are
    /// all in the archive the front is extracted from.
    pub fn scout_grid(&self, steps: u32) -> Vec<Candidate> {
        let mut grid = Vec::new();
        for &vdd_mv in &Self::axis(self.vdd_mv.0, self.vdd_mv.1, steps) {
            for &clusters in &self.cluster_steps() {
                for &size_milli in
                    &Self::axis(self.size_milli.0, self.size_milli.1, steps.max(2) - 1)
                {
                    for &gb_centi in &Self::axis(self.gb_centi.0, self.gb_centi.1, steps.max(2) - 1)
                    {
                        grid.push(Candidate {
                            vdd_mv,
                            clusters,
                            size_milli,
                            gb_centi,
                        });
                    }
                }
            }
        }
        grid.sort_unstable();
        grid.dedup();
        grid
    }

    /// The knob bounds as a JSON object (report provenance).
    pub fn to_json(&self) -> Json {
        let pair = |(lo, hi): (u32, u32)| {
            Json::Arr(vec![Json::Num(f64::from(lo)), Json::Num(f64::from(hi))])
        };
        Json::obj(vec![
            ("vdd_mv", pair(self.vdd_mv)),
            ("clusters", pair(self.clusters)),
            ("size_milli", pair(self.size_milli)),
            ("gb_centi", pair(self.gb_centi)),
        ])
    }
}

/// The constraint model: optional ceilings/floors a point must meet to
/// count as feasible. The search uses Deb's constraint-domination, so
/// infeasible points are not discarded — they rank behind every
/// feasible point and among themselves by total violation, which keeps
/// selection pressure pointing at the feasible region even when the
/// initial population misses it entirely.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Constraints {
    /// Minimum acceptable output quality (normalized to STV default).
    pub quality_floor: Option<f64>,
    /// Maximum chip power in watts.
    pub power_budget_w: Option<f64>,
    /// Maximum execution time in seconds.
    pub time_budget_s: Option<f64>,
}

impl Constraints {
    /// Total relative constraint violation of `(power_w, time_s,
    /// quality)`; `0.0` means feasible. Each active constraint
    /// contributes its relative excess, so a watt over a 10 W budget
    /// weighs like a decisecond over a 1 s budget.
    pub fn violation(&self, power_w: f64, time_s: f64, quality: f64) -> f64 {
        let mut v = 0.0;
        if let Some(q) = self.quality_floor {
            if quality < q {
                v += (q - quality) / q.max(1e-9);
            }
        }
        if let Some(p) = self.power_budget_w {
            if power_w > p {
                v += (power_w - p) / p.max(1e-9);
            }
        }
        if let Some(t) = self.time_budget_s {
            if time_s > t {
                v += (time_s - t) / t.max(1e-9);
            }
        }
        v
    }

    /// The constraints as a JSON object (report provenance); inactive
    /// constraints render as `null`.
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
        Json::obj(vec![
            ("quality_floor", opt(self.quality_floor)),
            ("power_budget_w", opt(self.power_budget_w)),
            ("time_budget_s", opt(self.time_budget_s)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scout_grid_is_sorted_dedup_and_in_bounds() {
        let space = KnobSpace::full(36);
        let grid = space.scout_grid(KnobSpace::SCOUT_STEPS);
        assert!(!grid.is_empty());
        let mut sorted = grid.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(grid, sorted, "grid must be sorted and deduplicated");
        for c in &grid {
            assert_eq!(space.clamp(*c), *c, "{c:?} out of bounds");
        }
        // Both endpoints of every axis are probed.
        assert!(grid.iter().any(|c| c.vdd_mv == 300));
        assert!(grid.iter().any(|c| c.vdd_mv == 1200));
        assert!(grid.iter().any(|c| c.clusters == 1));
        assert!(grid.iter().any(|c| c.clusters == 36));
        assert!(grid.iter().any(|c| c.is_safe()));
        assert!(grid.iter().any(|c| !c.is_safe()));
    }

    #[test]
    fn narrow_axes_collapse_without_panicking() {
        let space = KnobSpace {
            vdd_mv: (550, 550),
            clusters: (2, 3),
            size_milli: (1000, 1001),
            gb_centi: (900, 900),
        };
        let grid = space.scout_grid(KnobSpace::SCOUT_STEPS);
        assert!(!grid.is_empty());
        for c in &grid {
            assert_eq!(c.vdd_mv, 550);
            assert_eq!(c.gb_centi, 900);
        }
    }

    #[test]
    fn violation_is_zero_when_feasible_and_additive_when_not() {
        let c = Constraints {
            quality_floor: Some(0.99),
            power_budget_w: Some(10.0),
            time_budget_s: Some(1.0),
        };
        assert_eq!(c.violation(9.0, 0.5, 0.995), 0.0);
        let v1 = c.violation(11.0, 0.5, 0.995);
        let v2 = c.violation(11.0, 2.0, 0.995);
        assert!(v1 > 0.0 && v2 > v1, "violations accumulate: {v1} {v2}");
        assert_eq!(Constraints::default().violation(1e9, 1e9, 0.0), 0.0);
    }

    #[test]
    fn guardband_semantics() {
        let safe = Candidate {
            vdd_mv: 550,
            clusters: 4,
            size_milli: 1000,
            gb_centi: GB_SAFE_CENTI,
        };
        assert!(safe.is_safe());
        assert_eq!(safe.perr_target(), None);
        let spec = Candidate {
            gb_centi: 600,
            ..safe
        };
        let perr = spec.perr_target().unwrap();
        assert!((perr - 1e-6).abs() < 1e-18, "perr {perr}");
    }
}
