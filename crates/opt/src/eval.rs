//! Candidate evaluation: one [`Candidate`] in, one fully-priced
//! [`OperatingPoint`] out — deterministic, memoized, and cheap to
//! repeat.
//!
//! Two caches make the search fast without touching its bytes:
//!
//! * a **per-supply timing-context cache** — [`OperatingTimings`]
//!   derivation (per-core critical-path statistics at a given `Vdd`)
//!   is the expensive part of an evaluation, and adjacent candidates
//!   (a bisection step, a mutated neighbour) usually share a supply.
//!   Contexts are keyed by integer millivolts and kept in a small
//!   LRU, the reuse ROADMAP item 5 anticipated; `OperatingTimings::at`
//!   is a pure function of `(chip, vdd)`, so eviction can never change
//!   a result.
//! * a **candidate memo** — the NSGA-II loop revisits operating points
//!   constantly (elitism keeps parents around; mutation often lands on
//!   a previous candidate). The memo makes a repeat evaluation a hash
//!   lookup. Hits and misses feed the `opt_evals_total` /
//!   `opt_eval_cache_hits_total` counters and the report's hit ratio.
//!
//! The chip itself comes from the process-wide
//! [`accordion_chip::popcache`], and the quality fronts from the
//! process-wide [`FrontSet`](accordion_apps::harness::FrontSet)
//! measurement cache — a second `optimize` call in the same process
//! (or served worker) skips fabrication and kernel measurement
//! entirely.

use crate::space::{Candidate, Constraints};
use accordion::baseline::StvBaseline;
use accordion::quality::QualityModel;
use accordion_apps::app::all_apps;
use accordion_chip::chip::Chip;
use accordion_chip::columns::{ChipColumns, OperatingTimings};
use accordion_chip::popcache;
use accordion_chip::topology::Topology;
use accordion_sim::exec::ExecModel;
use accordion_telemetry::counter;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Timing contexts kept live per evaluator (LRU); large enough for a
/// bisection's working set, small enough that a long NSGA-II run over
/// the full 900 mV range cannot hoard hundreds of contexts.
const CTX_CAPACITY: usize = 32;

/// One evaluated candidate with everything the objectives, the
/// constraints and the report need.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// The candidate knobs this point was evaluated at.
    pub candidate: Candidate,
    /// Safe (error-free) frequency of the engaged prefix, GHz.
    pub f_safe_ghz: f64,
    /// Operating frequency (= safe frequency for Safe candidates), GHz.
    pub f_run_ghz: f64,
    /// Per-core-cycle timing-error rate; `0.0` for Safe candidates.
    pub perr: f64,
    /// Execution time of the scaled workload, seconds.
    pub time_s: f64,
    /// Chip power of the engaged prefix at the operating point, watts.
    pub power_w: f64,
    /// Aggregate throughput, MIPS.
    pub mips: f64,
    /// Output quality (normalized to the STV default run).
    pub quality: f64,
}

impl OperatingPoint {
    /// Energy efficiency in MIPS per watt.
    pub fn mips_per_w(&self) -> f64 {
        self.mips / self.power_w
    }

    /// The minimization objectives `[power, time, quality deficit]`.
    /// Lower is better in every coordinate, which keeps the dominance
    /// code sign-free.
    pub fn objectives(&self) -> [f64; 3] {
        [self.power_w, self.time_s, 1.0 - self.quality]
    }

    /// Total constraint violation under `cons` (`0.0` = feasible).
    pub fn violation(&self, cons: &Constraints) -> f64 {
        cons.violation(self.power_w, self.time_s, self.quality)
    }
}

/// Bounded LRU of per-supply timing contexts, keyed by millivolts.
struct CtxCache {
    map: HashMap<u32, Arc<OperatingTimings>>,
    order: Vec<u32>,
}

/// Deterministic, cached candidate evaluator for one `(population,
/// chip, app)` binding.
pub struct Evaluator {
    pop: Arc<Vec<Chip>>,
    chip_index: usize,
    cols: ChipColumns,
    quality: QualityModel,
    exec: ExecModel,
    baseline: StvBaseline,
    ctxs: Mutex<CtxCache>,
    memo: Mutex<HashMap<Candidate, OperatingPoint>>,
    evals: AtomicU64,
    memo_hits: AtomicU64,
    ctx_hits: AtomicU64,
    ctx_misses: AtomicU64,
}

impl Evaluator {
    /// Binds an evaluator to chip `chip_index` of the
    /// `(topo, pop_seed, chips)` population (via the process-wide
    /// popcache) and benchmark `app` (quality fronts via the
    /// process-wide measurement cache).
    ///
    /// # Errors
    ///
    /// A human-readable message when the app is unknown, the chip
    /// index is out of range, or fabrication fails.
    pub fn new(
        topo: Topology,
        pop_seed: u64,
        chips: usize,
        chip_index: usize,
        app: &str,
    ) -> Result<Self, String> {
        let app = all_apps()
            .into_iter()
            .find(|a| a.name() == app)
            .ok_or_else(|| {
                let known: Vec<String> = all_apps().iter().map(|a| a.name().to_string()).collect();
                format!("unknown app {app:?}; known: {}", known.join(", "))
            })?;
        let pop = popcache::population(topo, pop_seed, chips)
            .map_err(|e| format!("variation sampler: {e:?}"))?;
        if chip_index >= pop.len() {
            return Err(format!(
                "chip index {chip_index} outside population of {}",
                pop.len()
            ));
        }
        let chip = &pop[chip_index];
        let cols = ChipColumns::build(chip);
        let quality = QualityModel::measure(app.as_ref());
        let exec = ExecModel::paper_default();
        let baseline = StvBaseline::compute(chip, app.as_ref(), &exec);
        Ok(Self {
            pop,
            chip_index,
            cols,
            quality,
            exec,
            baseline,
            ctxs: Mutex::new(CtxCache {
                map: HashMap::new(),
                order: Vec::new(),
            }),
            memo: Mutex::new(HashMap::new()),
            evals: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            ctx_hits: AtomicU64::new(0),
            ctx_misses: AtomicU64::new(0),
        })
    }

    /// The chip candidates are evaluated on.
    pub fn chip(&self) -> &Chip {
        &self.pop[self.chip_index]
    }

    /// The STV reference execution everything is normalized to.
    pub fn baseline(&self) -> &StvBaseline {
        &self.baseline
    }

    /// The benchmark's interpolated quality model.
    pub fn quality(&self) -> &QualityModel {
        &self.quality
    }

    /// The chip's cluster count (upper bound for the cluster knob).
    pub fn max_clusters(&self) -> u32 {
        self.cols.num_clusters() as u32
    }

    /// `(fresh evaluations, memo hits, ctx hits, ctx misses)` so far.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (
            self.evals.load(Ordering::Relaxed),
            self.memo_hits.load(Ordering::Relaxed),
            self.ctx_hits.load(Ordering::Relaxed),
            self.ctx_misses.load(Ordering::Relaxed),
        )
    }

    /// The per-supply timing context for `vdd_mv`, derived at most
    /// once while it stays in the LRU window.
    fn ctx(&self, vdd_mv: u32) -> Arc<OperatingTimings> {
        let mut cache = self.ctxs.lock().expect("ctx cache lock");
        if let Some(ctx) = cache.map.get(&vdd_mv) {
            let ctx = ctx.clone();
            cache.order.retain(|&mv| mv != vdd_mv);
            cache.order.push(vdd_mv);
            drop(cache);
            self.ctx_hits.fetch_add(1, Ordering::Relaxed);
            counter!("opt.ctx_cache.hits").inc();
            return ctx;
        }
        // Derive outside the lock: a 288-core context derivation must
        // not serialize the whole worker pool. A racing duplicate is
        // deterministic, so either insertion wins identically.
        drop(cache);
        self.ctx_misses.fetch_add(1, Ordering::Relaxed);
        counter!("opt.ctx_cache.misses").inc();
        let ctx = Arc::new(OperatingTimings::at(
            self.chip(),
            f64::from(vdd_mv) / 1000.0,
        ));
        let mut cache = self.ctxs.lock().expect("ctx cache lock");
        if cache.order.len() >= CTX_CAPACITY && !cache.map.contains_key(&vdd_mv) {
            let oldest = cache.order.remove(0);
            cache.map.remove(&oldest);
        }
        let entry = cache.map.entry(vdd_mv).or_insert_with(|| ctx.clone());
        let entry = entry.clone();
        cache.order.retain(|&mv| mv != vdd_mv);
        cache.order.push(vdd_mv);
        entry
    }

    /// Evaluates one candidate, bypassing the memo. Pure function of
    /// `(chip, candidate)` — no wall clock, no RNG.
    fn eval_uncached(&self, c: Candidate) -> OperatingPoint {
        let chip = self.chip();
        let ctx = self.ctx(c.vdd_mv);
        let n = (c.clusters as usize).clamp(1, self.cols.num_clusters());
        // The engaged clusters are the first `n` of the chip's
        // NTV-efficiency order — the same prefix rule the pareto
        // extractor and the batched sweep engine use.
        let prefix = || self.cols.efficiency_order()[..n].iter().map(|cl| cl.0);
        let params = chip.variation_params();
        let f_safe = ctx
            .columns()
            .min_frequency_for_perr_over(prefix(), params.perr_safe_target);
        let (f_run, perr) = match c.perr_target() {
            // Speculation can only raise the binding frequency; `max`
            // guards the degenerate case where the relaxed target is
            // still below the safe one.
            Some(p) => (
                ctx.columns()
                    .min_frequency_for_perr_over(prefix(), p)
                    .max(f_safe),
                p,
            ),
            None => (f_safe, 0.0),
        };

        let size = c.size();
        let w = self.baseline.workload.scaled(size);
        let n_cores = n * chip.topology().cores_per_cluster;
        let time_s = self.exec.execution_time_s(&w, n_cores, f_run);
        let mips = self.exec.total_mips(&w, n_cores, f_run);
        let power_w = self.prefix_power_w(n, c.vdd_v(), f_run);

        let (lo, hi) = self.quality.size_domain();
        let s = size.clamp(lo, hi);
        let quality = if c.is_safe() {
            self.quality.quality_safe(s)
        } else {
            self.quality.quality_speculative(s)
        };

        OperatingPoint {
            candidate: c,
            f_safe_ghz: f_safe,
            f_run_ghz: f_run,
            perr,
            time_s,
            power_w,
            mips,
            quality,
        }
    }

    /// Power of the first `n` efficiency-ordered clusters at an
    /// arbitrary supply: per-core variation-aware dynamic+leakage plus
    /// per-cluster uncore (the served engine's whole-chip pricing,
    /// restricted to the engaged prefix).
    fn prefix_power_w(&self, n: usize, vdd_v: f64, f_ghz: f64) -> f64 {
        let chip = self.chip();
        let core_model = chip.power_model().core_model();
        let variation = &chip.sample().variation;
        let tech = chip.freq_model().technology();
        let mut total = 0.0;
        for &cl in &self.cols.efficiency_order()[..n] {
            for core in chip.topology().cores_of(cl) {
                let dv = variation.core_vth_delta_v[core.0];
                let lm = variation.core_leff_mult[core.0];
                total += core_model.core_power(vdd_v, f_ghz, dv, lm).total_w();
            }
            total += chip
                .power_model()
                .cluster_uncore_w(vdd_v, f_ghz / tech.f_nom_ghz);
        }
        total
    }

    /// Evaluates one candidate through the memo.
    pub fn point(&self, c: Candidate) -> OperatingPoint {
        if let Some(hit) = self.memo.lock().expect("memo lock").get(&c) {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            counter!("opt.eval_cache.hits").inc();
            return hit.clone();
        }
        self.evals.fetch_add(1, Ordering::Relaxed);
        counter!("opt.evals").inc();
        let p = self.eval_uncached(c);
        self.memo.lock().expect("memo lock").insert(c, p.clone());
        p
    }

    /// Evaluates a batch: memo misses fan out over `workers` pool
    /// threads (ordered parallel map — byte-identical at any worker
    /// count), hits replay from the memo. Results are in input order.
    pub fn batch(&self, cands: &[Candidate], workers: usize) -> Vec<OperatingPoint> {
        // Collect the distinct misses in first-appearance order so the
        // parallel fan-out sees a deterministic work list.
        let mut fresh: Vec<Candidate> = Vec::new();
        {
            let memo = self.memo.lock().expect("memo lock");
            let mut seen: Vec<Candidate> = Vec::new();
            for &c in cands {
                if !memo.contains_key(&c) && !seen.contains(&c) {
                    seen.push(c);
                    fresh.push(c);
                }
            }
        }
        let hits = (cands.len() - fresh.len()) as u64;
        self.memo_hits.fetch_add(hits, Ordering::Relaxed);
        counter!("opt.eval_cache.hits").add(hits);
        self.evals.fetch_add(fresh.len() as u64, Ordering::Relaxed);
        counter!("opt.evals").add(fresh.len() as u64);
        let points =
            accordion_pool::par_map_with(workers, fresh.clone(), |c| self.eval_uncached(c));
        {
            let mut memo = self.memo.lock().expect("memo lock");
            for (c, p) in fresh.iter().zip(points) {
                memo.insert(*c, p);
            }
        }
        let memo = self.memo.lock().expect("memo lock");
        cands
            .iter()
            .map(|c| memo.get(c).expect("batch populated the memo").clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::GB_SAFE_CENTI;
    use std::sync::OnceLock;

    fn eval() -> &'static Evaluator {
        static EVAL: OnceLock<Evaluator> = OnceLock::new();
        EVAL.get_or_init(|| {
            Evaluator::new(Topology::small(), 7001, 2, 0, "hotspot").expect("evaluator")
        })
    }

    fn cand(vdd_mv: u32, clusters: u32, size_milli: u32, gb_centi: u32) -> Candidate {
        Candidate {
            vdd_mv,
            clusters,
            size_milli,
            gb_centi,
        }
    }

    #[test]
    fn rejects_bad_bindings() {
        assert!(Evaluator::new(Topology::small(), 1, 2, 0, "nope").is_err());
        assert!(Evaluator::new(Topology::small(), 1, 2, 5, "hotspot").is_err());
    }

    #[test]
    fn point_is_physical_and_memoized() {
        let e = eval();
        let c = cand(550, 2, 1000, GB_SAFE_CENTI);
        let p = e.point(c);
        assert!(p.f_safe_ghz > 0.05 && p.f_safe_ghz < 4.0, "{p:?}");
        assert_eq!(p.f_run_ghz, p.f_safe_ghz, "safe mode runs at f_safe");
        assert_eq!(p.perr, 0.0);
        assert!(p.power_w > 0.0 && p.time_s > 0.0 && p.quality > 0.5);
        let again = e.point(c);
        assert_eq!(p, again);
        let (_, hits, _, _) = e.stats();
        assert!(hits >= 1, "second lookup must hit the memo");
    }

    #[test]
    fn speculation_buys_frequency_and_costs_quality() {
        let e = eval();
        let safe = e.point(cand(500, 2, 1000, GB_SAFE_CENTI));
        let spec = e.point(cand(500, 2, 1000, 600));
        assert!(spec.f_run_ghz > safe.f_run_ghz, "{spec:?} vs {safe:?}");
        assert!(spec.quality <= safe.quality + 1e-12);
        assert!(spec.time_s < safe.time_s);
    }

    #[test]
    fn higher_vdd_clocks_faster_and_draws_more() {
        let e = eval();
        let lo = e.point(cand(450, 2, 1000, GB_SAFE_CENTI));
        let hi = e.point(cand(900, 2, 1000, GB_SAFE_CENTI));
        assert!(hi.f_safe_ghz > lo.f_safe_ghz);
        assert!(hi.power_w > lo.power_w);
        assert!(hi.time_s < lo.time_s);
    }

    #[test]
    fn batch_matches_pointwise_and_reuses_contexts() {
        let e = Evaluator::new(Topology::small(), 7002, 2, 1, "hotspot").expect("evaluator");
        let cands: Vec<Candidate> = (0..12u32)
            .map(|i| cand(500 + (i % 3) * 50, 1 + i % 2, 800 + i * 10, GB_SAFE_CENTI))
            .collect();
        let seq: Vec<OperatingPoint> = cands.iter().map(|&c| e.eval_uncached(c)).collect();
        let batched = e.batch(&cands, 4);
        assert_eq!(seq, batched);
        let (_, _, ctx_hits, ctx_misses) = e.stats();
        assert_eq!(ctx_misses, 3, "three distinct supplies derive contexts");
        assert!(ctx_hits > ctx_misses, "adjacent candidates reuse contexts");
    }
}
