//! The optimizer's JSON report: one deterministic document shared by
//! `repro optimize` (stdout) and `POST /v1/optimize` (response body).
//!
//! The report is a pure function of the request — no wall-clock, no
//! host identity — so identical requests render byte-identical bodies
//! at any `--jobs` setting. That is what lets the served route coalesce
//! duplicate optimize requests and what the determinism tests pin.

use crate::eval::{Evaluator, OperatingPoint};
use crate::iso::{self, IsoFronts, IsoTargets};
use crate::nsga::{self, front_dominates_grid, OptConfig, OptOutcome};
use accordion_chip::topology::Topology;
use accordion_telemetry::gauge;
use accordion_telemetry::json::Json;

/// A complete optimize request: the evaluator binding plus the search
/// configuration and report options.
#[derive(Debug, Clone)]
pub struct OptimizeRequest {
    /// Benchmark name (one of `all_apps()`).
    pub app: String,
    /// Chip topology.
    pub topo: Topology,
    /// Population seed (popcache key together with `topo`/`chips`).
    pub pop_seed: u64,
    /// Population size to fabricate.
    pub chips: usize,
    /// Which chip of the population to optimize for.
    pub chip: usize,
    /// The search configuration (seed, sizes, space, constraints).
    pub cfg: OptConfig,
    /// Whether to extract the iso-metric curves into the report.
    pub iso: bool,
    /// Evaluate a `steps`-per-knob lattice through the same evaluator
    /// and record whether the front dominates-or-ties every grid point.
    pub grid_check: Option<u32>,
}

/// The result of the equivalent-sweep dominance check.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCheck {
    /// Steps per continuous knob of the checked lattice.
    pub steps: u32,
    /// Lattice points evaluated.
    pub points: usize,
    /// Whether every lattice point is dominated-or-tied by the front.
    pub dominated: bool,
}

/// Runs the whole pipeline for one request: bind the evaluator, run
/// the NSGA-II search, extract the iso-metric curves, run the grid
/// check, render the report.
///
/// # Errors
///
/// A human-readable message (a `400` on the served route) when the
/// evaluator binding is invalid.
pub fn optimize_report(req: &OptimizeRequest, workers: usize) -> Result<Json, String> {
    let eval = Evaluator::new(req.topo, req.pop_seed, req.chips, req.chip, &req.app)?;
    // The cluster knob is bounded by the chip the request landed on.
    let mut cfg = req.cfg.clone();
    cfg.space.clusters.1 = cfg.space.clusters.1.min(eval.max_clusters()).max(1);
    cfg.space.clusters.0 = cfg.space.clusters.0.clamp(1, cfg.space.clusters.1);

    let outcome = nsga::optimize(&eval, &cfg, workers);
    let iso = if req.iso {
        let targets = IsoTargets::paper_default(&eval);
        Some(iso::extract(&eval, &cfg.space, &targets))
    } else {
        None
    };
    let grid_check = req.grid_check.map(|steps| {
        let grid = cfg.space.scout_grid(steps);
        let points = eval.batch(&grid, workers);
        GridCheck {
            steps,
            points: grid.len(),
            dominated: front_dominates_grid(&outcome.front, &points, &cfg.constraints),
        }
    });

    let (evals, memo_hits, _, _) = eval.stats();
    let ratio = if evals + memo_hits > 0 {
        memo_hits as f64 / (evals + memo_hits) as f64
    } else {
        0.0
    };
    gauge!("opt.cache_hit_ratio").set(ratio);

    Ok(render(
        req,
        &cfg,
        &eval,
        &outcome,
        iso.as_ref(),
        grid_check.as_ref(),
    ))
}

/// One operating point as the report renders it everywhere (front,
/// champions, iso curves).
fn point_json(p: &OperatingPoint, eval: &Evaluator, cfg: &OptConfig) -> Json {
    let c = p.candidate;
    let b = eval.baseline();
    Json::obj(vec![
        ("vdd_mv", Json::Num(f64::from(c.vdd_mv))),
        ("clusters", Json::Num(f64::from(c.clusters))),
        ("size", Json::Num(c.size())),
        ("guardband", Json::Num(c.guardband())),
        (
            "mode",
            Json::str(if c.is_safe() { "safe" } else { "speculative" }),
        ),
        ("f_safe_ghz", Json::Num(p.f_safe_ghz)),
        ("f_run_ghz", Json::Num(p.f_run_ghz)),
        ("perr", Json::Num(p.perr)),
        ("time_s", Json::Num(p.time_s)),
        ("power_w", Json::Num(p.power_w)),
        ("mips", Json::Num(p.mips)),
        ("mips_per_w", Json::Num(p.mips_per_w())),
        ("quality", Json::Num(p.quality)),
        ("speedup_vs_stv", Json::Num(b.exec_time_s / p.time_s)),
        (
            "efficiency_vs_stv",
            Json::Num(p.mips_per_w() / b.mips_per_w()),
        ),
        ("feasible", Json::Bool(p.violation(&cfg.constraints) == 0.0)),
        ("violation", Json::Num(p.violation(&cfg.constraints))),
    ])
}

/// The feasible front point minimizing `key` (front order — candidate
/// order — breaks ties); falls back to the whole front when nothing
/// is feasible.
fn champion<'a>(
    front: &'a [OperatingPoint],
    cfg: &OptConfig,
    key: impl Fn(&OperatingPoint) -> f64,
) -> Option<&'a OperatingPoint> {
    let feasible: Vec<&OperatingPoint> = front
        .iter()
        .filter(|p| p.violation(&cfg.constraints) == 0.0)
        .collect();
    let pool: Vec<&OperatingPoint> = if feasible.is_empty() {
        front.iter().collect()
    } else {
        feasible
    };
    pool.into_iter().min_by(|a, b| {
        key(a)
            .total_cmp(&key(b))
            .then(a.candidate.cmp(&b.candidate))
    })
}

fn render(
    req: &OptimizeRequest,
    cfg: &OptConfig,
    eval: &Evaluator,
    outcome: &OptOutcome,
    iso: Option<&IsoFronts>,
    grid_check: Option<&GridCheck>,
) -> Json {
    let b = eval.baseline();
    let points =
        |pts: &[OperatingPoint]| Json::Arr(pts.iter().map(|p| point_json(p, eval, cfg)).collect());
    let (evals, memo_hits, _, _) = eval.stats();
    let ratio = if evals + memo_hits > 0 {
        memo_hits as f64 / (evals + memo_hits) as f64
    } else {
        0.0
    };

    let mut doc = vec![
        (
            "request",
            Json::obj(vec![
                ("app", Json::str(&req.app)),
                (
                    "topo",
                    Json::str(if req.topo == Topology::small() {
                        "small"
                    } else {
                        "default"
                    }),
                ),
                ("pop_seed", Json::Num(req.pop_seed as f64)),
                ("chips", Json::Num(req.chips as f64)),
                ("chip", Json::Num(req.chip as f64)),
                ("seed", Json::Num(cfg.seed as f64)),
                ("population", Json::Num(cfg.population as f64)),
                ("generations", Json::Num(cfg.generations as f64)),
                ("scout_steps", Json::Num(f64::from(cfg.scout_steps))),
                ("knobs", cfg.space.to_json()),
                ("constraints", cfg.constraints.to_json()),
            ]),
        ),
        (
            "baseline",
            Json::obj(vec![
                ("n_stv", Json::Num(b.n_stv as f64)),
                ("f_stv_ghz", Json::Num(b.f_stv_ghz)),
                ("time_s", Json::Num(b.exec_time_s)),
                ("power_w", Json::Num(b.power_w)),
                ("mips_per_w", Json::Num(b.mips_per_w())),
            ]),
        ),
        ("front", points(&outcome.front)),
        (
            "best",
            Json::obj(vec![
                (
                    "min_power",
                    champion(&outcome.front, cfg, |p| p.power_w)
                        .map_or(Json::Null, |p| point_json(p, eval, cfg)),
                ),
                (
                    "min_time",
                    champion(&outcome.front, cfg, |p| p.time_s)
                        .map_or(Json::Null, |p| point_json(p, eval, cfg)),
                ),
                (
                    "max_quality",
                    champion(&outcome.front, cfg, |p| -p.quality)
                        .map_or(Json::Null, |p| point_json(p, eval, cfg)),
                ),
                (
                    "max_mips_per_w",
                    champion(&outcome.front, cfg, |p| -p.mips_per_w())
                        .map_or(Json::Null, |p| point_json(p, eval, cfg)),
                ),
            ]),
        ),
        (
            "search",
            Json::obj(vec![
                ("archive", Json::Num(outcome.archive_len as f64)),
                ("evals", Json::Num(evals as f64)),
                ("cache_hits", Json::Num(memo_hits as f64)),
                ("cache_hit_ratio", Json::Num(ratio)),
                (
                    "generations",
                    Json::Arr(
                        outcome
                            .generations
                            .iter()
                            .map(|g| {
                                Json::obj(vec![
                                    ("generation", Json::Num(g.generation as f64)),
                                    ("evals", Json::Num(g.evals as f64)),
                                    ("cache_hits", Json::Num(g.cache_hits as f64)),
                                    ("front", Json::Num(g.front as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ];
    if let Some(iso) = iso {
        doc.push((
            "iso",
            Json::obj(vec![
                (
                    "targets",
                    Json::obj(vec![
                        ("power_w", Json::Num(iso.targets.power_w)),
                        ("time_s", Json::Num(iso.targets.time_s)),
                        ("quality", Json::Num(iso.targets.quality)),
                    ]),
                ),
                (
                    "quality_size",
                    iso.quality_size_milli
                        .map_or(Json::Null, |sm| Json::Num(f64::from(sm) / 1000.0)),
                ),
                ("iso_power", points(&iso.iso_power)),
                ("iso_time", points(&iso.iso_time)),
                ("iso_quality", points(&iso.iso_quality)),
            ]),
        ));
    }
    if let Some(gc) = grid_check {
        doc.push((
            "grid_check",
            Json::obj(vec![
                ("steps", Json::Num(f64::from(gc.steps))),
                ("points", Json::Num(gc.points as f64)),
                ("dominated", Json::Bool(gc.dominated)),
            ]),
        ));
    }
    Json::obj(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Constraints, KnobSpace};

    fn request() -> OptimizeRequest {
        OptimizeRequest {
            app: "hotspot".to_string(),
            topo: Topology::small(),
            pop_seed: 7004,
            chips: 2,
            chip: 0,
            cfg: OptConfig {
                seed: 42,
                population: 8,
                generations: 2,
                scout_steps: 3,
                space: KnobSpace::full(64),
                constraints: Constraints {
                    quality_floor: Some(0.9),
                    power_budget_w: None,
                    time_budget_s: None,
                },
            },
            iso: true,
            grid_check: Some(3),
        }
    }

    #[test]
    fn report_has_the_contract_fields_and_a_dominating_front() {
        let doc = optimize_report(&request(), 2).expect("report");
        for key in [
            "request",
            "baseline",
            "front",
            "best",
            "search",
            "iso",
            "grid_check",
        ] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
        let front = match doc.get("front") {
            Some(Json::Arr(items)) => items,
            other => panic!("front not an array: {other:?}"),
        };
        assert!(!front.is_empty());
        assert_eq!(
            doc.get("grid_check").and_then(|g| g.get("dominated")),
            Some(&Json::Bool(true)),
            "front must dominate the seeded grid by construction"
        );
        // The cluster knob was clamped to the chip's actual clusters.
        let hi = doc
            .get("request")
            .and_then(|r| r.get("knobs"))
            .and_then(|k| k.get("clusters"))
            .and_then(|c| match c {
                Json::Arr(v) => v[1].as_f64(),
                _ => None,
            })
            .unwrap();
        assert!(hi <= 4.0, "small topo has 4 clusters, got {hi}");
    }

    #[test]
    fn unknown_app_is_a_client_error() {
        let mut req = request();
        req.app = "nope".to_string();
        let err = optimize_report(&req, 1).unwrap_err();
        assert!(err.contains("unknown app"), "{err}");
    }
}
