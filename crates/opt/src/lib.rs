//! # accordion-opt
//!
//! The operating-point optimizer: instead of sweeping grids and
//! eyeballing Pareto plots, search the paper's knob space — supply
//! voltage, engaged cluster count, problem size, timing guardband —
//! directly for the points that answer "cheapest at ≥99 % quality",
//! "fastest under 10 W", or "the whole power/time/quality trade
//! frontier".
//!
//! The crate is four layers, each usable on its own:
//!
//! * [`space`] — quantized candidates (integer millivolts / clusters /
//!   size-per-mille / guardband centi-decades), knob bounds, and the
//!   constraint model (quality floor, power budget, time budget);
//! * [`eval`] — the deterministic candidate evaluator, with a
//!   per-supply [`OperatingTimings`](accordion_chip::columns::OperatingTimings)
//!   context cache (reuse across adjacent candidates) and a candidate
//!   memo (repeat evaluations are hash lookups), fed by the
//!   process-wide popcache and quality-front caches;
//! * [`iso`] — iso-power / iso-time / iso-quality curve extraction by
//!   monotone bracketing and integer bisection;
//! * [`nsga`] — a seeded, byte-deterministic NSGA-II loop over an
//!   elitist archive seeded with a deterministic scout grid, so the
//!   reported front provably dominates-or-ties the equivalent sweep;
//! * [`report`] — the deterministic JSON report shared by
//!   `repro optimize` and `POST /v1/optimize`.
//!
//! Telemetry: `opt.generation` spans, `opt_evals_total` /
//! `opt_eval_cache_hits_total` / `opt_ctx_cache_*` counters, an
//! `opt_cache_hit_ratio` gauge, and one flight-recorder track per
//! generation (`opt/gen{g}`) carrying
//! [`SimEvent::OptGeneration`](accordion_telemetry::event::SimEvent)
//! events.
//!
//! # Example
//!
//! ```no_run
//! use accordion_chip::topology::Topology;
//! use accordion_opt::nsga::OptConfig;
//! use accordion_opt::report::{optimize_report, OptimizeRequest};
//! use accordion_opt::space::{Constraints, KnobSpace};
//!
//! let req = OptimizeRequest {
//!     app: "canneal".to_string(),
//!     topo: Topology::paper_default(),
//!     pop_seed: 2014,
//!     chips: 8,
//!     chip: 0,
//!     cfg: OptConfig {
//!         seed: 0,
//!         population: 48,
//!         generations: 16,
//!         scout_steps: KnobSpace::SCOUT_STEPS,
//!         space: KnobSpace::full(36),
//!         constraints: Constraints {
//!             quality_floor: Some(0.99),
//!             ..Constraints::default()
//!         },
//!     },
//!     iso: true,
//!     grid_check: Some(KnobSpace::SCOUT_STEPS),
//! };
//! let report = optimize_report(&req, accordion_pool::jobs()).unwrap();
//! println!("{}", report.render_pretty());
//! ```

#![deny(missing_docs)]

pub mod eval;
pub mod iso;
pub mod nsga;
pub mod report;
pub mod space;

pub use eval::{Evaluator, OperatingPoint};
pub use nsga::{OptConfig, OptOutcome};
pub use report::{optimize_report, OptimizeRequest};
pub use space::{Candidate, Constraints, KnobSpace};
