//! Iso-metric front extraction: the curves the paper's figures are
//! read along, computed directly instead of eyeballed off a sweep.
//!
//! Each curve fixes one metric and asks, per engaged-cluster count,
//! what supply (or problem size) hits it:
//!
//! * **iso-power** — the highest supply whose chip power stays within
//!   the target: the "spend the whole budget" frontier.
//! * **iso-time** — the lowest supply that still meets the target
//!   execution time: the paper's iso-execution-time discipline.
//! * **iso-quality** — the smallest problem size whose Safe quality
//!   reaches the target, then per cluster count the lowest supply
//!   matching the STV baseline's execution time at that size.
//!
//! All three metrics are monotone in the bisected knob (power and
//! speed rise with `Vdd`, quality rises with problem size), so a
//! bracket check plus integer-millivolt bisection finds each curve
//! point exactly — and deterministically, no float-tolerance loops.
//! Every probe goes through the [`Evaluator`]'s memo and per-supply
//! context cache, so adjacent bisection steps (which revisit nearby
//! supplies across cluster counts) are near-free.

use crate::eval::{Evaluator, OperatingPoint};
use crate::space::{Candidate, KnobSpace};
use accordion_telemetry::span;

/// Targets for the three curves. [`IsoTargets::paper_default`] derives
/// them from the chip and baseline the evaluator is bound to.
#[derive(Debug, Clone, PartialEq)]
pub struct IsoTargets {
    /// iso-power target in watts.
    pub power_w: f64,
    /// iso-time target in seconds.
    pub time_s: f64,
    /// iso-quality target (normalized output quality).
    pub quality: f64,
}

impl IsoTargets {
    /// The paper's framing: the chip's power budget, the STV
    /// baseline's execution time, and 99 % output quality.
    pub fn paper_default(eval: &Evaluator) -> Self {
        Self {
            power_w: eval.chip().power_model().budget_w(),
            time_s: eval.baseline().exec_time_s,
            quality: 0.99,
        }
    }
}

/// The three extracted curves, one evaluated point per feasible
/// cluster count (cluster counts with no in-range solution are
/// skipped, which is what bounds each curve's extent).
#[derive(Debug, Clone)]
pub struct IsoFronts {
    /// The targets the curves were extracted at.
    pub targets: IsoTargets,
    /// Iso-power curve: highest in-budget supply per cluster count.
    pub iso_power: Vec<OperatingPoint>,
    /// Iso-time curve: lowest deadline-meeting supply per cluster
    /// count.
    pub iso_time: Vec<OperatingPoint>,
    /// Iso-quality curve: per cluster count, the lowest supply running
    /// the quality-hitting problem size in the baseline's time.
    pub iso_quality: Vec<OperatingPoint>,
    /// The problem size (parts-per-thousand) the iso-quality curve
    /// runs at; `None` when no in-range size reaches the target.
    pub quality_size_milli: Option<u32>,
}

/// Largest value in `[lo, hi]` satisfying `test`, assuming `test` is
/// monotone true-then-false over the range; `None` when even `lo`
/// fails (no bracket).
fn bisect_last_true(lo: u32, hi: u32, mut test: impl FnMut(u32) -> bool) -> Option<u32> {
    if !test(lo) {
        return None;
    }
    if test(hi) {
        return Some(hi);
    }
    let (mut lo, mut hi) = (lo, hi); // invariant: test(lo) && !test(hi)
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if test(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Smallest value in `[lo, hi]` satisfying `test`, assuming `test` is
/// monotone false-then-true; `None` when even `hi` fails.
fn bisect_first_true(lo: u32, hi: u32, mut test: impl FnMut(u32) -> bool) -> Option<u32> {
    if test(lo) {
        return Some(lo);
    }
    if !test(hi) {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi); // invariant: !test(lo) && test(hi)
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if test(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// A Safe-mode probe candidate at `(vdd_mv, clusters, size_milli)`,
/// clamped into the space.
fn probe(space: &KnobSpace, vdd_mv: u32, clusters: u32, size_milli: u32) -> Candidate {
    space.clamp(Candidate {
        vdd_mv,
        clusters,
        size_milli,
        gb_centi: space.gb_centi.1,
    })
}

/// Extracts all three curves. Probes route through `eval`'s memo and
/// per-supply context cache; the whole extraction is a pure function
/// of `(evaluator binding, space, targets)`.
pub fn extract(eval: &Evaluator, space: &KnobSpace, targets: &IsoTargets) -> IsoFronts {
    let _span = span!("opt.iso");
    let (vlo, vhi) = space.vdd_mv;
    let cluster_steps = space.cluster_steps();
    let default_size = 1000u32.clamp(space.size_milli.0, space.size_milli.1);

    // Iso-power: power rises with Vdd, so the curve point is the last
    // supply still within the target.
    let mut iso_power = Vec::new();
    for &n in &cluster_steps {
        let found = bisect_last_true(vlo, vhi, |mv| {
            eval.point(probe(space, mv, n, default_size)).power_w <= targets.power_w
        });
        if let Some(mv) = found {
            iso_power.push(eval.point(probe(space, mv, n, default_size)));
        }
    }

    // Iso-time: speed rises with Vdd, so the curve point is the first
    // supply meeting the deadline.
    let mut iso_time = Vec::new();
    for &n in &cluster_steps {
        let found = bisect_first_true(vlo, vhi, |mv| {
            eval.point(probe(space, mv, n, default_size)).time_s <= targets.time_s
        });
        if let Some(mv) = found {
            iso_time.push(eval.point(probe(space, mv, n, default_size)));
        }
    }

    // Iso-quality: quality rises with problem size (the paper's core
    // observation), so first find the smallest quality-hitting size,
    // then run the iso-time discipline at that size against the STV
    // baseline's execution time.
    let (slo, shi) = space.size_milli;
    let n_probe = *cluster_steps.last().expect("cluster steps non-empty");
    let quality_size_milli = bisect_first_true(slo, shi, |sm| {
        eval.point(probe(space, vhi, n_probe, sm)).quality >= targets.quality
    });
    let mut iso_quality = Vec::new();
    if let Some(sm) = quality_size_milli {
        let baseline_s = eval.baseline().exec_time_s;
        for &n in &cluster_steps {
            let found = bisect_first_true(vlo, vhi, |mv| {
                eval.point(probe(space, mv, n, sm)).time_s <= baseline_s
            });
            if let Some(mv) = found {
                iso_quality.push(eval.point(probe(space, mv, n, sm)));
            }
        }
    }

    IsoFronts {
        targets: targets.clone(),
        iso_power,
        iso_time,
        iso_quality,
        quality_size_milli,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_chip::topology::Topology;
    use std::sync::OnceLock;

    fn eval() -> &'static Evaluator {
        static EVAL: OnceLock<Evaluator> = OnceLock::new();
        EVAL.get_or_init(|| {
            Evaluator::new(Topology::small(), 7003, 2, 0, "hotspot").expect("evaluator")
        })
    }

    #[test]
    fn bisections_find_exact_boundaries() {
        assert_eq!(bisect_last_true(0, 100, |v| v <= 37), Some(37));
        assert_eq!(bisect_last_true(0, 100, |v| v <= 100), Some(100));
        assert_eq!(bisect_last_true(10, 100, |v| v <= 5), None);
        assert_eq!(bisect_first_true(0, 100, |v| v >= 37), Some(37));
        assert_eq!(bisect_first_true(5, 100, |v| v >= 5), Some(5));
        assert_eq!(bisect_first_true(0, 100, |v| v >= 200), None);
    }

    #[test]
    fn curves_hit_their_targets() {
        let e = eval();
        let space = KnobSpace::full(e.max_clusters());
        let targets = IsoTargets::paper_default(e);
        let fronts = extract(e, &space, &targets);
        assert!(!fronts.iso_power.is_empty(), "budget admits some supply");
        for p in &fronts.iso_power {
            assert!(p.power_w <= targets.power_w, "{p:?}");
            // One millivolt more must break the budget (or be the rail).
            let c = p.candidate;
            if c.vdd_mv < space.vdd_mv.1 {
                let over = e.point(Candidate {
                    vdd_mv: c.vdd_mv + 1,
                    ..c
                });
                assert!(over.power_w > targets.power_w, "not the boundary: {c:?}");
            }
        }
        for p in &fronts.iso_time {
            assert!(p.time_s <= targets.time_s, "{p:?}");
        }
        for p in &fronts.iso_quality {
            assert!(p.quality >= targets.quality - 1e-9, "{p:?}");
            assert!(p.time_s <= e.baseline().exec_time_s, "{p:?}");
        }
    }

    #[test]
    fn extraction_is_deterministic_and_cached() {
        let e = eval();
        let space = KnobSpace::full(e.max_clusters());
        let targets = IsoTargets::paper_default(e);
        let a = extract(e, &space, &targets);
        let (evals_after_first, _, _, _) = e.stats();
        let b = extract(e, &space, &targets);
        let (evals_after_second, _, _, _) = e.stats();
        assert_eq!(a.iso_power, b.iso_power);
        assert_eq!(a.iso_time, b.iso_time);
        assert_eq!(a.iso_quality, b.iso_quality);
        assert_eq!(
            evals_after_first, evals_after_second,
            "a repeated extraction must be all memo hits"
        );
    }
}
