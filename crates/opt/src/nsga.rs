//! The seeded, byte-deterministic NSGA-II loop.
//!
//! Classic NSGA-II — fast non-dominated sort, crowding distance,
//! binary tournament, uniform crossover, per-knob mutation — with
//! three repo-specific commitments:
//!
//! * **Determinism.** Every random draw comes from labelled
//!   [`SeedStream`] substreams consumed on the coordinating thread;
//!   candidate evaluation fans out through the ordered pool map; all
//!   tie-breaks bottom out in the candidates' integer total order.
//!   Same seed ⇒ byte-identical report at any `--jobs`.
//! * **An elitist archive.** Every point ever evaluated is kept, and
//!   the reported front is the non-dominated set *of the archive*, not
//!   of the last population. Crowding truncation can therefore never
//!   lose a non-dominated point, and because generation 0 is the
//!   deterministic scout grid, the final front provably
//!   dominates-or-ties every point of that grid.
//! * **Constraint domination** (Deb). Feasible beats infeasible;
//!   infeasible points compare by total violation; feasible points
//!   compare by Pareto dominance on `[power, time, quality deficit]`.
//!
//! The sort/crowding kernels are exported so the property tests can
//! pit them against a brute-force O(n²) oracle.

use crate::eval::{Evaluator, OperatingPoint};
use crate::space::{Candidate, Constraints, KnobSpace};
use accordion_stats::rng::{SeedStream, StreamRng};
use accordion_telemetry::event::SimEvent;
use accordion_telemetry::{counter, flight, flight_track, gauge, span};
use rand::Rng;

/// Per-knob mutation probability.
const MUTATION_P: f64 = 0.35;

/// Search configuration. `scout_steps` sizes the generation-0 grid
/// (see [`KnobSpace::scout_grid`]); everything else is standard
/// NSGA-II.
#[derive(Debug, Clone)]
pub struct OptConfig {
    /// Root seed for every random draw of the search.
    pub seed: u64,
    /// Population size (and offspring per generation).
    pub population: usize,
    /// Number of breeding generations after the scout grid.
    pub generations: usize,
    /// Steps per continuous knob in the generation-0 scout grid.
    pub scout_steps: u32,
    /// Knob bounds.
    pub space: KnobSpace,
    /// Constraint model.
    pub constraints: Constraints,
}

/// Per-generation accounting for the report and the flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct GenStat {
    /// Generation index (0 = scout grid).
    pub generation: u64,
    /// Fresh evaluator calls (memo misses) this generation.
    pub evals: u64,
    /// Evaluator memo hits this generation.
    pub cache_hits: u64,
    /// Archive rank-0 front size after this generation.
    pub front: u64,
}

/// The search result: the archive-wide non-dominated front (sorted by
/// candidate knobs — deterministic) plus per-generation accounting.
#[derive(Debug, Clone)]
pub struct OptOutcome {
    /// Non-dominated points of the full evaluation archive.
    pub front: Vec<OperatingPoint>,
    /// Points evaluated across the whole search (archive size).
    pub archive_len: usize,
    /// Per-generation accounting, generation 0 first.
    pub generations: Vec<GenStat>,
}

/// Strict Pareto dominance on minimization objectives: `a` no worse
/// everywhere and strictly better somewhere.
pub fn pareto_dominates(a: &[f64; 3], b: &[f64; 3]) -> bool {
    let mut strict = false;
    for m in 0..3 {
        if a[m] > b[m] {
            return false;
        }
        if a[m] < b[m] {
            strict = true;
        }
    }
    strict
}

/// Deb's constraint domination: feasible over infeasible, lower
/// violation between infeasibles, Pareto dominance between feasibles.
pub fn dominates(a: &[f64; 3], a_viol: f64, b: &[f64; 3], b_viol: f64) -> bool {
    match (a_viol > 0.0, b_viol > 0.0) {
        (false, true) => true,
        (true, false) => false,
        (true, true) => a_viol < b_viol,
        (false, false) => pareto_dominates(a, b),
    }
}

/// Fast non-dominated sort (Deb et al. 2002): returns fronts of
/// indices, rank 0 first, each front in ascending index order.
pub fn fast_nondominated_sort(objs: &[[f64; 3]], viols: &[f64]) -> Vec<Vec<usize>> {
    let n = objs.len();
    assert_eq!(n, viols.len(), "one violation per objective vector");
    let mut dominated_by: Vec<usize> = vec![0; n]; // how many dominate i
    let mut dominates_set: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if dominates(&objs[i], viols[i], &objs[j], viols[j]) {
                dominates_set[i].push(j);
                dominated_by[j] += 1;
            } else if dominates(&objs[j], viols[j], &objs[i], viols[i]) {
                dominates_set[j].push(i);
                dominated_by[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    while !current.is_empty() {
        let mut next: Vec<usize> = Vec::new();
        for &i in &current {
            for &j in &dominates_set[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        fronts.push(std::mem::take(&mut current));
        current = next;
    }
    fronts
}

/// Crowding distance of each member of one front (indices into
/// `objs`). Boundary points get `f64::INFINITY`; interior points the
/// usual normalized neighbour-gap sum. Sorting is stable with index
/// tie-breaks, so equal objective values crowd deterministically.
pub fn crowding_distance(front: &[usize], objs: &[[f64; 3]]) -> Vec<f64> {
    let n = front.len();
    let mut dist = vec![0.0f64; n];
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    // `m` walks the objective axes, not `objs` itself — the iterator
    // form clippy suggests would iterate the wrong dimension.
    #[allow(clippy::needless_range_loop)]
    for m in 0..3 {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            objs[front[a]][m]
                .total_cmp(&objs[front[b]][m])
                .then(front[a].cmp(&front[b]))
        });
        let lo = objs[front[order[0]]][m];
        let hi = objs[front[order[n - 1]]][m];
        dist[order[0]] = f64::INFINITY;
        dist[order[n - 1]] = f64::INFINITY;
        if hi > lo {
            for k in 1..n - 1 {
                let gap = objs[front[order[k + 1]]][m] - objs[front[order[k - 1]]][m];
                dist[order[k]] += gap / (hi - lo);
            }
        }
    }
    dist
}

/// `(rank, crowding)` per point, from one sort + per-front crowding.
fn rank_and_crowd(objs: &[[f64; 3]], viols: &[f64]) -> Vec<(usize, f64)> {
    let mut out = vec![(0usize, 0.0f64); objs.len()];
    for (rank, front) in fast_nondominated_sort(objs, viols).iter().enumerate() {
        let dist = crowding_distance(front, objs);
        for (&i, &d) in front.iter().zip(&dist) {
            out[i] = (rank, d);
        }
    }
    out
}

/// Binary tournament: lower rank wins, then higher crowding, then
/// lower index (the deterministic tie-break of last resort).
fn tournament(rng: &mut StreamRng, ranked: &[(usize, f64)]) -> usize {
    let i = rng.random_below(ranked.len());
    let j = rng.random_below(ranked.len());
    let better = |a: usize, b: usize| {
        let (ra, ca) = ranked[a];
        let (rb, cb) = ranked[b];
        match ra.cmp(&rb).then(cb.total_cmp(&ca)) {
            std::cmp::Ordering::Less => a,
            std::cmp::Ordering::Greater => b,
            std::cmp::Ordering::Equal => a.min(b),
        }
    };
    better(i, j)
}

/// Mutates one integer knob: half the time a local step of up to an
/// eighth of the range, half the time a uniform re-draw — local
/// refinement with an escape hatch out of local optima.
fn mutate_knob(rng: &mut StreamRng, v: u32, (lo, hi): (u32, u32)) -> u32 {
    if lo >= hi {
        return lo;
    }
    if rng.random_bool(0.5) {
        let max_step = ((hi - lo) / 8).max(1);
        let step = rng.random_range(1..=max_step);
        if rng.random_bool(0.5) {
            v.saturating_add(step).min(hi)
        } else {
            v.saturating_sub(step).max(lo)
        }
    } else {
        rng.random_range(lo..=hi)
    }
}

/// One child: tournament × 2, uniform crossover, per-knob mutation,
/// clamp into the space.
fn breed(
    rng: &mut StreamRng,
    pop: &[OperatingPoint],
    ranked: &[(usize, f64)],
    space: &KnobSpace,
) -> Candidate {
    let a = pop[tournament(rng, ranked)].candidate;
    let b = pop[tournament(rng, ranked)].candidate;
    let pick = |rng: &mut StreamRng, x, y| if rng.random_bool(0.5) { x } else { y };
    let mut c = Candidate {
        vdd_mv: pick(rng, a.vdd_mv, b.vdd_mv),
        clusters: pick(rng, a.clusters, b.clusters),
        size_milli: pick(rng, a.size_milli, b.size_milli),
        gb_centi: pick(rng, a.gb_centi, b.gb_centi),
    };
    if rng.random_bool(MUTATION_P) {
        c.vdd_mv = mutate_knob(rng, c.vdd_mv, space.vdd_mv);
    }
    if rng.random_bool(MUTATION_P) {
        c.clusters = mutate_knob(rng, c.clusters, space.clusters);
    }
    if rng.random_bool(MUTATION_P) {
        c.size_milli = mutate_knob(rng, c.size_milli, space.size_milli);
    }
    if rng.random_bool(MUTATION_P) {
        c.gb_centi = mutate_knob(rng, c.gb_centi, space.gb_centi);
    }
    space.clamp(c)
}

/// NSGA-II environmental selection: keep whole fronts while they fit,
/// truncate the straddling front by descending crowding (index
/// ascending on ties). Input order is preserved within the survivors
/// of each front.
fn environmental_select(
    mut points: Vec<OperatingPoint>,
    target: usize,
    cons: &Constraints,
) -> Vec<OperatingPoint> {
    // Dedupe by candidate: elitism plus a finite integer space means
    // duplicates accumulate, and identical points would crowd each
    // other to zero distance.
    let mut seen: Vec<Candidate> = Vec::new();
    points.retain(|p| {
        if seen.contains(&p.candidate) {
            false
        } else {
            seen.push(p.candidate);
            true
        }
    });
    if points.len() <= target {
        return points;
    }
    let objs: Vec<[f64; 3]> = points.iter().map(OperatingPoint::objectives).collect();
    let viols: Vec<f64> = points.iter().map(|p| p.violation(cons)).collect();
    let mut keep: Vec<usize> = Vec::with_capacity(target);
    for front in fast_nondominated_sort(&objs, &viols) {
        if keep.len() + front.len() <= target {
            keep.extend_from_slice(&front);
        } else {
            let dist = crowding_distance(&front, &objs);
            let mut order: Vec<usize> = (0..front.len()).collect();
            order.sort_by(|&a, &b| dist[b].total_cmp(&dist[a]).then(front[a].cmp(&front[b])));
            for &k in order.iter().take(target - keep.len()) {
                keep.push(front[k]);
            }
            break;
        }
    }
    keep.sort_unstable();
    keep.into_iter().map(|i| points[i].clone()).collect()
}

/// Indices of the archive's non-dominated points (ties kept), in
/// archive order.
fn archive_front_indices(archive: &[OperatingPoint], cons: &Constraints) -> Vec<usize> {
    let objs: Vec<[f64; 3]> = archive.iter().map(OperatingPoint::objectives).collect();
    let viols: Vec<f64> = archive.iter().map(|p| p.violation(cons)).collect();
    (0..archive.len())
        .filter(|&i| (0..archive.len()).all(|j| !dominates(&objs[j], viols[j], &objs[i], viols[i])))
        .collect()
}

/// Runs the search: scout grid as generation 0, then
/// `cfg.generations` NSGA-II generations, all candidate evaluation
/// through `eval`'s memo over `workers` pool threads.
pub fn optimize(eval: &Evaluator, cfg: &OptConfig, workers: usize) -> OptOutcome {
    let root = SeedStream::new(cfg.seed);
    let mut archive: Vec<OperatingPoint> = Vec::new();
    let mut archived: std::collections::HashSet<Candidate> = std::collections::HashSet::new();
    let mut gens: Vec<GenStat> = Vec::new();

    let run_generation = |g: u64,
                          cands: &[Candidate],
                          archive: &mut Vec<OperatingPoint>,
                          archived: &mut std::collections::HashSet<Candidate>,
                          gens: &mut Vec<GenStat>| {
        let _span = span!("opt.generation");
        let _track = flight_track!("opt/gen{}", g);
        let (e0, h0, _, _) = eval.stats();
        let points = eval.batch(cands, workers);
        let (e1, h1, _, _) = eval.stats();
        for p in &points {
            if archived.insert(p.candidate) {
                archive.push(p.clone());
            }
        }
        let front = archive_front_indices(archive, &cfg.constraints).len() as u64;
        counter!("opt.generations").inc();
        gauge!("opt.front_size").set(front as f64);
        flight!(SimEvent::OptGeneration {
            generation: g,
            evals: e1 - e0,
            cache_hits: h1 - h0,
            front,
        });
        gens.push(GenStat {
            generation: g,
            evals: e1 - e0,
            cache_hits: h1 - h0,
            front,
        });
        points
    };

    // Generation 0: the deterministic scout grid. Seeding the archive
    // with the full lattice is what makes the final front
    // dominate-or-tie the equivalent sweep by construction.
    let grid = cfg.space.scout_grid(cfg.scout_steps);
    let scout_points = run_generation(0, &grid, &mut archive, &mut archived, &mut gens);
    let mut pop = environmental_select(scout_points, cfg.population, &cfg.constraints);

    for g in 1..=cfg.generations {
        let mut rng = root.stream("gen", g as u64);
        let objs: Vec<[f64; 3]> = pop.iter().map(OperatingPoint::objectives).collect();
        let viols: Vec<f64> = pop.iter().map(|p| p.violation(&cfg.constraints)).collect();
        let ranked = rank_and_crowd(&objs, &viols);
        let children: Vec<Candidate> = (0..cfg.population)
            .map(|_| breed(&mut rng, &pop, &ranked, &cfg.space))
            .collect();
        let child_points =
            run_generation(g as u64, &children, &mut archive, &mut archived, &mut gens);
        let mut merged = pop;
        merged.extend(child_points);
        pop = environmental_select(merged, cfg.population, &cfg.constraints);
    }

    let mut front: Vec<OperatingPoint> = archive_front_indices(&archive, &cfg.constraints)
        .into_iter()
        .map(|i| archive[i].clone())
        .collect();
    front.sort_by_key(|p| p.candidate);
    OptOutcome {
        front,
        archive_len: archive.len(),
        generations: gens,
    }
}

/// Checks that every `grid` point is dominated-or-tied by some front
/// member under constraint domination ("tied" = equal objectives, or
/// the grid point is the front member). The acceptance gate behind the
/// report's `grid_check.dominated`.
pub fn front_dominates_grid(
    front: &[OperatingPoint],
    grid: &[OperatingPoint],
    cons: &Constraints,
) -> bool {
    grid.iter().all(|g| {
        let go = g.objectives();
        let gv = g.violation(cons);
        front.iter().any(|f| {
            let fo = f.objectives();
            let fv = f.violation(cons);
            dominates(&fo, fv, &go, gv) || (fo == go && fv == gv)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(c: Candidate, power: f64, time: f64, quality: f64) -> OperatingPoint {
        OperatingPoint {
            candidate: c,
            f_safe_ghz: 1.0,
            f_run_ghz: 1.0,
            perr: 0.0,
            time_s: time,
            power_w: power,
            mips: 1.0,
            quality,
        }
    }

    fn cand(i: u32) -> Candidate {
        Candidate {
            vdd_mv: 300 + i,
            clusters: 1,
            size_milli: 1000,
            gb_centi: 1200,
        }
    }

    #[test]
    fn pareto_dominance_basics() {
        assert!(pareto_dominates(&[1.0, 1.0, 1.0], &[1.0, 2.0, 1.0]));
        assert!(!pareto_dominates(&[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0]));
        assert!(!pareto_dominates(&[0.0, 2.0, 0.0], &[1.0, 1.0, 1.0]));
    }

    #[test]
    fn constraint_domination_ranks_feasible_first() {
        let worse = [9.0, 9.0, 9.0];
        let better = [1.0, 1.0, 1.0];
        assert!(dominates(&worse, 0.0, &better, 0.5));
        assert!(!dominates(&better, 0.5, &worse, 0.0));
        assert!(dominates(&worse, 0.1, &better, 0.5));
    }

    #[test]
    fn sort_layers_a_simple_chain() {
        let objs = [
            [1.0, 1.0, 1.0],
            [2.0, 2.0, 2.0],
            [3.0, 3.0, 3.0],
            [1.0, 3.0, 1.0],
        ];
        let viols = [0.0; 4];
        let fronts = fast_nondominated_sort(&objs, &viols);
        assert_eq!(fronts[0], vec![0]);
        assert_eq!(fronts[1], vec![1, 3]);
        assert_eq!(fronts[2], vec![2]);
    }

    #[test]
    fn crowding_rewards_boundary_and_spread() {
        let objs = [
            [0.0, 4.0, 0.0],
            [1.0, 1.0, 0.0],
            [2.0, 0.5, 0.0],
            [4.0, 0.0, 0.0],
        ];
        let front: Vec<usize> = (0..4).collect();
        let d = crowding_distance(&front, &objs);
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[3], f64::INFINITY);
        assert!(d[1].is_finite() && d[2].is_finite());
        assert!(d[1] > 0.0 && d[2] > 0.0);
    }

    #[test]
    fn environmental_select_keeps_best_and_dedupes() {
        let cons = Constraints::default();
        let pts = vec![
            point(cand(0), 1.0, 1.0, 1.0),
            point(cand(0), 1.0, 1.0, 1.0), // duplicate candidate
            point(cand(1), 2.0, 2.0, 1.0),
            point(cand(2), 3.0, 3.0, 1.0),
        ];
        let kept = environmental_select(pts, 2, &cons);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].candidate, cand(0));
        assert_eq!(kept[1].candidate, cand(1));
    }

    #[test]
    fn grid_check_accepts_ties_and_rejects_uncovered_points() {
        let cons = Constraints::default();
        let front = vec![point(cand(0), 1.0, 1.0, 1.0)];
        let tied = vec![point(cand(0), 1.0, 1.0, 1.0)];
        let dominated = vec![point(cand(1), 2.0, 2.0, 0.5)];
        let uncovered = vec![point(cand(2), 0.5, 3.0, 1.0)];
        assert!(front_dominates_grid(&front, &tied, &cons));
        assert!(front_dominates_grid(&front, &dominated, &cons));
        assert!(!front_dominates_grid(&front, &uncovered, &cons));
    }
}
