//! Property-based oracle check for the NSGA-II sorting kernels: over
//! random objective sets (with random constraint violations), the fast
//! non-dominated sort must produce exactly the layering a brute-force
//! O(n²) peeling of the dominance relation produces, and the crowding
//! distance must keep its boundary/positivity invariants.

use accordion_opt::nsga::{crowding_distance, dominates, fast_nondominated_sort, pareto_dominates};
use proptest::prelude::*;

/// Decodes a flat draw of small integers into `(objectives,
/// violations)`. Small discrete coordinates maximize ties and
/// dominance chains — the cases where a buggy sort and the oracle
/// diverge.
fn decode(raw: &[u32]) -> (Vec<[f64; 3]>, Vec<f64>) {
    let n = raw.len() / 4;
    let mut objs = Vec::with_capacity(n);
    let mut viols = Vec::with_capacity(n);
    for q in raw.chunks_exact(4) {
        objs.push([f64::from(q[0]), f64::from(q[1]), f64::from(q[2])]);
        // Three out of four points are feasible; the rest carry a
        // small discrete violation so ties happen there too.
        viols.push(if q[3] % 4 == 0 {
            f64::from(q[3] / 4 + 1)
        } else {
            0.0
        });
    }
    (objs, viols)
}

/// Brute-force layering: repeatedly peel the set of points dominated
/// by nobody still standing. The O(n²)-per-layer oracle the fast sort
/// must agree with.
fn brute_force_fronts(objs: &[[f64; 3]], viols: &[f64]) -> Vec<Vec<usize>> {
    let mut remaining: Vec<usize> = (0..objs.len()).collect();
    let mut fronts = Vec::new();
    while !remaining.is_empty() {
        let layer: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                remaining
                    .iter()
                    .all(|&j| !dominates(&objs[j], viols[j], &objs[i], viols[i]))
            })
            .collect();
        assert!(!layer.is_empty(), "dominance must be acyclic");
        remaining.retain(|i| !layer.contains(i));
        fronts.push(layer);
    }
    fronts
}

proptest! {
    /// The fast sort's layering equals the brute-force peeling,
    /// front by front, index by index.
    #[test]
    fn fast_sort_matches_brute_force(raw in proptest::collection::vec(0u32..8, 4..120)) {
        let (objs, viols) = decode(&raw);
        let fast = fast_nondominated_sort(&objs, &viols);
        let brute = brute_force_fronts(&objs, &viols);
        prop_assert_eq!(fast, brute);
    }

    /// Within any front no member dominates another, and every member
    /// of front k+1 is dominated by someone in front k.
    #[test]
    fn fronts_are_antichains_with_witnesses(raw in proptest::collection::vec(0u32..6, 4..100)) {
        let (objs, viols) = decode(&raw);
        let fronts = fast_nondominated_sort(&objs, &viols);
        let total: usize = fronts.iter().map(Vec::len).sum();
        prop_assert_eq!(total, objs.len(), "every point ranked exactly once");
        for (k, front) in fronts.iter().enumerate() {
            for &i in front {
                for &j in front {
                    prop_assert!(
                        !dominates(&objs[i], viols[i], &objs[j], viols[j]),
                        "front {} is not an antichain: {} dominates {}", k, i, j
                    );
                }
                if k > 0 {
                    prop_assert!(
                        fronts[k - 1].iter().any(|&w|
                            dominates(&objs[w], viols[w], &objs[i], viols[i])),
                        "point {} in front {} has no dominating witness above", i, k
                    );
                }
            }
        }
    }

    /// Pareto dominance is irreflexive and antisymmetric, and strict
    /// dominance implies constraint domination between feasibles.
    #[test]
    fn dominance_relation_invariants(raw in proptest::collection::vec(0u32..8, 6..60)) {
        let (objs, _) = decode(&raw);
        for a in &objs {
            prop_assert!(!pareto_dominates(a, a), "irreflexive");
        }
        for a in &objs {
            for b in &objs {
                if pareto_dominates(a, b) {
                    prop_assert!(!pareto_dominates(b, a), "antisymmetric");
                    prop_assert!(dominates(a, 0.0, b, 0.0));
                }
            }
        }
    }

    /// Crowding distance: per objective extremes are infinite, and no
    /// distance is negative or NaN.
    #[test]
    fn crowding_invariants(raw in proptest::collection::vec(0u32..16, 12..80)) {
        let (objs, viols) = decode(&raw);
        for front in fast_nondominated_sort(&objs, &viols) {
            let dist = crowding_distance(&front, &objs);
            prop_assert_eq!(dist.len(), front.len());
            for &d in &dist {
                prop_assert!(d >= 0.0 && !d.is_nan(), "distance {}", d);
            }
            if front.len() <= 2 {
                prop_assert!(dist.iter().all(|d| d.is_infinite()));
            } else {
                prop_assert!(dist.iter().filter(|d| d.is_infinite()).count() >= 2,
                    "at least the two boundary points are infinite");
            }
        }
    }
}
