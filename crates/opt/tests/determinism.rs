//! The optimizer's determinism contract, end to end: the same request
//! renders byte-identical reports at any worker count and across
//! repeated runs in one process (warm caches change timing, never
//! bytes), and the reported front dominates-or-ties the seeded scout
//! grid — the "equivalent sweep" acceptance check.

use accordion_chip::topology::Topology;
use accordion_opt::nsga::OptConfig;
use accordion_opt::report::{optimize_report, OptimizeRequest};
use accordion_opt::space::{Constraints, KnobSpace};
use accordion_telemetry::json::{self, Json};

fn request(seed: u64) -> OptimizeRequest {
    OptimizeRequest {
        app: "hotspot".to_string(),
        topo: Topology::small(),
        pop_seed: 7100,
        chips: 2,
        chip: 0,
        cfg: OptConfig {
            seed,
            population: 12,
            generations: 3,
            scout_steps: 3,
            space: KnobSpace::full(4),
            constraints: Constraints {
                quality_floor: Some(0.9),
                power_budget_w: Some(50.0),
                time_budget_s: None,
            },
        },
        iso: true,
        grid_check: Some(3),
    }
}

#[test]
fn same_seed_same_bytes_at_any_worker_count() {
    let a = optimize_report(&request(7), 1).expect("report").render();
    let b = optimize_report(&request(7), 8).expect("report").render();
    assert_eq!(a, b, "workers must never change the bytes");
    // A third run in the same (now cache-warm) process: popcache,
    // quality fronts and sampler caches are hot, bytes unchanged.
    let c = optimize_report(&request(7), 4).expect("report").render();
    assert_eq!(a, c, "warm caches must never change the bytes");
}

#[test]
fn front_dominates_the_seeded_grid_and_respects_constraints() {
    let doc = optimize_report(&request(11), 4).expect("report");
    assert_eq!(
        doc.get("grid_check").and_then(|g| g.get("dominated")),
        Some(&Json::Bool(true)),
        "front must dominate-or-tie every scout-grid point"
    );
    let front = match doc.get("front") {
        Some(Json::Arr(items)) => items,
        other => panic!("front missing: {other:?}"),
    };
    assert!(!front.is_empty());
    // Feasible front points actually meet the declared constraints.
    let mut feasible = 0;
    for p in front {
        if p.get("feasible") == Some(&Json::Bool(true)) {
            feasible += 1;
            let q = p.get("quality").and_then(Json::as_f64).unwrap();
            let w = p.get("power_w").and_then(Json::as_f64).unwrap();
            assert!(q >= 0.9, "feasible point below quality floor: {q}");
            assert!(w <= 50.0, "feasible point over power budget: {w}");
        }
    }
    assert!(feasible > 0, "the feasible region is reachable");
}

#[test]
fn report_parses_and_carries_search_accounting() {
    let rendered = optimize_report(&request(3), 2).expect("report").render();
    let doc = json::parse(&rendered).expect("report is valid JSON");
    let search = doc.get("search").expect("search section");
    let evals = search.get("evals").and_then(Json::as_f64).unwrap();
    let hits = search.get("cache_hits").and_then(Json::as_f64).unwrap();
    assert!(evals > 0.0);
    assert!(hits > 0.0, "elitism must produce memo hits");
    let gens = match search.get("generations") {
        Some(Json::Arr(items)) => items,
        other => panic!("generations missing: {other:?}"),
    };
    // Scout grid + 3 breeding generations.
    assert_eq!(gens.len(), 4);
    assert_eq!(
        gens[0].get("generation").and_then(Json::as_f64),
        Some(0.0),
        "generation 0 is the scout grid"
    );
}

#[test]
fn different_seeds_may_search_differently_but_both_dominate_the_grid() {
    for seed in [5, 6] {
        let doc = optimize_report(&request(seed), 2).expect("report");
        assert_eq!(
            doc.get("grid_check").and_then(|g| g.get("dominated")),
            Some(&Json::Bool(true)),
            "seed {seed}"
        );
    }
}
