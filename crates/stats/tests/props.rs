//! Property-based tests for the statistical substrate.

use accordion_stats::cholesky::Cholesky;
use accordion_stats::envelope::EnvelopeMatrix;
use accordion_stats::field::{CorrelatedField, CorrelationModel};
use accordion_stats::interp::PiecewiseLinear;
use accordion_stats::metrics::{distortion, psnr, relative_quality, ssd};
use accordion_stats::normal::StdNormal;
use accordion_stats::rng::{sample_std_normal, SeedStream};
use accordion_stats::summary::{quantile, Summary};
use proptest::prelude::*;

/// Assembles the dense correlation matrix for a point set, with the
/// same per-pair arithmetic as `CorrelatedField` (dx² + dy², sqrt,
/// model rho; unit diagonal).
fn correlation_matrix(pts: &[(f64, f64)], model: &CorrelationModel) -> Vec<f64> {
    let n = pts.len();
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = if i == j {
                1.0
            } else {
                let dx = pts[i].0 - pts[j].0;
                let dy = pts[i].1 - pts[j].1;
                model.rho((dx * dx + dy * dy).sqrt())
            };
        }
    }
    a
}

/// Packs the dense matrix into an `EnvelopeMatrix` whose row envelope
/// starts at each row's first structural nonzero.
fn envelope_of(a: &[f64], n: usize) -> EnvelopeMatrix {
    let first: Vec<usize> = (0..n)
        .map(|i| (0..=i).find(|&j| a[i * n + j] != 0.0).unwrap_or(i))
        .collect();
    let mut m = EnvelopeMatrix::new(first.clone());
    for (i, &f) in first.iter().enumerate() {
        for j in f..=i {
            m.set(i, j, a[i * n + j]);
        }
    }
    m
}

fn random_points(seed: u64, npts: usize) -> Vec<(f64, f64)> {
    let mut rng = SeedStream::new(seed).stream("pts", 0);
    (0..npts)
        .map(|_| {
            (
                10.0 * sample_std_normal(&mut rng),
                10.0 * sample_std_normal(&mut rng),
            )
        })
        .collect()
}

proptest! {
    #[test]
    fn cdf_is_monotone(a in -8.0f64..8.0, b in -8.0f64..8.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(StdNormal.cdf(lo) <= StdNormal.cdf(hi) + 1e-15);
    }

    #[test]
    fn cdf_inv_cdf_round_trip(p in 1e-10f64..0.9999999) {
        let x = StdNormal.inv_cdf(p);
        let back = StdNormal.cdf(x);
        prop_assert!((back - p).abs() < 1e-8 * (1.0 + 1.0 / p.min(1.0 - p)));
    }

    #[test]
    fn sf_complements_cdf(x in -10.0f64..10.0) {
        prop_assert!((StdNormal.cdf(x) + StdNormal.sf(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_reconstructs_random_spd(seed in 0u64..500, n in 1usize..8) {
        // Build A = B·Bᵀ + I, guaranteed SPD.
        let mut rng = SeedStream::new(seed).stream("spd", 0);
        let b: Vec<f64> = (0..n * n)
            .map(|_| accordion_stats::rng::sample_std_normal(&mut rng))
            .collect();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { 1.0 } else { 0.0 };
                for k in 0..n {
                    s += b[i * n + k] * b[j * n + k];
                }
                a[i * n + j] = s;
            }
        }
        let ch = Cholesky::factor(&a, n).expect("SPD factors");
        let r = ch.reconstruct();
        for (x, y) in a.iter().zip(&r) {
            prop_assert!((x - y).abs() < 1e-8 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn spherical_correlation_within_unit_interval(d in 0.0f64..100.0, range in 0.01f64..50.0) {
        let rho = CorrelationModel::Spherical { range }.rho(d);
        prop_assert!((0.0..=1.0).contains(&rho));
    }

    #[test]
    fn field_samples_have_len_of_points(npts in 1usize..12, seed in 0u64..100) {
        let pts: Vec<(f64, f64)> = (0..npts).map(|i| (i as f64 * 1.7, (i * i) as f64 * 0.3)).collect();
        let f = CorrelatedField::new(&pts, CorrelationModel::Exponential { range: 3.0 }).unwrap();
        let s = f.sample(&mut SeedStream::new(seed).stream("f", 0));
        prop_assert_eq!(s.len(), npts);
        prop_assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn interp_eval_within_hull(ys in proptest::collection::vec(-100.0f64..100.0, 2..10), x in -5.0f64..15.0) {
        let pts: Vec<(f64, f64)> = ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect();
        let f = PiecewiseLinear::new(pts).unwrap();
        let v = f.eval(x);
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn inverse_monotone_round_trips(ys in proptest::collection::vec(0.0f64..100.0, 2..8), t in 0.0f64..1.0) {
        // Build a strictly increasing front by prefix sums.
        let mut acc = 0.0;
        let pts: Vec<(f64, f64)> = ys.iter().enumerate().map(|(i, &y)| {
            acc += y + 0.001;
            (i as f64, acc)
        }).collect();
        let f = PiecewiseLinear::new(pts.clone()).unwrap();
        let (ylo, yhi) = (pts[0].1, pts[pts.len() - 1].1);
        let y = ylo + t * (yhi - ylo);
        let x = f.inverse_monotone(y).expect("in range");
        prop_assert!((f.eval(x) - y).abs() < 1e-9 * (1.0 + y.abs()));
    }

    #[test]
    fn quantile_is_monotone_and_bounded(xs in proptest::collection::vec(-1e6f64..1e6, 1..50), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 < q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo);
        let b = quantile(&xs, hi);
        prop_assert!(a <= b + 1e-9);
        let s = Summary::of(&xs).unwrap();
        prop_assert!(a >= s.min - 1e-9 && b <= s.max + 1e-9);
    }

    #[test]
    fn ssd_is_a_semi_metric(xs in proptest::collection::vec(-10.0f64..10.0, 1..20)) {
        prop_assert_eq!(ssd(&xs, &xs), 0.0);
        let shifted: Vec<f64> = xs.iter().map(|v| v + 1.0).collect();
        prop_assert!((ssd(&xs, &shifted) - xs.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn quality_bounded_and_perfect_on_identity(xs in proptest::collection::vec(0.1f64..10.0, 1..20)) {
        let q = relative_quality(&xs, &xs);
        prop_assert_eq!(q, 1.0);
        prop_assert_eq!(distortion(&xs, &xs), 0.0);
    }

    #[test]
    fn psnr_decreases_with_noise(xs in proptest::collection::vec(0.0f64..1.0, 8..32), eps in 0.01f64..0.2) {
        let small: Vec<f64> = xs.iter().map(|v| v + eps).collect();
        let big: Vec<f64> = xs.iter().map(|v| v + 2.0 * eps).collect();
        prop_assert!(psnr(&xs, &small, 1.0) > psnr(&xs, &big, 1.0));
    }

    #[test]
    fn envelope_factor_is_bit_identical_to_dense(
        seed in 0u64..300,
        npts in 2usize..14,
        range in 0.5f64..6.0,
        duplicate in 0usize..2,
    ) {
        // The envelope kernel visits the same nonzero terms in the same
        // order as the dense one, so the factors must agree bit for bit
        // — including through the jitter-retry schedule, which a
        // coincident point pair (rank-deficient matrix) forces both
        // kernels to take.
        let mut pts = random_points(seed, npts);
        if duplicate == 1 {
            pts.push(pts[0]);
        }
        let n = pts.len();
        let model = CorrelationModel::Spherical { range };
        let a = correlation_matrix(&pts, &model);
        let dense = Cholesky::factor(&a, n).expect("dense factors");
        let env = envelope_of(&a, n).factor().expect("envelope factors");
        for i in 0..n {
            for j in 0..=i {
                prop_assert_eq!(env.get(i, j), dense.get(i, j), "L[{}][{}]", i, j);
            }
        }
    }

    #[test]
    fn envelope_matches_dense_on_independent_and_exponential(
        seed in 0u64..200,
        npts in 2usize..10,
        exponential in 0usize..2,
    ) {
        // Independent gives a diagonal envelope; Exponential has
        // unbounded support, so the envelope degenerates to the full
        // lower triangle — both extremes must still match dense.
        let pts = random_points(seed, npts);
        let model = if exponential == 1 {
            CorrelationModel::Exponential { range: 2.5 }
        } else {
            CorrelationModel::Independent
        };
        let a = correlation_matrix(&pts, &model);
        let dense = Cholesky::factor(&a, npts).expect("dense factors");
        let env = envelope_of(&a, npts).factor().expect("envelope factors");
        for i in 0..npts {
            for j in 0..=i {
                prop_assert_eq!(env.get(i, j), dense.get(i, j), "L[{}][{}]", i, j);
            }
        }
    }

    #[test]
    fn envelope_mul_matches_dense_mul(seed in 0u64..200, npts in 2usize..12, range in 0.5f64..6.0) {
        let pts = random_points(seed, npts);
        let a = correlation_matrix(&pts, &CorrelationModel::Spherical { range });
        let dense = Cholesky::factor(&a, npts).expect("dense factors");
        let env = envelope_of(&a, npts).factor().expect("envelope factors");
        let mut rng = SeedStream::new(seed).stream("z", 1);
        let z: Vec<f64> = (0..npts).map(|_| sample_std_normal(&mut rng)).collect();
        let want = dense.mul_vec(&z);
        prop_assert_eq!(&env.mul_vec(&z), &want);
        let mut into = vec![0.0; npts];
        env.mul_vec_into(&z, &mut into);
        prop_assert_eq!(&into, &want);
        let mut inplace = z.clone();
        env.mul_in_place(&mut inplace);
        prop_assert_eq!(&inplace, &want);
        let mut dense_inplace = z;
        dense.mul_in_place(&mut dense_inplace);
        prop_assert_eq!(&dense_inplace, &want);
    }

    #[test]
    fn sample_into_matches_sample(seed in 0u64..100, npts in 1usize..20, model_idx in 0usize..3) {
        let pts = random_points(seed, npts);
        let model = match model_idx {
            0 => CorrelationModel::Independent,
            1 => CorrelationModel::Spherical { range: 4.0 },
            _ => CorrelationModel::Exponential { range: 3.0 },
        };
        let f = CorrelatedField::new(&pts, model).unwrap();
        let a = f.sample(&mut SeedStream::new(seed).stream("s", 0));
        let mut b = vec![0.0; npts];
        f.sample_into(&mut SeedStream::new(seed).stream("s", 0), &mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn adjacent_fork_substreams_do_not_overlap(
        seed in 0u64..u64::MAX,
        label_idx in 0usize..4,
        index in 0u64..u64::MAX - 1,
    ) {
        // The parallel Monte-Carlo engine hands work item i the
        // substream fork(label, i); independence of neighbouring items
        // is what makes the parallel schedule irrelevant to the data.
        use rand::RngCore;
        use std::collections::HashSet;
        let label = ["chip", "field", "app", "mc"][label_idx];
        let root = SeedStream::new(seed);
        let a = root.fork(label, index);
        let b = root.fork(label, index + 1);
        prop_assert_ne!(a.seed(), b.seed(), "adjacent forks collide");
        let draws = |s: &SeedStream| -> HashSet<u64> {
            let mut r = s.stream("draw", 0);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let da = draws(&a);
        let db = draws(&b);
        // 64×64 u64 pairs collide with probability ≈ 2⁻⁵², so any
        // overlap means the substreams are not independent.
        prop_assert!(da.is_disjoint(&db), "adjacent substreams share draws");
    }

    #[test]
    fn fork_then_stream_matches_direct_stream(seed in 0u64..u64::MAX, index in 0u64..1000) {
        // fork(label, i).stream(...) and stream(label, i) must stay
        // distinct roles: the fork seed itself equals the mix the
        // direct stream uses, so the derived generators agree on the
        // substream identity used by the population fabricators.
        use rand::RngCore;
        let root = SeedStream::new(seed);
        let mut via_fork = SeedStream::new(root.fork("chip", index).seed()).stream("draw", 0);
        let mut direct = root.fork("chip", index).stream("draw", 0);
        for _ in 0..8 {
            prop_assert_eq!(via_fork.next_u64(), direct.next_u64());
        }
    }
}
