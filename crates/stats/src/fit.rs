//! Least-squares line fitting, used by the benchmark characterization
//! (Table 3) and ad-hoc analyses.

/// A fitted line `y = intercept + slope·x` with its goodness of fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Slope of the least-squares line.
    pub slope: f64,
    /// Intercept of the least-squares line.
    pub intercept: f64,
    /// Coefficient of determination R² ∈ (−∞, 1].
    pub r_squared: f64,
}

impl LineFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits a least-squares line of `y` on `x`.
///
/// A perfectly flat response (`y` all equal) fits perfectly with slope
/// ≈ 0 and reports `r_squared = 1`.
///
/// # Panics
///
/// Panics if the slices differ in length or hold fewer than two
/// points.
pub fn line_fit(x: &[f64], y: &[f64]) -> LineFit {
    assert_eq!(x.len(), y.len(), "fit over mismatched lengths");
    assert!(x.len() >= 2, "fit needs at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let sxx: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    let slope = sxy / sxx.max(1e-300);
    let intercept = my - slope * mx;
    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(a, v)| {
            let e = v - (intercept + slope * a);
            e * e
        })
        .sum();
    let ss_tot: f64 = y.iter().map(|v| (v - my) * (v - my)).sum();
    let r_squared = if ss_tot < 1e-300 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LineFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Fits a power law `y = a·x^b` by a line fit in log-log space,
/// returning the exponent `b` and the log-space R².
///
/// # Panics
///
/// Panics if any coordinate is non-positive, or on the `line_fit`
/// conditions.
pub fn power_fit(x: &[f64], y: &[f64]) -> LineFit {
    assert!(
        x.iter().chain(y).all(|v| *v > 0.0),
        "power fit needs positive coordinates"
    );
    let lx: Vec<f64> = x.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = y.iter().map(|v| v.ln()).collect();
    line_fit(&lx, &ly)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let f = line_fit(&x, &y);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert!((f.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_partial_r2() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [0.0, 1.5, 1.4, 3.6, 3.5];
        let f = line_fit(&x, &y);
        assert!(f.r_squared > 0.7 && f.r_squared < 1.0);
    }

    #[test]
    fn flat_response_is_perfectly_linear() {
        let x = [1.0, 2.0, 3.0];
        let y = [5.0, 5.0, 5.0];
        let f = line_fit(&x, &y);
        assert_eq!(f.r_squared, 1.0);
        assert!(f.slope.abs() < 1e-12);
    }

    #[test]
    fn power_law_exponent_recovered() {
        let x = [1.0, 2.0, 4.0, 8.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v * v).collect();
        let f = power_fit(&x, &y);
        assert!((f.slope - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive coordinates")]
    fn power_fit_rejects_zero() {
        power_fit(&[0.0, 1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_rejected() {
        line_fit(&[1.0], &[1.0]);
    }
}
