//! Piecewise-linear interpolation of measured fronts.
//!
//! The Accordion framework characterizes each benchmark by running it at
//! a handful of problem-size points and then interpolates quality and
//! work between them when exploring operating points (paper Section 6.3
//! builds pareto fronts on exactly such measured fronts).

/// A monotone-x piecewise-linear function defined by sample points.
///
/// Evaluation clamps outside the sampled domain (constant
/// extrapolation), which is the conservative choice for quality fronts.
///
/// # Example
///
/// ```
/// use accordion_stats::interp::PiecewiseLinear;
///
/// let f = PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 2.0)]).unwrap();
/// assert_eq!(f.eval(0.5), 1.0);
/// assert_eq!(f.eval(-1.0), 0.0); // clamped
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    pts: Vec<(f64, f64)>,
}

/// Error constructing a [`PiecewiseLinear`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpError {
    /// Fewer than one point was supplied.
    Empty,
    /// The x-coordinates were not strictly increasing.
    NotStrictlyIncreasing,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::Empty => write!(f, "interpolation needs at least one point"),
            InterpError::NotStrictlyIncreasing => {
                write!(f, "interpolation x-coordinates must be strictly increasing")
            }
        }
    }
}

impl std::error::Error for InterpError {}

impl PiecewiseLinear {
    /// Builds an interpolant from `(x, y)` samples with strictly
    /// increasing `x`.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::Empty`] for no points and
    /// [`InterpError::NotStrictlyIncreasing`] if `x` values repeat or
    /// decrease.
    pub fn new(pts: Vec<(f64, f64)>) -> Result<Self, InterpError> {
        if pts.is_empty() {
            return Err(InterpError::Empty);
        }
        for w in pts.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(InterpError::NotStrictlyIncreasing);
            }
        }
        Ok(Self { pts })
    }

    /// Builds an interpolant from unsorted samples, sorting by `x` and
    /// averaging duplicate `x` values.
    pub fn from_samples(mut pts: Vec<(f64, f64)>) -> Result<Self, InterpError> {
        if pts.is_empty() {
            return Err(InterpError::Empty);
        }
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN x-coordinate"));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(pts.len());
        let mut i = 0;
        while i < pts.len() {
            let x = pts[i].0;
            let mut sum = 0.0;
            let mut cnt = 0usize;
            while i < pts.len() && pts[i].0 == x {
                sum += pts[i].1;
                cnt += 1;
                i += 1;
            }
            merged.push((x, sum / cnt as f64));
        }
        Self::new(merged)
    }

    /// Evaluates the interpolant at `x`, clamping outside the domain.
    pub fn eval(&self, x: f64) -> f64 {
        let pts = &self.pts;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the segment containing x.
        let mut lo = 0;
        let mut hi = pts.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if pts[mid].0 <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (x0, y0) = pts[lo];
        let (x1, y1) = pts[hi];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Inverse evaluation: the smallest `x` in the domain with
    /// `eval(x) = y`, assuming the front is monotone non-decreasing.
    /// Returns `None` if `y` is outside the value range.
    pub fn inverse_monotone(&self, y: f64) -> Option<f64> {
        let pts = &self.pts;
        let (ymin, ymax) = (pts[0].1, pts[pts.len() - 1].1);
        if y < ymin.min(ymax) || y > ymin.max(ymax) {
            return None;
        }
        for w in pts.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            let (lo, hi) = (y0.min(y1), y0.max(y1));
            if y >= lo && y <= hi {
                if (y1 - y0).abs() < 1e-300 {
                    return Some(x0);
                }
                return Some(x0 + (x1 - x0) * (y - y0) / (y1 - y0));
            }
        }
        Some(pts[pts.len() - 1].0)
    }

    /// The sampled domain `(x_min, x_max)`.
    pub fn domain(&self) -> (f64, f64) {
        (self.pts[0].0, self.pts[self.pts.len() - 1].0)
    }

    /// The underlying sample points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_interpolates_and_clamps() {
        let f = PiecewiseLinear::new(vec![(0.0, 1.0), (2.0, 3.0), (4.0, 2.0)]).unwrap();
        assert_eq!(f.eval(1.0), 2.0);
        assert_eq!(f.eval(3.0), 2.5);
        assert_eq!(f.eval(-10.0), 1.0);
        assert_eq!(f.eval(10.0), 2.0);
    }

    #[test]
    fn single_point_is_constant() {
        let f = PiecewiseLinear::new(vec![(5.0, 7.0)]).unwrap();
        assert_eq!(f.eval(0.0), 7.0);
        assert_eq!(f.eval(100.0), 7.0);
    }

    #[test]
    fn rejects_non_increasing() {
        assert_eq!(
            PiecewiseLinear::new(vec![(0.0, 0.0), (0.0, 1.0)]).unwrap_err(),
            InterpError::NotStrictlyIncreasing
        );
        assert_eq!(
            PiecewiseLinear::new(vec![]).unwrap_err(),
            InterpError::Empty
        );
    }

    #[test]
    fn from_samples_sorts_and_merges() {
        let f = PiecewiseLinear::from_samples(vec![(2.0, 4.0), (0.0, 0.0), (2.0, 6.0)]).unwrap();
        assert_eq!(f.points(), &[(0.0, 0.0), (2.0, 5.0)]);
    }

    #[test]
    fn inverse_monotone_round_trip() {
        let f = PiecewiseLinear::new(vec![(1.0, 10.0), (2.0, 20.0), (5.0, 50.0)]).unwrap();
        let x = f.inverse_monotone(35.0).unwrap();
        assert!((f.eval(x) - 35.0).abs() < 1e-12);
        assert!(f.inverse_monotone(5.0).is_none());
        assert!(f.inverse_monotone(60.0).is_none());
    }
}
