//! Deterministic, forkable random-number streams.
//!
//! Every stochastic component of the reproduction (chip population,
//! per-core random variation, benchmark inputs, fault injection) draws
//! from a [`StreamRng`] derived from a [`SeedStream`]. Substreams are
//! derived by hashing a label and an index into the parent seed, so
//! adding a new consumer never perturbs the draws seen by existing
//! consumers — a property the 100-chip Monte-Carlo population relies on.

use rand::RngCore;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The concrete RNG used throughout the workspace.
///
/// ChaCha8 is seedable, portable and stable across `rand` releases,
/// unlike `StdRng` whose algorithm is explicitly unspecified.
pub type StreamRng = ChaCha8Rng;

/// A root seed from which independent labelled substreams are derived.
///
/// # Example
///
/// ```
/// use accordion_stats::rng::SeedStream;
/// use rand::Rng;
///
/// let root = SeedStream::new(42);
/// let mut a = root.stream("chip", 0);
/// let mut b = root.stream("chip", 1);
/// let (x, y): (f64, f64) = (a.random(), b.random());
/// assert_ne!(x, y);
///
/// // Re-deriving the same stream reproduces the same draws.
/// let mut a2 = root.stream("chip", 0);
/// assert_eq!(x, a2.random::<f64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedStream {
    seed: u64,
}

impl SeedStream {
    /// Creates a root stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Returns the root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives a child seed-stream for `label`/`index` without
    /// constructing an RNG; useful for passing subtrees of randomness
    /// to other components.
    pub fn fork(&self, label: &str, index: u64) -> SeedStream {
        SeedStream {
            seed: mix(self.seed, label, index),
        }
    }

    /// Derives an independent RNG for `label`/`index`.
    pub fn stream(&self, label: &str, index: u64) -> StreamRng {
        let mut seed = [0u8; 32];
        let mut h = mix(self.seed, label, index);
        for chunk in seed.chunks_mut(8) {
            h = splitmix64(h);
            chunk.copy_from_slice(&h.to_le_bytes());
        }
        StreamRng::from_seed(seed)
    }
}

/// Hash-combine a parent seed with a label and index (FNV-1a over the
/// label, then splitmix64 finalization).
fn mix(seed: u64, label: &str, index: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^= index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64(h)
}

/// The splitmix64 finalizer — a strong 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draws a standard-normal variate using the Box–Muller transform.
///
/// Kept here (rather than pulling in `rand_distr`) to keep the
/// dependency set to the offline-approved list.
pub fn sample_std_normal<R: RngCore>(rng: &mut R) -> f64 {
    // Rejection-free polar-method-ish: draw u in (0,1], v in [0,1).
    let u = loop {
        let u = rand::Rng::random::<f64>(rng);
        if u > 0.0 {
            break u;
        }
    };
    let v: f64 = rand::Rng::random(rng);
    (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic() {
        let s = SeedStream::new(7);
        let a: f64 = s.stream("x", 3).random();
        let b: f64 = s.stream("x", 3).random();
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ_by_label_and_index() {
        let s = SeedStream::new(7);
        let a: u64 = s.stream("x", 0).next_u64();
        let b: u64 = s.stream("x", 1).next_u64();
        let c: u64 = s.stream("y", 0).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn fork_then_stream_matches_nested_derivation() {
        let s = SeedStream::new(99);
        let f = s.fork("chip", 5);
        let a: u64 = f.stream("core", 2).next_u64();
        let b: u64 = s.fork("chip", 5).stream("core", 2).next_u64();
        assert_eq!(a, b);
    }

    #[test]
    fn std_normal_moments() {
        let s = SeedStream::new(123);
        let mut rng = s.stream("normal", 0);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = sample_std_normal(&mut rng);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn splitmix_is_not_identity() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
