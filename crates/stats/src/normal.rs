//! The standard normal distribution: `erf`, CDF `Φ`, inverse CDF `Φ⁻¹`.
//!
//! The variation model needs both tails of the normal distribution at
//! extreme quantiles (timing-error rates down to 1e-16), so the CDF is
//! implemented via a high-accuracy complementary error function and the
//! inverse via Acklam's rational approximation refined with one Halley
//! step.

/// The standard normal distribution (μ = 0, σ = 1).
///
/// # Example
///
/// ```
/// use accordion_stats::normal::StdNormal;
///
/// let z = StdNormal.inv_cdf(0.995);
/// assert!((StdNormal.cdf(z) - 0.995).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StdNormal;

impl StdNormal {
    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
    }

    /// Cumulative distribution function `Φ(x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        0.5 * erfc(-x / std::f64::consts::SQRT_2)
    }

    /// Upper-tail probability `1 − Φ(x)`, accurate for large `x`.
    pub fn sf(&self, x: f64) -> f64 {
        0.5 * erfc(x / std::f64::consts::SQRT_2)
    }

    /// Inverse CDF (quantile function) `Φ⁻¹(p)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1)`.
    pub fn inv_cdf(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "quantile argument must be in (0,1), got {p}"
        );
        let x = acklam_inv_cdf(p);
        // One Halley refinement step using the accurate cdf.
        let e = self.cdf(x) - p;
        let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
        x - u / (1.0 + x * u / 2.0)
    }

    /// Natural log of the upper-tail probability, usable far beyond the
    /// range where `sf` underflows to zero (|x| up to ~1e8).
    pub fn log_sf(&self, x: f64) -> f64 {
        if x < 30.0 {
            let s = self.sf(x);
            if s > 0.0 {
                return s.ln();
            }
        }
        // Asymptotic expansion: ln(φ(x)/x · (1 − 1/x² + 3/x⁴ − …))
        let x2 = x * x;
        -0.5 * x2 - x.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
            + (1.0 - 1.0 / x2 + 3.0 / (x2 * x2)).ln()
    }
}

/// The error function `erf(x)`, |error| < 1.2e-7 everywhere and much
/// better than that away from zero (complement computed directly).
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x)`.
///
/// Uses the Chebyshev-fitted expansion from Numerical Recipes (erfccheb)
/// with double-precision coefficients; relative error below 1e-12 on the
/// positive axis, with symmetry `erfc(-x) = 2 − erfc(x)`.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        erfc_positive(x)
    } else {
        2.0 - erfc_positive(-x)
    }
}

/// Chebyshev coefficients for erfc on x ≥ 0 (Numerical Recipes 3rd ed.).
const ERFC_COF: [f64; 28] = [
    -1.3026537197817094,
    6.419_697_923_564_902e-1,
    1.9476473204185836e-2,
    -9.561_514_786_808_63e-3,
    -9.46595344482036e-4,
    3.66839497852761e-4,
    4.2523324806907e-5,
    -2.0278578112534e-5,
    -1.624290004647e-6,
    1.303655835580e-6,
    1.5626441722e-8,
    -8.5238095915e-8,
    6.529054439e-9,
    5.059343495e-9,
    -9.91364156e-10,
    -2.27365122e-10,
    9.6467911e-11,
    2.394038e-12,
    -6.886027e-12,
    8.94487e-13,
    3.13092e-13,
    -1.12708e-13,
    3.81e-16,
    7.106e-15,
    -1.523e-15,
    -9.4e-17,
    1.21e-16,
    -2.8e-17,
];

fn erfc_positive(z: f64) -> f64 {
    debug_assert!(z >= 0.0);
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    let mut d = 0.0;
    let mut dd = 0.0;
    for j in (1..ERFC_COF.len()).rev() {
        let tmp = d;
        d = ty * d - dd + ERFC_COF[j];
        dd = tmp;
    }
    t * (-z * z + 0.5 * (ERFC_COF[0] + ty * d) - dd).exp()
}

/// Acklam's rational approximation to the normal quantile function.
fn acklam_inv_cdf(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (-1.0, -0.8427007929),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-9, "erf({x})");
        }
    }

    #[test]
    fn erfc_deep_tail() {
        // erfc(5) = 1.5374597944280347e-12
        assert!((erfc(5.0) / 1.5374597944280347e-12 - 1.0).abs() < 1e-6);
        // erfc(8) = 1.1224297172982928e-29
        assert!((erfc(8.0) / 1.1224297172982928e-29 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cdf_symmetry() {
        let n = StdNormal;
        for &x in &[0.1, 0.7, 1.3, 2.9, 4.4] {
            assert!((n.cdf(x) + n.cdf(-x) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn sf_matches_known_quantiles() {
        let n = StdNormal;
        assert!((n.sf(1.6448536269514722) - 0.05).abs() < 1e-10);
        assert!((n.sf(3.090232306167813) - 0.001).abs() < 1e-10);
    }

    #[test]
    fn inv_cdf_round_trip() {
        let n = StdNormal;
        for &p in &[1e-12, 1e-6, 0.01, 0.3, 0.5, 0.8, 0.99, 1.0 - 1e-9] {
            let x = n.inv_cdf(p);
            assert!(
                (n.cdf(x) - p).abs() / p.min(1.0 - p).max(1e-300) < 1e-6,
                "p={p}"
            );
        }
    }

    #[test]
    fn log_sf_extends_past_underflow() {
        let n = StdNormal;
        // At x = 9 the direct sf still works; compare the two paths.
        let direct = n.sf(9.0).ln();
        assert!((n.log_sf(9.0) - direct).abs() < 1e-6);
        // At x = 60 the direct path would underflow; log path stays finite.
        let l = n.log_sf(60.0);
        assert!(l.is_finite() && l < -1000.0);
    }

    #[test]
    #[should_panic(expected = "quantile argument")]
    fn inv_cdf_rejects_out_of_range() {
        StdNormal.inv_cdf(1.5);
    }
}
