//! Spatially correlated Gaussian random fields.
//!
//! VARIUS-style process-variation models describe the *systematic*
//! component of parameter variation (threshold voltage `Vth`, effective
//! channel length `Leff`) as a zero-mean, unit-variance Gaussian random
//! field over the die with an isotropic correlation that decays with
//! distance and vanishes beyond a correlation range `φ` (expressed as a
//! fraction of the chip width). This module samples such fields at an
//! arbitrary set of points via Cholesky factorization of the correlation
//! matrix.

use crate::cholesky::Cholesky;
use crate::rng::sample_std_normal;
use rand::RngCore;

/// Isotropic spatial correlation models `ρ(d)` for distance `d`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CorrelationModel {
    /// The spherical variogram used by VARIUS: correlation decays
    /// smoothly from 1 at `d = 0` to 0 at `d ≥ range`:
    /// `ρ(d) = 1 − 1.5 (d/r) + 0.5 (d/r)³`.
    Spherical {
        /// Correlation range in the same units as the point coordinates.
        range: f64,
    },
    /// Exponential decay `ρ(d) = exp(−3 d / r)` (reaches ≈0.05 at `r`).
    Exponential {
        /// Practical correlation range.
        range: f64,
    },
    /// No spatial correlation (pure random component).
    Independent,
}

impl CorrelationModel {
    /// Evaluates `ρ(d)`.
    pub fn rho(&self, d: f64) -> f64 {
        match *self {
            CorrelationModel::Spherical { range } => {
                if d <= 0.0 {
                    1.0
                } else if d >= range {
                    0.0
                } else {
                    let h = d / range;
                    1.0 - 1.5 * h + 0.5 * h * h * h
                }
            }
            CorrelationModel::Exponential { range } => {
                if d <= 0.0 {
                    1.0
                } else {
                    (-3.0 * d / range).exp()
                }
            }
            CorrelationModel::Independent => {
                if d <= 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Error constructing a correlated field.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldError {
    /// The point set was empty.
    NoPoints,
    /// The correlation matrix could not be factored.
    Factorization(crate::cholesky::NotPositiveDefinite),
}

impl std::fmt::Display for FieldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldError::NoPoints => write!(f, "cannot build a field over zero points"),
            FieldError::Factorization(e) => write!(f, "correlation matrix: {e}"),
        }
    }
}

impl std::error::Error for FieldError {}

/// A sampler of zero-mean, unit-variance Gaussian fields over a fixed
/// point set.
///
/// Construction factors the correlation matrix once (`O(n³)`); each
/// sample is then an `O(n²)` matrix-vector product, so one factorization
/// serves an entire chip population.
///
/// # Example
///
/// ```
/// use accordion_stats::field::{CorrelatedField, CorrelationModel};
/// use accordion_stats::rng::SeedStream;
///
/// let pts: Vec<(f64, f64)> = (0..16).map(|i| ((i % 4) as f64, (i / 4) as f64)).collect();
/// let field = CorrelatedField::new(&pts, CorrelationModel::Spherical { range: 2.0 })?;
/// let mut rng = SeedStream::new(1).stream("field", 0);
/// let sample = field.sample(&mut rng);
/// assert_eq!(sample.len(), 16);
/// # Ok::<(), accordion_stats::field::FieldError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CorrelatedField {
    chol: Cholesky,
    n: usize,
}

impl CorrelatedField {
    /// Builds a field sampler over `points` with the given correlation
    /// model.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::NoPoints`] for an empty point set and
    /// [`FieldError::Factorization`] if the correlation matrix cannot be
    /// factored.
    pub fn new(points: &[(f64, f64)], model: CorrelationModel) -> Result<Self, FieldError> {
        if points.is_empty() {
            return Err(FieldError::NoPoints);
        }
        let n = points.len();
        let mut corr = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let dx = points[i].0 - points[j].0;
                let dy = points[i].1 - points[j].1;
                let d = (dx * dx + dy * dy).sqrt();
                let r = model.rho(d);
                corr[i * n + j] = r;
                corr[j * n + i] = r;
            }
        }
        let chol = Cholesky::factor(&corr, n).map_err(FieldError::Factorization)?;
        Ok(Self { chol, n })
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the field has zero points (never true for a constructed
    /// field; provided for `len`/`is_empty` API symmetry).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Draws one field realization: a vector of `len()` correlated
    /// standard-normal values.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> Vec<f64> {
        let z: Vec<f64> = (0..self.n).map(|_| sample_std_normal(rng)).collect();
        self.chol.mul_vec(&z)
    }
}

/// Builds a regular `nx × ny` grid of points covering a `w × h`
/// rectangle, with points at cell centers. Convenience for placing
/// per-core sample sites on a die.
pub fn grid_points(nx: usize, ny: usize, w: f64, h: f64) -> Vec<(f64, f64)> {
    let mut pts = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            let x = (i as f64 + 0.5) / nx as f64 * w;
            let y = (j as f64 + 0.5) / ny as f64 * h;
            pts.push((x, y));
        }
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedStream;

    #[test]
    fn spherical_rho_boundaries() {
        let m = CorrelationModel::Spherical { range: 2.0 };
        assert_eq!(m.rho(0.0), 1.0);
        assert_eq!(m.rho(2.0), 0.0);
        assert_eq!(m.rho(5.0), 0.0);
        let mid = m.rho(1.0);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn spherical_rho_monotone_decreasing() {
        let m = CorrelationModel::Spherical { range: 1.0 };
        let mut prev = 1.0;
        for k in 1..=20 {
            let r = m.rho(k as f64 / 20.0);
            assert!(r <= prev + 1e-12);
            prev = r;
        }
    }

    #[test]
    fn field_sample_statistics() {
        let pts = grid_points(5, 5, 10.0, 10.0);
        let field = CorrelatedField::new(&pts, CorrelationModel::Spherical { range: 4.0 }).unwrap();
        let mut rng = SeedStream::new(3).stream("f", 0);
        let trials = 4000;
        let n = pts.len();
        let mut mean = vec![0.0; n];
        let mut var = vec![0.0; n];
        let mut cov01 = 0.0;
        for _ in 0..trials {
            let s = field.sample(&mut rng);
            for i in 0..n {
                mean[i] += s[i];
                var[i] += s[i] * s[i];
            }
            cov01 += s[0] * s[1];
        }
        for i in 0..n {
            mean[i] /= trials as f64;
            var[i] = var[i] / trials as f64 - mean[i] * mean[i];
            assert!(mean[i].abs() < 0.08, "mean[{i}]={}", mean[i]);
            assert!((var[i] - 1.0).abs() < 0.1, "var[{i}]={}", var[i]);
        }
        // Neighbouring points (distance 2) under range 4 should correlate
        // near ρ(2) = 1 − 1.5·0.5 + 0.5·0.125 = 0.3125.
        let c = cov01 / trials as f64;
        assert!((c - 0.3125).abs() < 0.08, "cov01={c}");
    }

    #[test]
    fn independent_model_gives_identity() {
        let pts = grid_points(3, 3, 1.0, 1.0);
        let field = CorrelatedField::new(&pts, CorrelationModel::Independent).unwrap();
        // With an identity correlation, L = I, so the sample equals z —
        // two successive samples from distinct RNGs must differ.
        let mut r1 = SeedStream::new(8).stream("a", 0);
        let s = field.sample(&mut r1);
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn empty_points_error() {
        assert_eq!(
            CorrelatedField::new(&[], CorrelationModel::Independent).unwrap_err(),
            FieldError::NoPoints
        );
    }

    #[test]
    fn grid_points_layout() {
        let pts = grid_points(2, 2, 4.0, 2.0);
        assert_eq!(pts, vec![(1.0, 0.5), (3.0, 0.5), (1.0, 1.5), (3.0, 1.5)]);
    }
}
