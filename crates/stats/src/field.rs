//! Spatially correlated Gaussian random fields.
//!
//! VARIUS-style process-variation models describe the *systematic*
//! component of parameter variation (threshold voltage `Vth`, effective
//! channel length `Leff`) as a zero-mean, unit-variance Gaussian random
//! field over the die with an isotropic correlation that decays with
//! distance and vanishes beyond a correlation range `φ` (expressed as a
//! fraction of the chip width). This module samples such fields at an
//! arbitrary set of points via Cholesky factorization of the correlation
//! matrix.
//!
//! # Sparsity
//!
//! The spherical variogram has *compact support*: `ρ(d) = 0` exactly
//! for `d ≥ range`, so on a large die most site pairs are uncorrelated
//! and the correlation matrix is mostly zeros. For such models the
//! field is built sparsity-aware end to end:
//!
//! * candidate neighbor pairs come from a spatial-bin grid instead of
//!   an all-pairs sweep,
//! * sites are reordered internally (reverse Cuthill–McKee) whenever
//!   that tightens the factor's row envelope,
//! * assembly, factorization and per-sample evaluation all run on the
//!   row envelope ([`crate::envelope`]) instead of dense `n × n`
//!   kernels.
//!
//! Models with unbounded support (the exponential variogram) fall back
//! to the dense [`Cholesky`] path. Either engine samples without
//! allocating via [`CorrelatedField::sample_into`].

use crate::cholesky::Cholesky;
use crate::envelope::{EnvelopeCholesky, EnvelopeMatrix};
use crate::rng::sample_std_normal;
use rand::RngCore;
use std::cell::RefCell;

/// Isotropic spatial correlation models `ρ(d)` for distance `d`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CorrelationModel {
    /// The spherical variogram used by VARIUS: correlation decays
    /// smoothly from 1 at `d = 0` to 0 at `d ≥ range`:
    /// `ρ(d) = 1 − 1.5 (d/r) + 0.5 (d/r)³`.
    Spherical {
        /// Correlation range in the same units as the point coordinates.
        range: f64,
    },
    /// Exponential decay `ρ(d) = exp(−3 d / r)` (reaches ≈0.05 at `r`).
    Exponential {
        /// Practical correlation range.
        range: f64,
    },
    /// No spatial correlation (pure random component).
    Independent,
}

impl CorrelationModel {
    /// Evaluates `ρ(d)`.
    pub fn rho(&self, d: f64) -> f64 {
        match *self {
            CorrelationModel::Spherical { range } => {
                if d <= 0.0 {
                    1.0
                } else if d >= range {
                    0.0
                } else {
                    let h = d / range;
                    1.0 - 1.5 * h + 0.5 * h * h * h
                }
            }
            CorrelationModel::Exponential { range } => {
                if d <= 0.0 {
                    1.0
                } else {
                    (-3.0 * d / range).exp()
                }
            }
            CorrelationModel::Independent => {
                if d <= 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// The support radius beyond which `ρ` is exactly zero, or `None`
    /// for models with unbounded support.
    fn support_radius(&self) -> Option<f64> {
        match *self {
            CorrelationModel::Spherical { range } => Some(range.max(0.0)),
            CorrelationModel::Exponential { .. } => None,
            CorrelationModel::Independent => Some(0.0),
        }
    }
}

/// Error constructing a correlated field.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldError {
    /// The point set was empty.
    NoPoints,
    /// The correlation matrix could not be factored.
    Factorization(crate::cholesky::NotPositiveDefinite),
}

impl std::fmt::Display for FieldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldError::NoPoints => write!(f, "cannot build a field over zero points"),
            FieldError::Factorization(e) => write!(f, "correlation matrix: {e}"),
        }
    }
}

impl std::error::Error for FieldError {}

// Per-thread scratch for the permuted-envelope sampling path; sized
// lazily to the largest field sampled on this thread.
thread_local! {
    static SAMPLE_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

#[derive(Debug, Clone)]
enum Engine {
    /// Dense factor over the points in their original order.
    Dense(Cholesky),
    /// Envelope factor over internally reordered points; `order[p]`
    /// is the original index of the site at factor position `p`
    /// (`None` = identity).
    Envelope {
        chol: EnvelopeCholesky,
        order: Option<Vec<u32>>,
    },
}

/// A sampler of zero-mean, unit-variance Gaussian fields over a fixed
/// point set.
///
/// Construction factors the correlation matrix once; each sample is
/// then one matrix–vector product, so one factorization serves an
/// entire chip population. Compact-support models factor on the row
/// envelope (`O(Σ wᵢ²)` instead of `O(n³)`) and sample in `O(Σ wᵢ)`
/// instead of `O(n²)`.
///
/// # Example
///
/// ```
/// use accordion_stats::field::{CorrelatedField, CorrelationModel};
/// use accordion_stats::rng::SeedStream;
///
/// let pts: Vec<(f64, f64)> = (0..16).map(|i| ((i % 4) as f64, (i / 4) as f64)).collect();
/// let field = CorrelatedField::new(&pts, CorrelationModel::Spherical { range: 2.0 })?;
/// let mut rng = SeedStream::new(1).stream("field", 0);
/// let sample = field.sample(&mut rng);
/// assert_eq!(sample.len(), 16);
/// # Ok::<(), accordion_stats::field::FieldError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CorrelatedField {
    engine: Engine,
    n: usize,
}

impl CorrelatedField {
    /// Builds a field sampler over `points` with the given correlation
    /// model, picking the sparse envelope engine when the model has
    /// compact support.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::NoPoints`] for an empty point set and
    /// [`FieldError::Factorization`] if the correlation matrix cannot
    /// be factored.
    pub fn new(points: &[(f64, f64)], model: CorrelationModel) -> Result<Self, FieldError> {
        if points.is_empty() {
            return Err(FieldError::NoPoints);
        }
        match model.support_radius() {
            Some(radius) => Self::new_envelope(points, model, radius),
            None => Self::new_dense(points, model),
        }
    }

    /// Builds a field sampler on the dense Cholesky engine regardless
    /// of the model's support (reference path for equivalence tests
    /// and benchmarks).
    ///
    /// # Errors
    ///
    /// Same contract as [`CorrelatedField::new`].
    pub fn new_dense(points: &[(f64, f64)], model: CorrelationModel) -> Result<Self, FieldError> {
        if points.is_empty() {
            return Err(FieldError::NoPoints);
        }
        let n = points.len();
        let mut corr = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let r = pair_rho(points, model, i, j);
                corr[i * n + j] = r;
                corr[j * n + i] = r;
            }
        }
        let chol = Cholesky::factor(&corr, n).map_err(FieldError::Factorization)?;
        Ok(Self {
            engine: Engine::Dense(chol),
            n,
        })
    }

    fn new_envelope(
        points: &[(f64, f64)],
        model: CorrelationModel,
        radius: f64,
    ) -> Result<Self, FieldError> {
        let n = points.len();
        let adj = neighbor_lists(points, model, radius);

        // Identity-order envelope vs reverse Cuthill–McKee: keep
        // whichever stores less. The choice is a pure function of the
        // point set, so it is deterministic across runs and job counts.
        let first_id = envelope_first_identity(&adj);
        let rcm = rcm_order(&adj);
        let first_rcm = envelope_first_ordered(&adj, &rcm);
        let (order, first) = if envelope_len(&first_rcm) < envelope_len(&first_id) {
            (Some(rcm), first_rcm)
        } else {
            (None, first_id)
        };

        let mut m = EnvelopeMatrix::new(first.clone());
        let site = |p: usize| order.as_ref().map_or(p, |o| o[p] as usize);
        for (i, &fi) in first.iter().enumerate().take(n) {
            let si = site(i);
            for j in fi..=i {
                m.set(i, j, pair_rho(points, model, si, site(j)));
            }
        }
        let chol = m.factor().map_err(FieldError::Factorization)?;
        Ok(Self {
            engine: Engine::Envelope { chol, order },
            n,
        })
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the field has zero points (never true for a constructed
    /// field; provided for `len`/`is_empty` API symmetry).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether the sparse envelope engine is active.
    pub fn is_sparse(&self) -> bool {
        matches!(self.engine, Engine::Envelope { .. })
    }

    /// Number of stored factor entries (envelope entries for the
    /// sparse engine, the full lower triangle for the dense one).
    pub fn factor_stored(&self) -> usize {
        match &self.engine {
            Engine::Dense(_) => self.n * (self.n + 1) / 2,
            Engine::Envelope { chol, .. } => chol.stored_len(),
        }
    }

    /// Draws one field realization: a vector of `len()` correlated
    /// standard-normal values.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.sample_into(rng, &mut out);
        out
    }

    /// Draws one field realization into `out` without allocating
    /// (after per-thread scratch warm-up on the reordered path).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the number of points.
    pub fn sample_into<R: RngCore>(&self, rng: &mut R, out: &mut [f64]) {
        assert_eq!(out.len(), self.n, "output length mismatch");
        match &self.engine {
            Engine::Dense(chol) => {
                fill_std_normal(rng, out);
                chol.mul_in_place(out);
            }
            Engine::Envelope { chol, order: None } => {
                fill_std_normal(rng, out);
                chol.mul_in_place(out);
            }
            Engine::Envelope {
                chol,
                order: Some(order),
            } => SAMPLE_SCRATCH.with(|scratch| {
                // The i.i.d. draws are consumed in factor order; the
                // finished realization is scattered back to the
                // caller's site order.
                let mut z = scratch.borrow_mut();
                z.clear();
                z.resize(self.n, 0.0);
                fill_std_normal(rng, &mut z);
                chol.mul_in_place(&mut z);
                for (p, &s) in order.iter().enumerate() {
                    out[s as usize] = z[p];
                }
            }),
        }
    }
}

fn fill_std_normal<R: RngCore>(rng: &mut R, out: &mut [f64]) {
    for v in out.iter_mut() {
        *v = sample_std_normal(rng);
    }
}

/// Correlation between two sites, computed identically to the dense
/// assembly (same subtraction order, same distance expression).
#[inline]
fn pair_rho(points: &[(f64, f64)], model: CorrelationModel, i: usize, j: usize) -> f64 {
    let dx = points[i].0 - points[j].0;
    let dy = points[i].1 - points[j].1;
    model.rho((dx * dx + dy * dy).sqrt())
}

/// Structurally-correlated neighbors of every site (`ρ ≠ 0`, self
/// excluded), found through a spatial-bin grid so compact-support
/// models never evaluate beyond-range pairs.
fn neighbor_lists(points: &[(f64, f64)], model: CorrelationModel, radius: f64) -> Vec<Vec<u32>> {
    let n = points.len();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    if radius <= 0.0 {
        // Only exactly coincident sites correlate; coincident pairs
        // still matter (they make the matrix singular and exercise
        // the jitter path), so bin by exact coordinates.
        use std::collections::HashMap;
        let mut by_pos: HashMap<(u64, u64), Vec<u32>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            by_pos
                .entry((p.0.to_bits(), p.1.to_bits()))
                .or_default()
                .push(i as u32);
        }
        for group in by_pos.values() {
            for &i in group {
                for &j in group {
                    if i != j {
                        adj[i as usize].push(j);
                    }
                }
            }
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        return adj;
    }

    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &(x, y) in points {
        min_x = min_x.min(x);
        min_y = min_y.min(y);
        max_x = max_x.max(x);
        max_y = max_y.max(y);
    }
    // Cell size ≥ radius so a 3×3 cell neighborhood covers every
    // within-radius pair; the cell count is capped so pathological
    // radii cannot blow up the grid.
    let cells = |extent: f64| ((extent / radius).floor() as usize).clamp(1, 256);
    let nx = cells(max_x - min_x);
    let ny = cells(max_y - min_y);
    let cell_w = ((max_x - min_x) / nx as f64).max(radius);
    let cell_h = ((max_y - min_y) / ny as f64).max(radius);
    let bin_of = |x: f64, y: f64| {
        let bx = (((x - min_x) / cell_w) as usize).min(nx - 1);
        let by = (((y - min_y) / cell_h) as usize).min(ny - 1);
        by * nx + bx
    };
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); nx * ny];
    for (i, &(x, y)) in points.iter().enumerate() {
        bins[bin_of(x, y)].push(i as u32);
    }
    for (i, &(x, y)) in points.iter().enumerate() {
        let bx = (((x - min_x) / cell_w) as usize).min(nx - 1);
        let by = (((y - min_y) / cell_h) as usize).min(ny - 1);
        for cy in by.saturating_sub(1)..=(by + 1).min(ny - 1) {
            for cx in bx.saturating_sub(1)..=(bx + 1).min(nx - 1) {
                for &j in &bins[cy * nx + cx] {
                    if j as usize != i && pair_rho(points, model, i, j as usize) != 0.0 {
                        adj[i].push(j);
                    }
                }
            }
        }
    }
    for l in &mut adj {
        l.sort_unstable();
    }
    adj
}

/// Row envelope starts under the identity ordering.
fn envelope_first_identity(adj: &[Vec<u32>]) -> Vec<usize> {
    adj.iter()
        .enumerate()
        .map(|(i, nbrs)| nbrs.first().map_or(i, |&j| (j as usize).min(i)))
        .collect()
}

/// Row envelope starts after permuting sites so that factor position
/// `p` holds original site `order[p]`.
fn envelope_first_ordered(adj: &[Vec<u32>], order: &[u32]) -> Vec<usize> {
    let n = adj.len();
    let mut pos = vec![0u32; n];
    for (p, &s) in order.iter().enumerate() {
        pos[s as usize] = p as u32;
    }
    (0..n)
        .map(|p| {
            adj[order[p] as usize]
                .iter()
                .map(|&j| pos[j as usize] as usize)
                .fold(p, usize::min)
        })
        .collect()
}

/// Total stored entries for a row envelope.
fn envelope_len(first: &[usize]) -> usize {
    first.iter().enumerate().map(|(i, &f)| i - f + 1).sum()
}

/// Reverse Cuthill–McKee ordering of the correlation graph:
/// breadth-first from a minimum-degree seed, visiting neighbors in
/// (degree, index) order, then reversed. Fully deterministic.
fn rcm_order(adj: &[Vec<u32>]) -> Vec<u32> {
    let n = adj.len();
    let deg: Vec<u32> = adj.iter().map(|a| a.len() as u32).collect();
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut frontier: Vec<u32> = Vec::new();
    let mut head = 0usize;
    while order.len() < n {
        // Seed the next component at its minimum-degree site.
        let seed = (0..n)
            .filter(|&i| !visited[i])
            .min_by_key(|&i| (deg[i], i))
            .expect("an unvisited site exists") as u32;
        visited[seed as usize] = true;
        order.push(seed);
        while head < order.len() {
            let v = order[head] as usize;
            head += 1;
            frontier.clear();
            for &j in &adj[v] {
                if !visited[j as usize] {
                    visited[j as usize] = true;
                    frontier.push(j);
                }
            }
            frontier.sort_unstable_by_key(|&j| (deg[j as usize], j));
            order.extend_from_slice(&frontier);
        }
    }
    order.reverse();
    order
}

/// Builds a regular `nx × ny` grid of points covering a `w × h`
/// rectangle, with points at cell centers. Convenience for placing
/// per-core sample sites on a die.
pub fn grid_points(nx: usize, ny: usize, w: f64, h: f64) -> Vec<(f64, f64)> {
    let mut pts = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            let x = (i as f64 + 0.5) / nx as f64 * w;
            let y = (j as f64 + 0.5) / ny as f64 * h;
            pts.push((x, y));
        }
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedStream;

    #[test]
    fn spherical_rho_boundaries() {
        let m = CorrelationModel::Spherical { range: 2.0 };
        assert_eq!(m.rho(0.0), 1.0);
        assert_eq!(m.rho(2.0), 0.0);
        assert_eq!(m.rho(5.0), 0.0);
        let mid = m.rho(1.0);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn spherical_rho_monotone_decreasing() {
        let m = CorrelationModel::Spherical { range: 1.0 };
        let mut prev = 1.0;
        for k in 1..=20 {
            let r = m.rho(k as f64 / 20.0);
            assert!(r <= prev + 1e-12);
            prev = r;
        }
    }

    #[test]
    fn field_sample_statistics() {
        let pts = grid_points(5, 5, 10.0, 10.0);
        let field = CorrelatedField::new(&pts, CorrelationModel::Spherical { range: 4.0 }).unwrap();
        let mut rng = SeedStream::new(3).stream("f", 0);
        let trials = 4000;
        let n = pts.len();
        let mut mean = vec![0.0; n];
        let mut var = vec![0.0; n];
        let mut cov01 = 0.0;
        for _ in 0..trials {
            let s = field.sample(&mut rng);
            for i in 0..n {
                mean[i] += s[i];
                var[i] += s[i] * s[i];
            }
            cov01 += s[0] * s[1];
        }
        for i in 0..n {
            mean[i] /= trials as f64;
            var[i] = var[i] / trials as f64 - mean[i] * mean[i];
            assert!(mean[i].abs() < 0.08, "mean[{i}]={}", mean[i]);
            assert!((var[i] - 1.0).abs() < 0.1, "var[{i}]={}", var[i]);
        }
        // Neighbouring points (distance 2) under range 4 should correlate
        // near ρ(2) = 1 − 1.5·0.5 + 0.5·0.125 = 0.3125.
        let c = cov01 / trials as f64;
        assert!((c - 0.3125).abs() < 0.08, "cov01={c}");
    }

    #[test]
    fn compact_support_uses_envelope_engine() {
        let pts = grid_points(8, 8, 20.0, 20.0);
        let sparse =
            CorrelatedField::new(&pts, CorrelationModel::Spherical { range: 3.0 }).unwrap();
        assert!(sparse.is_sparse());
        assert!(
            sparse.factor_stored() < 64 * 65 / 2,
            "envelope {} should beat dense",
            sparse.factor_stored()
        );
        let dense =
            CorrelatedField::new(&pts, CorrelationModel::Exponential { range: 3.0 }).unwrap();
        assert!(!dense.is_sparse());
        assert_eq!(dense.factor_stored(), 64 * 65 / 2);
    }

    #[test]
    fn envelope_and_dense_engines_agree_statistically() {
        // Same correlation structure through both engines: second
        // moments must match within Monte-Carlo noise even though the
        // internal site ordering differs.
        let pts = grid_points(4, 4, 8.0, 8.0);
        let model = CorrelationModel::Spherical { range: 3.0 };
        let sparse = CorrelatedField::new(&pts, model).unwrap();
        let dense = CorrelatedField::new_dense(&pts, model).unwrap();
        let trials = 6000;
        let mut cov = [[0.0f64; 2]; 2];
        let root = SeedStream::new(11);
        for (e, field) in [&sparse, &dense].into_iter().enumerate() {
            let mut rng = root.stream("engine", e as u64);
            for _ in 0..trials {
                let s = field.sample(&mut rng);
                cov[e][0] += s[0] * s[1] / trials as f64;
                cov[e][1] += s[0] * s[5] / trials as f64;
            }
        }
        assert!((cov[0][0] - cov[1][0]).abs() < 0.06, "{cov:?}");
        assert!((cov[0][1] - cov[1][1]).abs() < 0.06, "{cov:?}");
    }

    #[test]
    fn sample_into_matches_sample() {
        let pts = grid_points(6, 6, 20.0, 20.0);
        for model in [
            CorrelationModel::Spherical { range: 4.0 },
            CorrelationModel::Exponential { range: 4.0 },
            CorrelationModel::Independent,
        ] {
            let field = CorrelatedField::new(&pts, model).unwrap();
            let root = SeedStream::new(5);
            let a = field.sample(&mut root.stream("s", 0));
            let mut b = vec![0.0; pts.len()];
            field.sample_into(&mut root.stream("s", 0), &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn independent_model_gives_identity() {
        let pts = grid_points(3, 3, 1.0, 1.0);
        let field = CorrelatedField::new(&pts, CorrelationModel::Independent).unwrap();
        // With an identity correlation, L = I, so the sample equals z —
        // two successive samples from distinct RNGs must differ.
        let mut r1 = SeedStream::new(8).stream("a", 0);
        let s = field.sample(&mut r1);
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn coincident_sites_survive_via_jitter() {
        // Duplicate sites make the correlation matrix singular; the
        // envelope engine must take the same jitter path as the dense
        // one and still produce ρ ≈ 1 between the twins.
        let mut pts = grid_points(3, 3, 9.0, 9.0);
        pts.push(pts[4]);
        let field = CorrelatedField::new(&pts, CorrelationModel::Spherical { range: 4.0 }).unwrap();
        let mut rng = SeedStream::new(2).stream("twin", 0);
        for _ in 0..20 {
            let s = field.sample(&mut rng);
            assert!((s[4] - s[9]).abs() < 1e-3, "twin sites must track");
        }
    }

    #[test]
    fn empty_points_error() {
        assert_eq!(
            CorrelatedField::new(&[], CorrelationModel::Independent).unwrap_err(),
            FieldError::NoPoints
        );
        assert_eq!(
            CorrelatedField::new_dense(&[], CorrelationModel::Independent).unwrap_err(),
            FieldError::NoPoints
        );
    }

    #[test]
    fn grid_points_layout() {
        let pts = grid_points(2, 2, 4.0, 2.0);
        assert_eq!(pts, vec![(1.0, 0.5), (3.0, 0.5), (1.0, 1.5), (3.0, 1.5)]);
    }

    #[test]
    fn rcm_reduces_envelope_on_cores_then_mems_layout() {
        // A layout listing all cores first and their co-located
        // memories second is the worst case for the identity order:
        // every memory row reaches back across all cores. RCM must
        // interleave them.
        let cores = grid_points(6, 6, 20.0, 20.0);
        let mut pts = cores.clone();
        pts.extend(cores.iter().map(|&(x, y)| (x + 0.1, y)));
        let model = CorrelationModel::Spherical { range: 2.0 };
        let adj = neighbor_lists(&pts, model, 2.0);
        let id = envelope_len(&envelope_first_identity(&adj));
        let rcm = rcm_order(&adj);
        let ordered = envelope_len(&envelope_first_ordered(&adj, &rcm));
        assert!(
            ordered * 2 < id,
            "RCM {ordered} should at least halve identity {id}"
        );
    }
}
