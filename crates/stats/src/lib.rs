//! Statistical substrate for the Accordion NTC reproduction.
//!
//! This crate provides the numerical building blocks that the variation
//! model, the technology model, and the benchmark quality metrics are
//! built on:
//!
//! * deterministic, forkable random-number streams ([`rng`]),
//! * the standard normal distribution with accurate `erf`, CDF and
//!   inverse-CDF implementations ([`normal`]),
//! * dense Cholesky factorization for sampling correlated Gaussians
//!   ([`cholesky`]) and an envelope (skyline) factorization for
//!   compact-support correlation structures ([`envelope`]),
//! * spatially correlated Gaussian random fields with a spherical
//!   correlation structure, as used by VARIUS-style process-variation
//!   models ([`field`]),
//! * histograms, descriptive statistics, piecewise-linear
//!   interpolation and least-squares fitting ([`histogram`],
//!   [`summary`], [`interp`], [`fit`]),
//! * signal/image quality metrics — SSD, PSNR, SSIM and the distortion
//!   metric of Misailovic et al. ([`metrics`]).
//!
//! # Example
//!
//! ```
//! use accordion_stats::normal::StdNormal;
//!
//! let p = StdNormal.cdf(1.96);
//! assert!((p - 0.975).abs() < 1e-3);
//! ```

pub mod cholesky;
pub mod envelope;
pub mod field;
pub mod fit;
pub mod histogram;
pub mod interp;
pub mod metrics;
pub mod normal;
pub mod rng;
pub mod summary;

pub use cholesky::Cholesky;
pub use envelope::{EnvelopeCholesky, EnvelopeMatrix};
pub use field::{CorrelatedField, CorrelationModel, FieldError};
pub use fit::{line_fit, power_fit, LineFit};
pub use histogram::Histogram;
pub use interp::PiecewiseLinear;
pub use normal::StdNormal;
pub use rng::{SeedStream, StreamRng};
pub use summary::Summary;
