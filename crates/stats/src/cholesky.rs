//! Dense Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used to sample spatially correlated Gaussian vectors: if `Σ = L·Lᵀ`
//! and `z` is i.i.d. standard normal, then `L·z` has covariance `Σ`.
//! Correlation matrices built from empirical variograms can be very
//! slightly indefinite due to rounding, so the factorization supports a
//! diagonal jitter retry.

/// A lower-triangular Cholesky factor `L` with `Σ = L·Lᵀ`.
///
/// # Example
///
/// ```
/// use accordion_stats::cholesky::Cholesky;
///
/// let sigma = vec![4.0, 2.0, 2.0, 3.0]; // 2×2 row-major
/// let ch = Cholesky::factor(&sigma, 2).unwrap();
/// let y = ch.mul_vec(&[1.0, 0.0]);
/// assert!((y[0] - 2.0).abs() < 1e-12); // L[0][0] = √4
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    /// Row-major lower-triangular factor (upper part zero).
    l: Vec<f64>,
}

/// Error returned when a matrix cannot be factored even with jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct NotPositiveDefinite {
    /// Index of the first pivot that failed.
    pub pivot: usize,
    /// Value of the failing pivot.
    pub value: f64,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite (pivot {} = {:.3e})",
            self.pivot, self.value
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

impl Cholesky {
    /// Factors the `n × n` row-major symmetric matrix `a`.
    ///
    /// Retries with exponentially growing diagonal jitter (starting at
    /// `1e-10 · max_diag`) up to 6 times before giving up, which makes
    /// numerically semi-definite correlation matrices usable.
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefinite`] if the matrix remains indefinite
    /// after the jitter retries.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n * n`.
    pub fn factor(a: &[f64], n: usize) -> Result<Self, NotPositiveDefinite> {
        assert_eq!(a.len(), n * n, "matrix size mismatch");
        let max_diag = (0..n).map(|i| a[i * n + i]).fold(0.0_f64, f64::max);
        let mut jitter = 0.0;
        let mut last_err = NotPositiveDefinite {
            pivot: 0,
            value: 0.0,
        };
        for attempt in 0..7 {
            match Self::try_factor(a, n, jitter) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    last_err = e;
                    jitter = if attempt == 0 {
                        1e-10 * max_diag.max(1.0)
                    } else {
                        jitter * 100.0
                    };
                }
            }
        }
        Err(last_err)
    }

    fn try_factor(a: &[f64], n: usize, jitter: f64) -> Result<Self, NotPositiveDefinite> {
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[i * n + j];
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(NotPositiveDefinite {
                            pivot: i,
                            value: sum,
                        });
                    }
                    l[i * n + j] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Ok(Self { n, l })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads `L[i][j]` from the lower triangle (`j <= i`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range or above the diagonal.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.n && j <= i,
            "index ({i},{j}) not in lower triangle"
        );
        self.l[i * self.n + j]
    }

    /// Computes `L · z`.
    ///
    /// # Panics
    ///
    /// Panics if `z.len()` differs from the matrix dimension.
    pub fn mul_vec(&self, z: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.mul_vec_into(z, &mut out);
        out
    }

    /// Computes `L · z` into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `z.len()` or `out.len()` differ from the matrix
    /// dimension.
    pub fn mul_vec_into(&self, z: &[f64], out: &mut [f64]) {
        assert_eq!(z.len(), self.n, "vector length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.row_dot(i, z);
        }
    }

    /// Computes `L · z` in place. Rows are evaluated bottom-up:
    /// `y[i]` depends only on `z[..=i]`, so overwriting `z[i]` after
    /// computing row `i` never corrupts a later (lower-index) row.
    ///
    /// # Panics
    ///
    /// Panics if `z.len()` differs from the matrix dimension.
    pub fn mul_in_place(&self, z: &mut [f64]) {
        assert_eq!(z.len(), self.n, "vector length mismatch");
        for i in (0..self.n).rev() {
            z[i] = self.row_dot(i, z);
        }
    }

    #[inline]
    fn row_dot(&self, i: usize, z: &[f64]) -> f64 {
        let row = &self.l[i * self.n..i * self.n + i + 1];
        row.iter().zip(z).map(|(lik, zk)| lik * zk).sum()
    }

    /// Reconstructs `Σ[i][j] = Σₖ L[i][k]·L[j][k]` (for testing and
    /// diagnostics).
    pub fn reconstruct(&self) -> Vec<f64> {
        let n = self.n;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..=i.min(j) {
                    s += self.l[i * n + k] * self.l[j * n + k];
                }
                a[i * n + j] = s;
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn factor_identity() {
        let n = 4;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let ch = Cholesky::factor(&a, n).unwrap();
        assert!(max_abs_diff(&ch.reconstruct(), &a) < 1e-14);
    }

    #[test]
    fn factor_known_matrix() {
        // A = [[25, 15, -5], [15, 18, 0], [-5, 0, 11]]
        // L = [[5,0,0],[3,3,0],[-1,1,3]]
        let a = vec![25.0, 15.0, -5.0, 15.0, 18.0, 0.0, -5.0, 0.0, 11.0];
        let ch = Cholesky::factor(&a, 3).unwrap();
        let y = ch.mul_vec(&[1.0, 0.0, 0.0]);
        assert!((y[0] - 5.0).abs() < 1e-12);
        assert!((y[1] - 3.0).abs() < 1e-12);
        assert!((y[2] + 1.0).abs() < 1e-12);
        assert!(max_abs_diff(&ch.reconstruct(), &a) < 1e-12);
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-1 correlation-ish matrix (perfect correlation) is PSD but
        // not PD; jitter should rescue it.
        let a = vec![1.0, 1.0, 1.0, 1.0];
        let ch = Cholesky::factor(&a, 2).unwrap();
        let r = ch.reconstruct();
        assert!(max_abs_diff(&r, &a) < 1e-6);
    }

    #[test]
    fn rejects_negative_definite() {
        let a = vec![-1.0, 0.0, 0.0, -1.0];
        assert!(Cholesky::factor(&a, 2).is_err());
    }

    #[test]
    fn mul_vec_produces_target_covariance_statistically() {
        use crate::rng::{sample_std_normal, SeedStream};
        let a = vec![1.0, 0.6, 0.6, 1.0];
        let ch = Cholesky::factor(&a, 2).unwrap();
        let mut rng = SeedStream::new(5).stream("chol", 0);
        let n = 100_000;
        let (mut sxy, mut sx2, mut sy2) = (0.0, 0.0, 0.0);
        for _ in 0..n {
            let z = [sample_std_normal(&mut rng), sample_std_normal(&mut rng)];
            let y = ch.mul_vec(&z);
            sxy += y[0] * y[1];
            sx2 += y[0] * y[0];
            sy2 += y[1] * y[1];
        }
        let corr = sxy / (sx2.sqrt() * sy2.sqrt());
        assert!((corr - 0.6).abs() < 0.02, "corr={corr}");
    }
}
