//! Descriptive statistics over slices of `f64`.

/// Summary statistics of a non-empty sample.
///
/// # Example
///
/// ```
/// use accordion_stats::summary::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation (divide by `n`).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics; returns `None` for an empty slice.
    pub fn of(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Self {
            n,
            mean,
            std: var.sqrt(),
            min,
            max,
        })
    }

    /// Coefficient of variation `σ/μ`; `None` when the mean is zero.
    pub fn cv(&self) -> Option<f64> {
        if self.mean == 0.0 {
            None
        } else {
            Some(self.std / self.mean.abs())
        }
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of a sample by linear
/// interpolation between order statistics.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile order must be in [0,1]");
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let t = pos - lo as f64;
        v[lo] * (1.0 - t) + v[hi] * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.0).abs() < 1e-12);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn cv_of_zero_mean() {
        let s = Summary::of(&[-1.0, 1.0]).unwrap();
        assert!(s.cv().is_none());
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(quantile(&xs, 0.5), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }
}
