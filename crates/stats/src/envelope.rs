//! Envelope (skyline) Cholesky factorization for sparse symmetric
//! positive-definite matrices with compact-support structure.
//!
//! Correlation matrices built from compact-support variograms (the
//! spherical model vanishes beyond its range) are mostly zero: on the
//! paper-default 612-site plan with φ = 0.1, over 90 % of site pairs
//! have exactly ρ = 0. Cholesky factorization without pivoting cannot
//! fill in outside the *row envelope* — for row `i`, the columns
//! `first[i]..=i` where `first[i]` is the first structurally nonzero
//! column — so storing and factoring only the envelope turns the
//! `O(n³)` dense factorization into `O(Σᵢ wᵢ²)` and the `O(n²)`
//! matrix–vector product into `O(Σᵢ wᵢ)`, where `wᵢ = i − first[i] + 1`
//! is the row width.
//!
//! The arithmetic visits the same nonzero terms in the same order as
//! the dense kernel in [`crate::cholesky`], so for a matrix whose zero
//! pattern matches the declared envelope the factor (and the jitter
//! retry schedule) is bit-for-bit identical to
//! [`Cholesky::factor`](crate::cholesky::Cholesky::factor) — a
//! property the `accordion-stats` test suite pins with proptest.

use crate::cholesky::NotPositiveDefinite;

/// A symmetric matrix stored by its lower row envelope (skyline).
///
/// Row `i` stores columns `first[i]..=i` contiguously; entries outside
/// the envelope are structurally zero. The upper triangle is implied
/// by symmetry.
///
/// # Example
///
/// ```
/// use accordion_stats::envelope::EnvelopeMatrix;
///
/// // Tridiagonal 3×3: envelope rows are [0..=0], [0..=1], [1..=2].
/// let mut m = EnvelopeMatrix::new(vec![0, 0, 1]);
/// for i in 0..3 {
///     m.set(i, i, 2.0);
/// }
/// m.set(1, 0, -1.0);
/// m.set(2, 1, -1.0);
/// let l = m.factor().unwrap();
/// assert_eq!(l.dim(), 3);
/// assert!(l.stored_len() < 6); // strictly below dense lower-triangle
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopeMatrix {
    n: usize,
    first: Vec<usize>,
    start: Vec<usize>,
    vals: Vec<f64>,
}

impl EnvelopeMatrix {
    /// Creates a zero matrix with the given row envelope: row `i`
    /// holds columns `first[i]..=i`.
    ///
    /// # Panics
    ///
    /// Panics if any `first[i] > i`.
    pub fn new(first: Vec<usize>) -> Self {
        let n = first.len();
        let mut start = Vec::with_capacity(n + 1);
        let mut total = 0usize;
        for (i, &f) in first.iter().enumerate() {
            assert!(f <= i, "row {i}: envelope start {f} beyond diagonal");
            start.push(total);
            total += i - f + 1;
        }
        start.push(total);
        Self {
            n,
            first,
            start,
            vals: vec![0.0; total],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored (envelope) entries in the lower triangle.
    pub fn stored_len(&self) -> usize {
        self.vals.len()
    }

    /// Sets `A[i][j]` (lower triangle, `first[i] <= j <= i`).
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` lies outside the stored envelope.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.n && j <= i && j >= self.first[i],
            "entry ({i},{j}) outside the row envelope"
        );
        self.vals[self.start[i] + (j - self.first[i])] = v;
    }

    /// Reads `A[i][j]` from the lower triangle (`j <= i`); entries
    /// outside the envelope are structurally zero.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if j < self.first[i] {
            0.0
        } else {
            self.vals[self.start[i] + (j - self.first[i])]
        }
    }

    /// Factors the matrix as `L·Lᵀ`, retrying with the same
    /// exponentially growing diagonal jitter schedule as the dense
    /// [`Cholesky::factor`](crate::cholesky::Cholesky::factor) (six
    /// retries starting at `1e-10 · max_diag`).
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefinite`] if the matrix remains
    /// indefinite after the jitter retries.
    pub fn factor(&self) -> Result<EnvelopeCholesky, NotPositiveDefinite> {
        let max_diag = (0..self.n).map(|i| self.get(i, i)).fold(0.0_f64, f64::max);
        let mut jitter = 0.0;
        let mut last_err = NotPositiveDefinite {
            pivot: 0,
            value: 0.0,
        };
        for attempt in 0..7 {
            match self.try_factor(jitter) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    last_err = e;
                    jitter = if attempt == 0 {
                        1e-10 * max_diag.max(1.0)
                    } else {
                        jitter * 100.0
                    };
                }
            }
        }
        Err(last_err)
    }

    fn try_factor(&self, jitter: f64) -> Result<EnvelopeCholesky, NotPositiveDefinite> {
        let n = self.n;
        let first = &self.first;
        let start = &self.start;
        let mut l = vec![0.0; self.vals.len()];
        for i in 0..n {
            let fi = first[i];
            // Rows `0..i` of L are finished; row `i` is being built.
            let (done, cur) = l.split_at_mut(start[i]);
            let row_i = &mut cur[..i + 1 - fi];
            for j in fi..=i {
                let mut sum = self.vals[start[i] + (j - fi)];
                if i == j {
                    sum += jitter;
                }
                let fj = first[j];
                let lo = fi.max(fj);
                if j == i {
                    for &x in &row_i[(lo - fi)..(j - fi)] {
                        sum -= x * x;
                    }
                    if sum <= 0.0 {
                        return Err(NotPositiveDefinite {
                            pivot: i,
                            value: sum,
                        });
                    }
                    row_i[j - fi] = sum.sqrt();
                } else {
                    let row_j = &done[start[j] + (lo - fj)..start[j] + (j - fj)];
                    for (x, y) in row_i[(lo - fi)..(j - fi)].iter().zip(row_j) {
                        sum -= x * y;
                    }
                    row_i[j - fi] = sum / done[start[j] + (j - fj)];
                }
            }
        }
        Ok(EnvelopeCholesky {
            n,
            first: first.clone(),
            start: start.clone(),
            vals: l,
        })
    }
}

/// A lower-triangular Cholesky factor stored by its row envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopeCholesky {
    n: usize,
    first: Vec<usize>,
    start: Vec<usize>,
    vals: Vec<f64>,
}

impl EnvelopeCholesky {
    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored (envelope) entries.
    pub fn stored_len(&self) -> usize {
        self.vals.len()
    }

    /// Stored fraction of the dense lower triangle, in `0..=1`.
    pub fn occupancy(&self) -> f64 {
        let dense = self.n * (self.n + 1) / 2;
        if dense == 0 {
            1.0
        } else {
            self.vals.len() as f64 / dense as f64
        }
    }

    /// Reads `L[i][j]` (`j <= i`); entries outside the envelope are
    /// structurally zero.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if j < self.first[i] {
            0.0
        } else {
            self.vals[self.start[i] + (j - self.first[i])]
        }
    }

    /// Computes `L · z` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `z.len()` differs from the matrix dimension.
    pub fn mul_vec(&self, z: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.mul_vec_into(z, &mut out);
        out
    }

    /// Computes `L · z` into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `z.len()` or `out.len()` differ from the matrix
    /// dimension.
    pub fn mul_vec_into(&self, z: &[f64], out: &mut [f64]) {
        assert_eq!(z.len(), self.n, "vector length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.row_dot(i, z);
        }
    }

    /// Computes `L · z` in place. Rows are evaluated from the bottom
    /// up: `y[i]` depends only on `z[..=i]`, so overwriting `z[i]`
    /// after computing row `i` never corrupts a later (lower-index)
    /// row. The per-row dot product matches [`Self::mul_vec_into`]
    /// term for term.
    ///
    /// # Panics
    ///
    /// Panics if `z.len()` differs from the matrix dimension.
    pub fn mul_in_place(&self, z: &mut [f64]) {
        assert_eq!(z.len(), self.n, "vector length mismatch");
        for i in (0..self.n).rev() {
            z[i] = self.row_dot(i, z);
        }
    }

    #[inline]
    fn row_dot(&self, i: usize, z: &[f64]) -> f64 {
        let fi = self.first[i];
        let row = &self.vals[self.start[i]..self.start[i + 1]];
        let mut s = 0.0;
        for (lik, zk) in row.iter().zip(&z[fi..=i]) {
            s += lik * zk;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::Cholesky;

    /// Dense mirror of an envelope matrix (upper triangle by symmetry).
    fn to_dense(m: &EnvelopeMatrix) -> Vec<f64> {
        let n = m.dim();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                a[i * n + j] = m.get(i, j);
                a[j * n + i] = m.get(i, j);
            }
        }
        a
    }

    fn tridiagonal(n: usize) -> EnvelopeMatrix {
        let first: Vec<usize> = (0..n).map(|i| i.saturating_sub(1)).collect();
        let mut m = EnvelopeMatrix::new(first);
        for i in 0..n {
            m.set(i, i, 2.0);
            if i > 0 {
                m.set(i, i - 1, -1.0);
            }
        }
        m
    }

    #[test]
    fn matches_dense_on_tridiagonal() {
        let m = tridiagonal(8);
        let dense = Cholesky::factor(&to_dense(&m), 8).unwrap();
        let env = m.factor().unwrap();
        for i in 0..8 {
            for j in 0..=i {
                assert_eq!(env.get(i, j), dense.get(i, j), "L[{i}][{j}]");
            }
        }
    }

    #[test]
    fn mul_variants_agree() {
        let env = tridiagonal(6).factor().unwrap();
        let z: Vec<f64> = (0..6).map(|i| 0.3 * i as f64 - 1.0).collect();
        let a = env.mul_vec(&z);
        let mut b = vec![0.0; 6];
        env.mul_vec_into(&z, &mut b);
        let mut c = z.clone();
        env.mul_in_place(&mut c);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn diagonal_envelope_is_trivial() {
        let mut m = EnvelopeMatrix::new(vec![0, 1, 2, 3]);
        for i in 0..4 {
            m.set(i, i, 4.0);
        }
        let l = m.factor().unwrap();
        assert_eq!(l.stored_len(), 4);
        assert_eq!(l.occupancy(), 0.4);
        let mut z = vec![1.0, 2.0, 3.0, 4.0];
        l.mul_in_place(&mut z);
        assert_eq!(z, vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn jitter_rescues_semidefinite_envelope() {
        // Full envelope, perfectly correlated 2×2 — PSD but not PD.
        let mut m = EnvelopeMatrix::new(vec![0, 0]);
        m.set(0, 0, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 1.0);
        let dense = Cholesky::factor(&to_dense(&m), 2).unwrap();
        let env = m.factor().unwrap();
        for i in 0..2 {
            for j in 0..=i {
                assert_eq!(env.get(i, j), dense.get(i, j));
            }
        }
    }

    #[test]
    fn rejects_negative_definite() {
        let mut m = EnvelopeMatrix::new(vec![0, 1]);
        m.set(0, 0, -1.0);
        m.set(1, 1, -1.0);
        let err = m.factor().unwrap_err();
        assert_eq!(err.pivot, 0);
    }

    #[test]
    #[should_panic(expected = "outside the row envelope")]
    fn set_outside_envelope_panics() {
        let mut m = EnvelopeMatrix::new(vec![0, 1, 2]);
        m.set(2, 0, 1.0);
    }
}
