//! Output-quality metrics for the RMS benchmarks.
//!
//! The paper (Section 5.2) measures quality as `1 − distortion`, where
//! distortion is the average relative error per output value
//! (Misailovic et al.), computed with an application-specific inner
//! metric: SSD for `bodytrack`/`hotspot`, SSIM for `x264`, PSNR for
//! `srad`, common-image count for `ferret`, and relative routing cost
//! for `canneal`. The generic pieces live here.

/// Sum of squared differences between two equally sized slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn ssd(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "ssd over mismatched lengths");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Mean squared error between two equally sized slices.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty(), "mse of empty slices");
    ssd(a, b) / a.len() as f64
}

/// Peak signal-to-noise ratio in dB for signals with the given peak
/// value. Returns `f64::INFINITY` for identical inputs.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or `peak <= 0`.
pub fn psnr(a: &[f64], b: &[f64], peak: f64) -> f64 {
    assert!(peak > 0.0, "psnr peak must be positive");
    let m = mse(a, b);
    if m == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (peak * peak / m).log10()
    }
}

/// Average relative error per output value — the distortion metric of
/// Misailovic et al. Output values whose reference magnitude is below
/// `eps` contribute absolute error instead (avoids division blow-up).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn distortion(output: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(
        output.len(),
        reference.len(),
        "distortion over mismatched lengths"
    );
    assert!(!output.is_empty(), "distortion of empty outputs");
    const EPS: f64 = 1e-9;
    let mut acc = 0.0;
    for (o, r) in output.iter().zip(reference) {
        let err = (o - r).abs();
        acc += if r.abs() > EPS { err / r.abs() } else { err };
    }
    acc / output.len() as f64
}

/// Quality of an execution outcome relative to a reference:
/// `1 − distortion`, floored at 0.
pub fn relative_quality(output: &[f64], reference: &[f64]) -> f64 {
    (1.0 - distortion(output, reference)).max(0.0)
}

/// Mean structural-similarity index between two images stored row-major
/// with dimensions `w × h` and dynamic range `peak`, computed over 8×8
/// windows with the standard stabilizing constants
/// `C1 = (0.01·peak)²`, `C2 = (0.03·peak)²`.
///
/// # Panics
///
/// Panics if the buffers do not match `w * h`, the image is smaller
/// than one 8×8 window, or `peak <= 0`.
pub fn ssim(a: &[f64], b: &[f64], w: usize, h: usize, peak: f64) -> f64 {
    assert_eq!(a.len(), w * h, "image a size mismatch");
    assert_eq!(b.len(), w * h, "image b size mismatch");
    assert!(w >= 8 && h >= 8, "ssim needs at least one 8x8 window");
    assert!(peak > 0.0, "ssim peak must be positive");
    let c1 = (0.01 * peak) * (0.01 * peak);
    let c2 = (0.03 * peak) * (0.03 * peak);
    let mut total = 0.0;
    let mut windows = 0usize;
    let mut by = 0;
    while by + 8 <= h {
        let mut bx = 0;
        while bx + 8 <= w {
            let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for y in by..by + 8 {
                for x in bx..bx + 8 {
                    let pa = a[y * w + x];
                    let pb = b[y * w + x];
                    sa += pa;
                    sb += pb;
                    saa += pa * pa;
                    sbb += pb * pb;
                    sab += pa * pb;
                }
            }
            let n = 64.0;
            let ma = sa / n;
            let mb = sb / n;
            let va = saa / n - ma * ma;
            let vb = sbb / n - mb * mb;
            let cov = sab / n - ma * mb;
            let s = ((2.0 * ma * mb + c1) * (2.0 * cov + c2))
                / ((ma * ma + mb * mb + c1) * (va + vb + c2));
            total += s;
            windows += 1;
            bx += 8;
        }
        by += 8;
    }
    total / windows as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_and_mse_basics() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 4.0, 3.0];
        assert_eq!(ssd(&a, &b), 4.0);
        assert!((mse(&a, &b) - 4.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn psnr_identity_is_infinite() {
        let a = [0.5, 0.25];
        assert!(psnr(&a, &a, 1.0).is_infinite());
    }

    #[test]
    fn psnr_known_value() {
        // MSE = 0.01, peak = 1 → PSNR = 20 dB.
        let a = [0.0, 0.0];
        let b = [0.1, 0.1];
        assert!((psnr(&a, &b, 1.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn distortion_relative_error() {
        let reference = [2.0, 4.0];
        let output = [1.0, 4.0];
        // Relative errors: 0.5 and 0.0 → distortion 0.25.
        assert!((distortion(&output, &reference) - 0.25).abs() < 1e-15);
        assert!((relative_quality(&output, &reference) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn distortion_near_zero_reference_uses_absolute() {
        let reference = [0.0];
        let output = [0.3];
        assert!((distortion(&output, &reference) - 0.3).abs() < 1e-15);
    }

    #[test]
    fn quality_floors_at_zero() {
        let reference = [1.0];
        let output = [5.0];
        assert_eq!(relative_quality(&output, &reference), 0.0);
    }

    #[test]
    fn ssim_identical_images_is_one() {
        let img: Vec<f64> = (0..64).map(|i| (i % 9) as f64 / 8.0).collect();
        let s = ssim(&img, &img, 8, 8, 1.0);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ssim_degrades_with_noise() {
        let w = 16;
        let h = 16;
        let a: Vec<f64> = (0..w * h).map(|i| ((i * 7) % 255) as f64).collect();
        let b: Vec<f64> = a.iter().map(|v| v + 30.0 * ((v % 2.0) - 0.5)).collect();
        let s = ssim(&a, &b, w, h, 255.0);
        assert!(s < 0.999 && s > 0.0, "s={s}");
    }

    #[test]
    #[should_panic(expected = "8x8 window")]
    fn ssim_rejects_tiny_images() {
        ssim(&[0.0; 16], &[0.0; 16], 4, 4, 1.0);
    }
}
