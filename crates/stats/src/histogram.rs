//! Fixed-bin histograms, used to reproduce distribution figures such as
//! the per-cluster `VddMIN` histogram (paper Figure 5a).

/// A histogram over `[lo, hi)` with equal-width bins.
///
/// Values below `lo` are clamped into the first bin and values at or
/// above `hi` into the last bin, so `count()` always equals the number
/// of `add` calls — convenient when the theoretical support is open.
///
/// # Example
///
/// ```
/// use accordion_stats::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 1.0, 4);
/// for v in [0.1, 0.3, 0.35, 0.9] {
///     h.add(v);
/// }
/// assert_eq!(h.bin_counts(), &[1, 2, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, v: f64) {
        let bins = self.counts.len();
        let t = (v - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Per-bin counts.
    pub fn bin_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(left_edge, right_edge)` of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        let (l, r) = self.bin_edges(i);
        0.5 * (l + r)
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Iterator over `(bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.bins()).map(move |i| (self.bin_center(i), self.counts[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend([0.0, 0.5, 9.99, 5.0]);
        assert_eq!(h.bin_counts()[0], 2);
        assert_eq!(h.bin_counts()[9], 1);
        assert_eq!(h.bin_counts()[5], 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(99.0);
        assert_eq!(h.bin_counts(), &[1, 1]);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn edges_and_centers() {
        let h = Histogram::new(1.0, 3.0, 4);
        assert_eq!(h.bin_edges(0), (1.0, 1.5));
        assert_eq!(h.bin_center(3), 2.75);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_range_panics() {
        Histogram::new(1.0, 0.0, 3);
    }
}
