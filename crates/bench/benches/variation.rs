//! Criterion benchmarks of the variation-model substrate: field
//! sampling, chip fabrication, timing-error solves and SRAM VddMIN.

use accordion_chip::chip::Chip;
use accordion_chip::floorplan::Floorplan;
use accordion_chip::topology::Topology;
use accordion_stats::rng::SeedStream;
use accordion_varius::layout::MemKind;
use accordion_varius::params::VariationParams;
use accordion_varius::sram::SramModel;
use accordion_varius::timing::CoreTiming;
use accordion_varius::vmap::ChipVariation;
use accordion_vlsi::freq::FreqModel;
use accordion_vlsi::tech::Technology;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_field_sampling(c: &mut Criterion) {
    let plan = Floorplan::paper_default().site_plan(&Topology::paper_default());
    let params = VariationParams::default();
    let sampler = ChipVariation::sampler(&plan, &params).expect("sampler");
    let seed = SeedStream::new(1);
    c.bench_function("variation/sample_chip_612_sites", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(sampler.sample(&mut seed.stream("bench", i)))
        })
    });
}

fn bench_chip_fabrication(c: &mut Criterion) {
    let mut group = c.benchmark_group("variation/fabricate");
    group.sample_size(10);
    group.bench_function("paper_chip_288_cores", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(Chip::fabricate_default(black_box(i % 4)).expect("chip"))
        })
    });
    group.finish();
}

fn bench_timing_solves(c: &mut Criterion) {
    let fm = FreqModel::calibrate(&Technology::node_11nm());
    let params = VariationParams::default();
    let timing = CoreTiming::new(&fm, &params, 0.6, 0.01, 1.01);
    c.bench_function("variation/safe_frequency_solve", |b| {
        b.iter(|| black_box(timing.safe_frequency_ghz(black_box(&params))))
    });
    c.bench_function("variation/perr_eval", |b| {
        b.iter(|| black_box(timing.perr(black_box(0.7))))
    });
}

fn bench_sram(c: &mut Criterion) {
    let sram = SramModel::new(&VariationParams::default());
    c.bench_function("variation/block_vddmin", |b| {
        b.iter(|| black_box(sram.block_vddmin_v(MemKind::ClusterShared, black_box(0.01))))
    });
}

criterion_group!(
    benches,
    bench_field_sampling,
    bench_chip_fabrication,
    bench_timing_solves,
    bench_sram
);
criterion_main!(benches);
