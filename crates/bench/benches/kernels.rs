//! Criterion benchmarks of the six RMS kernels at their default
//! Accordion inputs (the per-run cost behind the Figure 2/4 sweeps).

use accordion_apps::app::all_apps;
use accordion_apps::config::RunConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    for app in all_apps() {
        let cfg = RunConfig::default_run(app.profile_threads());
        let knob = app.default_knob();
        group.bench_function(app.name(), |b| {
            b.iter(|| black_box(app.run(black_box(knob), &cfg)))
        });
    }
    group.finish();
}

fn bench_kernels_under_drop(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_drop_half");
    group.sample_size(10);
    for app in all_apps() {
        let cfg = RunConfig::with_drop(app.profile_threads(), 0.5);
        let knob = app.default_knob();
        group.bench_function(app.name(), |b| {
            b.iter(|| black_box(app.run(black_box(knob), &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_kernels_under_drop);
criterion_main!(benches);
