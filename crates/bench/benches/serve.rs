//! Latency of the HTTP simulation service, warm versus cold.
//!
//! `serve/latency` measures a `/v1/simulate` round trip once every
//! cache is hot (resident population, measured quality front, cached
//! variation sampler) — the steady state a long-lived service exists
//! to provide. `serve/latency_cold` forces a fresh population seed per
//! request, so every round trip re-pays fabrication. The gap between
//! the two is the service's reason to exist; `scripts/bench.sh`
//! records both and enforces the warm side being at least 5x faster.
//!
//! `serve/sweep_warm` measures a warm `/v1/sweep` round trip (3×3
//! Vdd × size grid) with a rotating protocol seed, so the rendered
//! response memo never short-circuits the grid evaluator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};

/// Chips per population: matches the `fabricate_population_8` bench
/// so the cold path's cost has a committed baseline to compare with.
const CHIPS: usize = 8;

fn post_simulate(addr: SocketAddr, body: &str) -> String {
    post(addr, "/v1/simulate", body)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    conn.write_all(req.as_bytes()).expect("send");
    let mut out = String::new();
    conn.read_to_string(&mut out).expect("recv");
    assert!(
        out.starts_with("HTTP/1.1 200"),
        "bench request failed: {out}"
    );
    out
}

fn bench_serve_latency(c: &mut Criterion) {
    let handle = accordion_served::start(accordion_served::ServeConfig {
        addr: "127.0.0.1:0".into(),
        handler_threads: 2,
        ..accordion_served::ServeConfig::default()
    })
    .expect("bind bench server");
    let addr = handle.addr();

    let warm_body = format!(r#"{{"app": "hotspot", "chips": {CHIPS}, "pop_seed": 2014}}"#);
    // Pay fabrication and quality measurement before any timing.
    post_simulate(addr, &warm_body);

    let mut group = c.benchmark_group("serve");
    group.sample_size(20);
    group.bench_function("latency", |b| {
        b.iter(|| black_box(post_simulate(addr, &warm_body)))
    });

    // Distinct seed per request: every round trip fabricates its
    // population anew (and churns the LRU, as a cold fleet would).
    static COLD_SEED: AtomicU64 = AtomicU64::new(7_000_000);
    group.sample_size(5);
    group.bench_function("latency_cold", |b| {
        b.iter(|| {
            let seed = COLD_SEED.fetch_add(1, Ordering::Relaxed);
            let body = format!(r#"{{"app": "hotspot", "chips": {CHIPS}, "pop_seed": {seed}}}"#);
            black_box(post_simulate(addr, &body))
        })
    });
    // Warm `/v1/sweep`: the population and quality front are resident,
    // but a rotating protocol seed gives every request a fresh coalesce
    // key, so each round trip runs the grid evaluator for real instead
    // of replaying the rendered-response memo. This is the per-sweep
    // cost a warm service pays — the number `scripts/bench.sh` records
    // as `serve_sweep_warm` next to the loadtest's end-to-end p99.
    static SWEEP_SEED: AtomicU64 = AtomicU64::new(9_000_000);
    let sweep_body = |seed: u64| {
        format!(
            r#"{{"app": "hotspot", "chips": {CHIPS}, "pop_seed": 2014, "seed": {seed}, "vdd_mv": [550, 600, 650], "size": [0.5, 1.0, 2.0]}}"#
        )
    };
    // Pre-pay the one-time work (population reuse, quality front).
    post(
        addr,
        "/v1/sweep",
        &sweep_body(SWEEP_SEED.fetch_add(1, Ordering::Relaxed)),
    );
    group.sample_size(20);
    group.bench_function("sweep_warm", |b| {
        b.iter(|| {
            let seed = SWEEP_SEED.fetch_add(1, Ordering::Relaxed);
            black_box(post(addr, "/v1/sweep", &sweep_body(seed)))
        })
    });
    group.finish();
    handle.shutdown();
}

criterion_group!(benches, bench_serve_latency);
criterion_main!(benches);
