//! Criterion benchmarks of the sparse compact-support variation
//! engine: dense vs envelope factorization, allocation-free per-chip
//! sampling, and end-to-end fabrication throughput at the paper's
//! 612-site default plan (φ = 0.1 → 2 mm range on a 20 mm die).
//!
//! `scripts/bench.sh` parses these into `BENCH_PR3.json` and computes
//! the dense/envelope speedup ratios the PR's acceptance criteria pin.

use accordion_chip::chip::Chip;
use accordion_chip::floorplan::Floorplan;
use accordion_chip::topology::Topology;
use accordion_stats::field::{CorrelatedField, CorrelationModel};
use accordion_stats::rng::SeedStream;
use accordion_varius::params::VariationParams;
use accordion_varius::vmap::ChipVariation;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn paper_sites() -> (Vec<(f64, f64)>, f64) {
    let plan = Floorplan::paper_default().site_plan(&Topology::paper_default());
    let params = VariationParams::default();
    let range = params.phi * plan.chip_w_mm;
    (plan.all_points_mm(), range)
}

fn bench_factor(c: &mut Criterion) {
    let (points, range) = paper_sites();
    let model = CorrelationModel::Spherical { range };
    let mut group = c.benchmark_group("sparse/construct");
    group.sample_size(10);
    group.bench_function("dense_612", |b| {
        b.iter(|| black_box(CorrelatedField::new_dense(black_box(&points), model).unwrap()))
    });
    group.bench_function("envelope_612", |b| {
        b.iter(|| black_box(CorrelatedField::new(black_box(&points), model).unwrap()))
    });
    group.finish();

    // The full sampler (field + variation magnitudes), as artifact
    // generators build it. Dominated by the envelope factorization.
    let plan = Floorplan::paper_default().site_plan(&Topology::paper_default());
    let params = VariationParams::default();
    let mut group = c.benchmark_group("sparse");
    group.sample_size(10);
    group.bench_function("sampler_construct_612", |b| {
        b.iter(|| black_box(ChipVariation::sampler(black_box(&plan), &params).unwrap()))
    });
    group.finish();
}

fn bench_sample(c: &mut Criterion) {
    let (points, range) = paper_sites();
    let model = CorrelationModel::Spherical { range };
    let dense = CorrelatedField::new_dense(&points, model).unwrap();
    let envelope = CorrelatedField::new(&points, model).unwrap();
    assert!(
        envelope.is_sparse(),
        "paper plan should take the envelope engine"
    );
    let seed = SeedStream::new(1);
    let mut out = vec![0.0; points.len()];
    let mut group = c.benchmark_group("sparse/sample");
    group.bench_function("dense_612", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            dense.sample_into(&mut seed.stream("bench", i), &mut out);
            black_box(out[0])
        })
    });
    group.bench_function("envelope_612", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            envelope.sample_into(&mut seed.stream("bench", i), &mut out);
            black_box(out[0])
        })
    });
    group.finish();
}

fn bench_fabrication(c: &mut Criterion) {
    // End-to-end population fabrication: sampler (cached), field draws,
    // timing/SRAM models per chip. Per-iteration time divided by 8 is
    // the per-chip cost; bench.sh reports the inverse as chips/s.
    let topo = Topology::paper_default();
    let params = VariationParams::default();
    let mut group = c.benchmark_group("sparse");
    group.sample_size(10);
    group.bench_function("fabricate_population_8", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(
                Chip::fabricate_population(topo, &params, SeedStream::new(i), 0, 8)
                    .expect("population"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_factor, bench_sample, bench_fabrication);
criterion_main!(benches);
