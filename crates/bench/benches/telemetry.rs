//! Micro-benchmarks of the telemetry layer's hot-path costs.
//!
//! The instrumentation in the simulation stack is compiled in
//! unconditionally, so these numbers are the per-event tax every run
//! pays: a counter increment and a disabled span must both stay at
//! nanosecond scale (single relaxed atomic operations), and the gated
//! `trace_event!` must cost one load when nothing listens.

use accordion_telemetry::event::SimEvent;
use accordion_telemetry::registry::{exponential_bounds, global};
use accordion_telemetry::sink;
use accordion_telemetry::{
    counter, flight, flight_track, gauge, histogram, span, trace_event, Level,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/counter");
    group.bench_function("inc_cached_macro", |b| {
        b.iter(|| counter!("bench.telemetry.counter").inc())
    });
    let handle = global().counter("bench.telemetry.counter_handle");
    group.bench_function("inc_held_handle", |b| b.iter(|| handle.inc()));
    group.bench_function("gauge_set", |b| {
        b.iter(|| gauge!("bench.telemetry.gauge").set(black_box(1.5)))
    });
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/histogram");
    group.bench_function("record", |b| {
        let mut v = 0.0f64;
        b.iter(|| {
            v = (v + 17.3) % 5e7;
            histogram!("bench.telemetry.hist", exponential_bounds(10.0, 10.0, 7))
                .record(black_box(v))
        })
    });
    group.finish();
}

fn bench_spans(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/span");
    // No sink installed, timing off: the guard must be near-free —
    // this is the number that justifies spans in hot loops.
    sink::set_timing(false);
    group.bench_function("disabled", |b| {
        b.iter(|| {
            let _span = span!("bench.telemetry.span_disabled");
        })
    });
    // Timing on (repro's --manifest mode): clock reads + registry add.
    sink::set_timing(true);
    group.bench_function("timing_enabled", |b| {
        b.iter(|| {
            let _span = span!("bench.telemetry.span_timed");
        })
    });
    sink::set_timing(false);
    group.finish();
}

fn bench_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/event");
    // No sink: the level gate must skip field construction entirely.
    group.bench_function("disabled", |b| {
        b.iter(|| {
            trace_event!(
                Level::Debug,
                "bench.telemetry.event",
                value = black_box(42u64),
            )
        })
    });
    group.finish();
}

fn bench_flight(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/flight");
    // Recorder off (the default for every repro run without
    // `--chrome-trace`/`profile`): the gate must be one relaxed load,
    // with no event construction and no track bookkeeping — this is
    // the overhead every instrumented protocol loop pays.
    accordion_telemetry::event::disable();
    group.bench_function("disabled_event", |b| {
        b.iter(|| {
            flight!(SimEvent::SafeFreq {
                f_ghz: black_box(0.5),
            })
        })
    });
    group.bench_function("disabled_track", |b| {
        b.iter(|| {
            let _track = flight_track!("bench/track{}", black_box(1));
        })
    });
    group.finish();
}

fn bench_tsdb(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsdb");
    // Self-scrape cost: one full registry gather folded into the
    // fixed-memory ring-buffer store — the per-tick tax `repro serve`
    // pays on its scrape thread. The registry already carries this
    // binary's bench metrics; a spread of extra families makes the
    // workload representative of a live server's.
    let reg = global();
    for i in 0..16 {
        reg.counter(&format!("bench.tsdb.counter{i}")).inc();
    }
    for i in 0..4 {
        global()
            .histogram(
                &format!("bench.tsdb.hist{i}"),
                &exponential_bounds(1.0, 2.0, 20),
            )
            .record(black_box(37.0));
    }
    let tsdb = accordion_telemetry::tsdb::Tsdb::new();
    group.bench_function("scrape_ns", |b| b.iter(|| tsdb.scrape(black_box(reg))));
    group.finish();
}

criterion_group!(
    benches,
    bench_counters,
    bench_histogram,
    bench_spans,
    bench_events,
    bench_flight,
    bench_tsdb
);
criterion_main!(benches);
