//! Batched versus scalar pareto-front extraction.
//!
//! One extraction answers every (flavor, size, cluster-count) cell of
//! a Figure 6/7 front for one benchmark on one chip — the hot loop of
//! the fig6/fig7 artifacts and the shape of work the planned
//! `accordion-opt` service multiplies by thousands of candidates. The
//! two benches run the identical extraction through the columnar
//! engine (`sweep/extract_batched`) and the legacy object path
//! (`sweep/extract_scalar`); both return bit-identical fronts (pinned
//! in `tests/determinism.rs`), so the ratio is pure engine overhead.
//! `scripts/bench.sh --check` gates `sweep_batched_vs_scalar >= 5`.
//!
//! Setup (chip fabrication, front measurement, extractor construction
//! including the one-time `ChipColumns` build) happens outside the
//! timed region: the gate measures the per-sweep cost a warm process
//! pays, not amortized startup.

use accordion::pareto::{ParetoExtractor, SweepEngine};
use accordion_apps::harness::FrontSet;
use accordion_apps::hotspot::Hotspot;
use accordion_bench::chip0;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_sweep_engines(c: &mut Criterion) {
    let chip = chip0();
    let app = Hotspot::paper_default();
    let set = FrontSet::measured(&app);
    let extractor = ParetoExtractor::new(chip, &app, &set);
    // Both engines must agree before their speed is worth comparing.
    assert_eq!(
        extractor.extract_with(SweepEngine::Batched),
        extractor.extract_with(SweepEngine::Scalar),
        "engines diverged; the ratio below would be meaningless"
    );

    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("extract_batched", |b| {
        b.iter(|| black_box(extractor.extract_with(black_box(SweepEngine::Batched))))
    });
    group.bench_function("extract_scalar", |b| {
        b.iter(|| black_box(extractor.extract_with(black_box(SweepEngine::Scalar))))
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_engines);
criterion_main!(benches);
