//! Criterion benchmarks of the parallel Monte-Carlo engine: population
//! fabrication at `--jobs 1` (the sequential baseline) versus fixed
//! worker counts, plus the raw `par_map_indexed` scheduling overhead.
//!
//! The speedup these benches exist to demonstrate only materializes on
//! multi-core hosts (the issue's target is ≥2× at `--jobs 4`); the
//! harness therefore prints the sequential/parallel ratio instead of
//! asserting it, so single-core CI stays green while a workstation run
//! still shows the number.

use accordion_chip::chip::Chip;
use accordion_chip::topology::Topology;
use accordion_stats::rng::SeedStream;
use accordion_varius::params::VariationParams;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

/// Chips per fabricated population. Large enough that per-chip work
/// (field sample + timing/SRAM solves per site) dominates the shared
/// one-off Cholesky factorization the population reuses.
const CHIPS: usize = 16;

fn fabricate(jobs: usize) -> Vec<Chip> {
    accordion_pool::set_jobs(Some(jobs));
    let pop = Chip::fabricate_population(
        Topology::paper_default(),
        &VariationParams::default(),
        SeedStream::new(2014),
        0,
        CHIPS,
    )
    .expect("fabrication");
    accordion_pool::set_jobs(None);
    pop
}

fn bench_population_fabrication(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool/fabricate_16_chips");
    group.sample_size(5);
    for jobs in [1usize, 2, 4] {
        group.bench_function(&format!("jobs_{jobs}"), |b| {
            b.iter(|| black_box(fabricate(black_box(jobs))))
        });
    }
    group.finish();

    // One direct wall-clock comparison so the speedup is a single
    // greppable line (`pool.speedup`) rather than a ratio the reader
    // computes from two bench rows.
    let t1 = {
        let start = Instant::now();
        black_box(fabricate(1));
        start.elapsed()
    };
    let t4 = {
        let start = Instant::now();
        black_box(fabricate(4));
        start.elapsed()
    };
    println!(
        "pool.speedup fabricate_{CHIPS}_chips jobs 1 -> 4: {:.2}x \
         ({:.0} ms -> {:.0} ms, host parallelism {})",
        t1.as_secs_f64() / t4.as_secs_f64().max(1e-9),
        t1.as_secs_f64() * 1e3,
        t4.as_secs_f64() * 1e3,
        std::thread::available_parallelism().map_or(1, usize::from),
    );
}

fn bench_scheduling_overhead(c: &mut Criterion) {
    // Tiny tasks expose the pool's fixed cost per scope + per task;
    // useful for spotting regressions in the queueing protocol.
    let mut group = c.benchmark_group("pool/overhead");
    group.sample_size(10);
    group.bench_function("par_map_indexed_64_trivial_tasks", |b| {
        accordion_pool::set_jobs(Some(4));
        b.iter(|| black_box(accordion_pool::par_map_indexed(64, |i| i * i)));
        accordion_pool::set_jobs(None);
    });
    group.bench_function("sequential_64_trivial_tasks", |b| {
        accordion_pool::set_jobs(Some(1));
        b.iter(|| black_box(accordion_pool::par_map_indexed(64, |i| i * i)));
        accordion_pool::set_jobs(None);
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_population_fabrication,
    bench_scheduling_overhead
);
criterion_main!(benches);
