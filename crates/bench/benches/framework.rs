//! Criterion benchmarks of the framework layer: cluster selection,
//! quality-front measurement and pareto-front extraction.

use accordion::pareto::ParetoExtractor;
use accordion_apps::harness::FrontSet;
use accordion_apps::hotspot::Hotspot;
use accordion_bench::chip0;
use accordion_chip::selection::{ClusterSelection, SelectionPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_selection(c: &mut Criterion) {
    let chip = chip0();
    c.bench_function("framework/select_18_of_36_clusters", |b| {
        b.iter(|| {
            black_box(ClusterSelection::select(
                chip,
                black_box(18),
                SelectionPolicy::EnergyEfficiency,
            ))
        })
    });
}

fn bench_front_measurement(c: &mut Criterion) {
    let app = Hotspot::paper_default();
    let mut group = c.benchmark_group("framework/quality_fronts");
    group.sample_size(10);
    group.bench_function("hotspot_three_scenarios", |b| {
        b.iter(|| black_box(FrontSet::measure(black_box(&app))))
    });
    group.finish();
}

fn bench_pareto_extraction(c: &mut Criterion) {
    let chip = chip0();
    let app = Hotspot::paper_default();
    let set = FrontSet::measure(&app);
    let mut group = c.benchmark_group("framework/pareto");
    group.sample_size(10);
    group.bench_function("hotspot_four_fronts", |b| {
        b.iter(|| {
            let extractor = ParetoExtractor::new(chip, &app, &set);
            black_box(extractor.extract())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_selection,
    bench_front_measurement,
    bench_pareto_extraction
);
criterion_main!(benches);
