//! `repro dash`: a terminal dashboard over the server's ops plane.
//!
//! Polls `/v1/timeseries` and `/v1/alerts` on a serving instance and
//! renders sparkline panels (RPS, latency quantiles, shed and coalesce
//! rates) plus the alert table with plain ANSI escapes — no curses, no
//! external crates, works over ssh. Rendering is split from fetching so
//! every visual element is unit-testable on canned data.

use accordion_telemetry::json::{self, Json};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Eight-level block ramp used for sparklines.
const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// The panels the dashboard draws, in display order. Each row is the
/// panel title, the TSDB series id to query, and the unit suffix shown
/// after the latest value.
pub const PANELS: [(&str, &str, &str); 5] = [
    ("rps", "served_http_requests_total:rate", "/s"),
    (
        "p50",
        "served_http_request_latency_us{outcome=\"ok\"}:p50",
        "us",
    ),
    (
        "p99",
        "served_http_request_latency_us{outcome=\"ok\"}:p99",
        "us",
    ),
    ("shed", "served_http_shed", ""),
    ("coalesce", "served_coalesced_total:rate", "/s"),
];

/// Configuration for one dashboard run.
pub struct DashConfig {
    /// Server to poll.
    pub addr: SocketAddr,
    /// Seconds between redraws.
    pub interval: Duration,
    /// History window requested from `/v1/timeseries`, seconds. Passed
    /// through verbatim: the server owns range validation, so a value
    /// it rejects surfaces its own error message (not a client-side
    /// parse failure that hides what the server would have said).
    pub range: String,
    /// Render a single frame and exit (for scripts and smoke tests).
    pub once: bool,
}

/// Renders `values` as a fixed-width sparkline. The scale is
/// per-series (min..max of the window); a flat series renders as the
/// lowest block so quiet metrics read as quiet. Non-finite values
/// render as spaces.
pub fn sparkline(values: &[f64], width: usize) -> String {
    let tail: Vec<f64> = values
        .iter()
        .copied()
        .skip(values.len().saturating_sub(width))
        .collect();
    let finite: Vec<f64> = tail.iter().copied().filter(|v| v.is_finite()).collect();
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    let mut out = String::with_capacity(width * 3);
    for _ in tail.len()..width {
        out.push(' ');
    }
    for v in &tail {
        if !v.is_finite() {
            out.push(' ');
        } else if span <= 0.0 {
            out.push(RAMP[0]);
        } else {
            let idx = (((v - lo) / span) * (RAMP.len() - 1) as f64).round() as usize;
            out.push(RAMP[idx.min(RAMP.len() - 1)]);
        }
    }
    out
}

/// Formats a value compactly: integers under 10k verbatim, larger
/// magnitudes with a k/M suffix, small fractions with two decimals.
pub fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        return "-".to_string();
    }
    let a = v.abs();
    if a >= 1_000_000.0 {
        format!("{:.1}M", v / 1_000_000.0)
    } else if a >= 10_000.0 {
        format!("{:.1}k", v / 1_000.0)
    } else if (v.fract()).abs() < 1e-9 && a < 10_000.0 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

/// One fetched series, decoded from a `/v1/timeseries` reply.
pub struct Series {
    /// Panel title.
    pub title: String,
    /// Unit suffix for the latest value.
    pub unit: String,
    /// Point values, oldest first. Empty when the series is absent.
    pub values: Vec<f64>,
}

/// Decodes a `/v1/timeseries` JSON reply into the point values,
/// oldest first. Returns an empty vector when the shape is unexpected
/// (series not yet populated) rather than failing the whole frame.
pub fn decode_points(doc: &Json) -> Vec<f64> {
    let Some(Json::Arr(points)) = doc.get("points") else {
        return Vec::new();
    };
    points
        .iter()
        .filter_map(|p| p.get("value").and_then(Json::as_f64))
        .collect()
}

/// One alert row decoded from `/v1/alerts`.
pub struct AlertRow {
    /// Rule name.
    pub name: String,
    /// `inactive` / `pending` / `firing` / `resolved`.
    pub state: String,
    /// Fast-window value at last evaluation, if known.
    pub fast: Option<f64>,
}

/// Decodes a `/v1/alerts` JSON reply into display rows.
pub fn decode_alerts(doc: &Json) -> Vec<AlertRow> {
    let Some(Json::Arr(rows)) = doc.get("alerts") else {
        return Vec::new();
    };
    rows.iter()
        .map(|row| AlertRow {
            name: row
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            state: row
                .get("state")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            fast: row.get("fast_value").and_then(Json::as_f64),
        })
        .collect()
}

/// Renders one full dashboard frame from already-fetched data. Pure:
/// the interactive loop and `--once` mode both print exactly this.
pub fn render_frame(addr: &str, series: &[Series], alerts: &[AlertRow], width: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("accordion dash — {addr}\n"));
    let title_w = series.iter().map(|s| s.title.len()).max().unwrap_or(4);
    for s in series {
        let latest = s.values.last().copied().unwrap_or(f64::NAN);
        let value = if s.values.is_empty() {
            "(no data)".to_string()
        } else {
            format!("{}{}", fmt_value(latest), s.unit)
        };
        out.push_str(&format!(
            "  {:<title_w$}  {}  {}\n",
            s.title,
            sparkline(&s.values, width),
            value,
        ));
    }
    out.push_str("  alerts:\n");
    if alerts.is_empty() {
        out.push_str("    (none configured)\n");
    }
    for a in alerts {
        let marker = match a.state.as_str() {
            "firing" => "!!",
            "pending" => " ~",
            _ => "  ",
        };
        let fast = a.fast.map(fmt_value).unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "  {marker} {:<20} {:<9} fast={fast}\n",
            a.name, a.state
        ));
    }
    out
}

/// Blocking one-shot HTTP GET against the serving instance. Returns
/// the status code and body; only transport-level failures are `Err`,
/// so callers can read the server's error body on a 4xx/5xx answer.
pub fn fetch(addr: SocketAddr, path: &str) -> Result<(u16, String), String> {
    let timeout = Duration::from_secs(5);
    let mut conn = TcpStream::connect_timeout(&addr, timeout)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = conn.set_read_timeout(Some(timeout));
    let _ = conn.set_write_timeout(Some(timeout));
    conn.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: dash\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .map_err(|e| format!("cannot send to {addr}: {e}"))?;
    let mut reply = String::new();
    conn.read_to_string(&mut reply)
        .map_err(|e| format!("cannot read from {addr}: {e}"))?;
    let (head, body) = reply
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{addr}: malformed HTTP response"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{addr}: malformed status line"))?;
    Ok((status, body.to_string()))
}

/// Renders a non-200 answer as the message the user should see: the
/// server's own `{"error": ...}` body when present (e.g. the valid
/// range `/v1/timeseries` would accept), the raw status otherwise.
pub fn server_error(path: &str, status: u16, body: &str) -> String {
    let detail = json::parse(body)
        .ok()
        .and_then(|doc| doc.get("error").and_then(Json::as_str).map(String::from));
    match detail {
        Some(msg) => format!("{path}: server rejected the request ({status}): {msg}"),
        None => format!("{path} answered {status}"),
    }
}

/// Percent-encodes a series id for use in a query string. Only the
/// characters that actually appear in series ids need escaping.
pub fn encode_metric(id: &str) -> String {
    let mut out = String::with_capacity(id.len());
    for b in id.bytes() {
        match b {
            b'{' | b'}' | b'"' | b'=' | b',' | b' ' | b'%' | b'&' | b'#' | b'+' => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
            _ => out.push(b as char),
        }
    }
    out
}

/// Fetches one frame's worth of data from the server.
fn fetch_frame(cfg: &DashConfig) -> Result<(Vec<Series>, Vec<AlertRow>), String> {
    let mut series = Vec::with_capacity(PANELS.len());
    for (title, id, unit) in PANELS {
        let path = format!(
            "/v1/timeseries?metric={}&range={}",
            encode_metric(id),
            encode_metric(&cfg.range)
        );
        let values = match fetch(cfg.addr, &path)? {
            (200, body) => json::parse(&body)
                .map(|doc| decode_points(&doc))
                .unwrap_or_default(),
            // A 404 just means the series has no samples yet (e.g. no
            // request has been shed); render the panel empty.
            (404, _) => Vec::new(),
            // Anything else (a rejected --range value, a 5xx) carries
            // the server's explanation — surface it, don't render an
            // empty frame that hides it.
            (status, body) => return Err(server_error("/v1/timeseries", status, &body)),
        };
        series.push(Series {
            title: title.to_string(),
            unit: unit.to_string(),
            values,
        });
    }
    let (status, body) = fetch(cfg.addr, "/v1/alerts")?;
    if status != 200 {
        return Err(server_error("/v1/alerts", status, &body));
    }
    let doc = json::parse(&body).map_err(|e| format!("/v1/alerts: invalid JSON: {e}"))?;
    Ok((series, decode_alerts(&doc)))
}

/// Runs the dashboard: fetch, render, repeat. In `--once` mode prints
/// a single frame and returns; otherwise clears the screen between
/// frames until the process is interrupted.
pub fn run(cfg: &DashConfig) -> Result<(), String> {
    loop {
        let (series, alerts) = fetch_frame(cfg)?;
        let frame = render_frame(&cfg.addr.to_string(), &series, &alerts, 48);
        if cfg.once {
            print!("{frame}");
            return Ok(());
        }
        // Clear + home, then the frame: repaint without scrollback spam.
        print!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::stdout().flush();
        std::thread::sleep(cfg.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_window_extremes() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], 8);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
    }

    #[test]
    fn sparkline_flat_series_renders_low() {
        let s = sparkline(&[5.0; 4], 4);
        assert_eq!(s, "▁▁▁▁");
    }

    #[test]
    fn sparkline_pads_short_series_and_truncates_long() {
        assert_eq!(sparkline(&[1.0, 2.0], 4), "  ▁█");
        // Only the last `width` points are drawn.
        let s = sparkline(&[9.0, 0.0, 1.0], 2);
        assert_eq!(s, "▁█");
    }

    #[test]
    fn sparkline_handles_non_finite() {
        let s = sparkline(&[1.0, f64::NAN, 2.0], 3);
        assert_eq!(s.chars().nth(1), Some(' '));
    }

    #[test]
    fn fmt_value_picks_sane_units() {
        assert_eq!(fmt_value(42.0), "42");
        assert_eq!(fmt_value(1.5), "1.50");
        assert_eq!(fmt_value(12_500.0), "12.5k");
        assert_eq!(fmt_value(3_200_000.0), "3.2M");
        assert_eq!(fmt_value(f64::NAN), "-");
    }

    #[test]
    fn decode_points_reads_timeseries_reply() {
        let doc = json::parse(
            r#"{"metric":"x","range_secs":60,"tier_secs":1,
                "points":[{"t_ms":1000,"value":2.5},{"t_ms":2000,"value":4.0}]}"#,
        )
        .unwrap();
        assert_eq!(decode_points(&doc), vec![2.5, 4.0]);
        let empty = json::parse(r#"{"error":"unknown"}"#).unwrap();
        assert!(decode_points(&empty).is_empty());
    }

    #[test]
    fn decode_alerts_reads_status_reply() {
        let doc = json::parse(
            r#"{"count":1,"firing":1,"alerts":[
                {"name":"p99_slo","state":"firing","since_ms":12,
                 "fast_value":0.25,"slow_value":null}]}"#,
        )
        .unwrap();
        let rows = decode_alerts(&doc);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "p99_slo");
        assert_eq!(rows[0].state, "firing");
        assert_eq!(rows[0].fast, Some(0.25));
    }

    #[test]
    fn render_frame_includes_panels_and_alert_markers() {
        let series = vec![
            Series {
                title: "rps".to_string(),
                unit: "/s".to_string(),
                values: vec![1.0, 2.0, 3.0],
            },
            Series {
                title: "shed".to_string(),
                unit: String::new(),
                values: Vec::new(),
            },
        ];
        let alerts = vec![AlertRow {
            name: "p99_slo".to_string(),
            state: "firing".to_string(),
            fast: Some(0.5),
        }];
        let frame = render_frame("127.0.0.1:9", &series, &alerts, 8);
        assert!(frame.contains("accordion dash — 127.0.0.1:9"));
        assert!(frame.contains("rps"));
        assert!(frame.contains("3/s"));
        assert!(frame.contains("(no data)"));
        assert!(frame.contains("!! p99_slo"));
        assert!(frame.contains("fast=0.50"));
    }

    #[test]
    fn server_error_surfaces_the_servers_message() {
        let msg = server_error(
            "/v1/timeseries",
            400,
            r#"{"error":"range must be a positive integer (seconds)"}"#,
        );
        assert!(
            msg.contains("range must be a positive integer"),
            "server's explanation lost: {msg}"
        );
        assert!(msg.contains("400"), "{msg}");
        // A body that is not the error shape falls back to the status.
        let fallback = server_error("/v1/alerts", 503, "Service Unavailable");
        assert_eq!(fallback, "/v1/alerts answered 503");
    }

    #[test]
    fn encode_metric_escapes_query_breakers() {
        let id = "served_http_request_latency_us{outcome=\"ok\"}:p99";
        let enc = encode_metric(id);
        assert!(!enc.contains('{') && !enc.contains('"') && !enc.contains('='));
        assert!(enc.contains("%7B") && enc.contains("%22") && enc.contains("%3D"));
        assert!(enc.ends_with(":p99"));
    }
}
